//! Quickstart: characterize one workload end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs the Sort workload for real on the MapReduce engine, then
//! characterizes it (and a service workload for contrast) on the
//! simulated Xeon E5645, printing the metrics behind the paper's
//! figures.

use dc_analytics::Workload;
use dc_datagen::Scale;
use dc_mapreduce::engine::JobConfig;
use dcbench::{BenchmarkId, Characterizer};

fn main() {
    // 1. Run the real algorithm on the real engine.
    let run = Workload::Sort
        .run(Scale::tiny(), &JobConfig::default())
        .expect("fault-free run");
    println!(
        "Sort on the local MapReduce engine: {} records in, {} out, {} KiB shuffled",
        run.stats.map_input_records,
        run.stats.reduce_output_records,
        run.stats.shuffle_bytes >> 10,
    );

    // 2. Characterize on the simulated Westmere machine.
    let bench = Characterizer::quick();
    for id in [
        BenchmarkId::Sort,
        BenchmarkId::DataServing,
        BenchmarkId::HpccDgemm,
    ] {
        let m = bench.run(id);
        println!(
            "{:14} IPC {:.2} | kernel {:>4.1}% | L1I MPKI {:>5.1} | L2 MPKI {:>5.1} | br-misp {:.2}%",
            m.name,
            m.ipc,
            m.kernel_fraction * 100.0,
            m.l1i_mpki,
            m.l2_mpki,
            m.branch_misprediction * 100.0,
        );
    }
    println!("\nThe paper's contrast: data analysis sits between services (low IPC,");
    println!("kernel-heavy, front-end bound) and HPC kernels (high IPC, cache-resident).");
}
