//! Search-engine scenario (Table II: "Log analysis" / "Word frequency
//! count"): run Grep and WordCount over a generated corpus — the
//! pipeline the paper's basic-operation workloads model.

use dc_analytics::{grep, wordcount};
use dc_datagen::{text, Scale};
use dc_mapreduce::engine::JobConfig;

fn main() {
    let docs = text::documents(7, Scale::bytes(512 << 10), 60);
    println!("corpus: {} documents", docs.len());
    let cfg = JobConfig::default();

    // Grep: extract the "error-class" tokens.
    let (mut matches, gstats) = grep::run(docs.clone(), "w001..", &cfg).expect("fault-free job");
    matches.sort_by_key(|m| std::cmp::Reverse(m.1));
    println!(
        "grep 'w001..': {} distinct matches, {} total ({}ms map, {}ms reduce)",
        matches.len(),
        matches.iter().map(|(_, c)| c).sum::<u64>(),
        gstats.map_ms,
        gstats.reduce_ms,
    );

    // WordCount: global term frequencies.
    let (mut counts, wstats) = wordcount::run(docs, &cfg).expect("fault-free job");
    counts.sort_by_key(|c| std::cmp::Reverse(c.1));
    println!(
        "wordcount: {} distinct words; top 5: {:?}",
        counts.len(),
        counts
            .iter()
            .take(5)
            .map(|(w, c)| format!("{w}:{c}"))
            .collect::<Vec<_>>(),
    );
    println!(
        "shuffle shrank by the combiner: {} -> {} records",
        wstats.map_output_records, wstats.combine_output_records,
    );
}
