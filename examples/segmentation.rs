//! Search-engine scenario (Table II: "Word Segmentation"): train the
//! HMM segmenter on pre-segmented text and decode unsegmented queries —
//! the paper's HMM workload.

use dc_analytics::hmm;
use dc_mapreduce::engine::JobConfig;

fn main() {
    // A toy language whose words are learnable from character statistics.
    let mut corpus = Vec::new();
    for i in 0..400 {
        corpus.push(
            match i % 5 {
                0 => "da ta cen ter",
                1 => "cen ter da",
                2 => "ta cen da ta",
                3 => "ter cen ta",
                _ => "da cen ter ta",
            }
            .to_string(),
        );
    }
    let (model, stats) = hmm::train(corpus, &JobConfig::default()).expect("fault-free job");
    println!(
        "trained BMES segmenter from {} records ({} tag/emission counts)",
        stats.map_input_records, stats.map_output_records,
    );
    for query in ["datacenter", "centerdata", "tacendata"] {
        let words = model.segment(query);
        println!("{query:12} -> {}", words.join(" | "));
    }
}
