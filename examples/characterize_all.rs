//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release --example characterize_all            # everything
//! cargo run --release --example characterize_all -- fig3    # one exhibit
//! cargo run --release --example characterize_all -- table1
//! cargo run --release --example characterize_all -- co      # co-run exhibit
//! ```
//!
//! Set `DCBENCH_STORE=path/to/store.log` to warm-start from (and write
//! new measurements through to) a persistent result store; exhibits
//! render byte-identically either way.

use dc_datagen::Scale;
use dc_obs::Recorder;
use dcbench::{cache, report, Characterizer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |k: &str| args.is_empty() || args.iter().any(|a| a == k);
    let store = cache::attach_from_env(&Recorder::disabled()).unwrap_or_else(|e| {
        eprintln!("dc-store: cannot open DCBENCH_STORE: {e}");
        std::process::exit(1);
    });
    if let Some(report) = &store {
        eprintln!(
            "dc-store: loaded {} record(s) \
             (corrupt {}, stale {}, torn {} byte(s), unknown {})",
            report.loaded,
            report.corrupt_skipped,
            report.stale_skipped,
            report.truncated_bytes,
            report.unknown_entries
        );
    }
    let bench = Characterizer::full();
    let scale = Scale::bytes(512 << 10);

    if want("table1") {
        println!("{}", report::table1().render());
    }
    if want("table2") {
        println!("{}", report::table2());
    }
    if want("table3") {
        println!("{}", report::table3(&bench));
    }
    if want("fig1") {
        println!("{}", report::figure1().render());
    }
    if want("fig2") {
        println!("{}", report::figure2(scale).render());
    }
    if want("fig3") {
        println!("{}", report::figure3(&bench).render());
    }
    if want("fig4") {
        println!("{}", report::figure4(&bench).render());
    }
    if want("fig5") {
        println!("{}", report::figure5(scale).render());
    }
    if want("fig6") {
        println!("{}", report::figure6(&bench).render());
    }
    if want("fig7") {
        println!("{}", report::figure7(&bench).render());
    }
    if want("fig8") {
        println!("{}", report::figure8(&bench).render());
    }
    if want("fig9") {
        println!("{}", report::figure9(&bench).render());
    }
    if want("fig10") {
        println!("{}", report::figure10(&bench).render());
    }
    if want("fig11") {
        println!("{}", report::figure11(&bench).render());
    }
    if want("fig12") {
        println!("{}", report::figure12(&bench).render());
    }
    if want("co") {
        println!("{}", report::corun_exhibit(&bench).render());
    }
    if store.is_some() {
        eprintln!(
            "dc-store: simulations: {} (store hits {}, store misses {}, write errors {})",
            cache::sim_invocations(),
            cache::store_hits(),
            cache::store_misses(),
            cache::store_write_errors()
        );
    }
}
