//! E-commerce scenario (Table II: "Recommend goods"): train an
//! item-based collaborative filter on synthetic ratings and produce
//! recommendations for a user, exactly the IBCF workload the paper
//! characterizes.

use dc_analytics::ibcf;
use dc_datagen::{ratings, Scale};
use dc_mapreduce::engine::JobConfig;

fn main() {
    let set = ratings::ratings(42, Scale::bytes(256 << 10), 4);
    println!(
        "ratings: {} users x {} items, {} ratings",
        set.num_users,
        set.num_items,
        set.ratings.len()
    );

    let (model, stats) = ibcf::train(&set, &JobConfig::default()).expect("fault-free job");
    println!(
        "trained item-item model: {} similarity pairs ({} map records, {} KiB shuffled)",
        model.sim.len(),
        stats.map_output_records,
        stats.shuffle_bytes >> 10,
    );

    // Recommend for the first user with enough history.
    let profiles = ibcf::user_profiles(&set);
    let (user, profile) = profiles
        .iter()
        .find(|(_, p)| p.len() >= 5)
        .expect("a user with history");
    let mut scored: Vec<(u32, f64)> = (0..set.num_items)
        .filter(|item| !profile.iter().any(|(i, _)| i == item))
        .filter_map(|item| model.predict(profile, item).map(|s| (item, s)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("top recommendations for user {user}:");
    for (item, score) in scored.iter().take(5) {
        println!("    item {item:4}  predicted rating {score:.2}");
    }
}
