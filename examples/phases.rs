//! Exhibit PH: interval-sampled phase behavior of the eleven
//! data-analysis workloads (the `perf stat -I` view of the simulator).
//!
//! ```text
//! cargo run --release --example phases                      # full windows
//! cargo run --release --example phases -- --quick           # short windows (CI)
//! cargo run --release --example phases -- --interval 50000  # sampling period
//! cargo run --release --example phases -- --jsonl ph.jsonl  # event artifact
//! ```
//!
//! With `--jsonl`, every `interval_sample`/`workload_sampled` event is
//! streamed as JSON Lines. Timestamps are simulated cycles and emission
//! order is fixed (workload order, then interval order), so two runs
//! with the same flags produce **byte-identical** files at any
//! `DCBENCH_JOBS` setting.

use dc_obs::Recorder;
use dcbench::{report, Characterizer};
use std::io::BufWriter;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut interval: Option<u64> = None;
    let mut jsonl: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--interval" => {
                let v = it.next().expect("--interval takes a cycle count");
                interval = Some(v.parse().expect("--interval takes a cycle count"));
            }
            "--jsonl" => jsonl = Some(it.next().expect("--jsonl takes a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: phases [--quick] [--interval CYCLES] [--jsonl PATH]");
                std::process::exit(2);
            }
        }
    }

    let bench = if quick {
        Characterizer::quick()
    } else {
        Characterizer::full()
    };
    // Aim for a few dozen intervals per workload at either window.
    let every_cycles = interval.unwrap_or(if quick { 50_000 } else { 100_000 });

    let recorder = match &jsonl {
        Some(path) => {
            let file =
                std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            Recorder::jsonl(BufWriter::new(file))
        }
        None => Recorder::disabled(),
    };
    let bench = bench.with_recorder(recorder.clone());

    for figure in report::phase_exhibit(&bench, every_cycles) {
        println!("{}", figure.render());
    }
    recorder.flush();
    if let Some(path) = jsonl {
        eprintln!("event artifact written to {path}");
    }
}
