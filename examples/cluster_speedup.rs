//! Figure 2 scenario: how does each data-analysis workload scale from
//! one slave to eight?
//!
//! Runs every workload for real at small scale, scales the measured
//! dataflow to the paper's 147-187 GB inputs via Table I's instruction
//! counts, and simulates the Hadoop cluster at 1/4/8 slaves.

use dc_datagen::Scale;
use dcbench::report;

fn main() {
    let fig = report::figure2(Scale::bytes(256 << 10));
    println!("{}", fig.render());
    let min = fig
        .rows
        .iter()
        .map(|(_, s)| s[2])
        .fold(f64::INFINITY, f64::min);
    let max = fig.rows.iter().map(|(_, s)| s[2]).fold(0.0f64, f64::max);
    println!("speed-up spread on 8 slaves: {min:.1}x – {max:.1}x (paper: 3.3x – 8.2x)");
    println!("=> no single workload represents the class (Section II-B).");
}
