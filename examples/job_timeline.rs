//! Job timelines: run a real MapReduce job with injected faults under a
//! `dc-obs` recorder and render the task-attempt Gantt chart, then
//! replay a cluster run with a node loss and render its phase timeline.
//!
//! ```text
//! cargo run --release --example job_timeline [-- --jsonl PATH]
//! ```
//!
//! The engine chart uses job-relative wall-clock milliseconds (real
//! scheduling, non-deterministic); the cluster chart uses simulated
//! milliseconds (pure function of its inputs).

use dc_mapreduce::cluster::{
    simulate_with_failures_observed, ClusterConfig, FailureModel, JobModel,
};
use dc_mapreduce::engine::{run_job_observed, JobConfig};
use dc_mapreduce::faults::{Fault, FaultPlan, TaskKind};
use dc_obs::gantt::{self, GanttConfig};
use dc_obs::{Recorder, RingBuffer};
use std::io::Write;

fn parse_args() -> Option<String> {
    let mut jsonl = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jsonl" => match args.next() {
                Some(path) => jsonl = Some(path),
                None => die("--jsonl needs a path"),
            },
            other => die(&format!("unknown argument: {other}")),
        }
    }
    jsonl
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: job_timeline [--jsonl PATH]");
    std::process::exit(2);
}

fn dump_jsonl(path: &str, ring: &RingBuffer, cluster_ring: &RingBuffer) {
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    for event in ring.snapshot().iter().chain(cluster_ring.snapshot().iter()) {
        writeln!(file, "{}", event.to_jsonl()).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    }
    println!("wrote events to {path}");
}

fn main() {
    let jsonl = parse_args();

    // ---- A faulted engine run: panic, transient error, straggler ----
    let cfg = JobConfig {
        map_tasks: 6,
        reduce_tasks: 2,
        map_slots: 6,
        speculative_lag_ms: 30,
        ..Default::default()
    };
    let plan = FaultPlan::new(0x0B5)
        .with_fault(TaskKind::Map, 1, 0, Fault::Panic)
        .with_fault(TaskKind::Reduce, 0, 0, Fault::IoError)
        .with_fault(TaskKind::Map, 4, 0, Fault::SlowdownMs(400));
    let lines: Vec<String> = (0..96)
        .map(|i| format!("alpha beta w{} w{}", i % 7, i % 11))
        .collect();

    let (recorder, ring) = Recorder::ring(1 << 12);
    let (_, stats) = run_job_observed(
        lines,
        &cfg,
        Some(&plan),
        &recorder,
        |line: String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        },
        None,
        |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
    )
    .expect("faulted job recovers");

    println!("== Task-attempt timeline (wall-clock ms; x=failed, k=killed) ==\n");
    print!(
        "{}",
        gantt::render(&ring.snapshot(), &GanttConfig::default())
    );
    println!(
        "\n{} failed, {} speculative, {} killed attempt(s); \
         reduce input {} records / {} bytes\n",
        stats.failed_attempts,
        stats.speculative_attempts,
        stats.killed_attempts,
        stats.reduce_input_records,
        stats.reduce_input_bytes,
    );

    // ---- A cluster replay with a mid-map node loss ----
    let job = JobModel {
        name: "sort".into(),
        input_gb: 150.0,
        map_cpu_secs_per_gb: 6.0,
        shuffle_ratio: 1.0,
        reduce_cpu_secs_per_gb: 6.0,
        output_ratio: 1.0,
        iterations: 1,
    };
    let failures = FailureModel::single_loss_with_recovery(60.0, 45.0);
    let (cluster_recorder, cluster_ring) = Recorder::ring(256);
    let run = simulate_with_failures_observed(
        &ClusterConfig::paper(8),
        &job,
        &failures,
        &cluster_recorder,
    );

    println!("== Cluster phase timeline (simulated ms) ==\n");
    let phase_cfg = GanttConfig {
        start_kind: "phase_start",
        end_kind: "phase_end",
        lane_fields: &["phase", "iteration"],
        outcome_field: "outcome",
        width: 60,
    };
    print!("{}", gantt::render(&cluster_ring.snapshot(), &phase_cfg));
    println!(
        "\nmakespan {:.0} s; re-executed {:.0} slave-seconds; \
         re-replicated {:.0} MB after the node loss\n",
        run.makespan_secs, run.reexecuted_work_secs, run.rereplicated_mb,
    );

    if let Some(path) = jsonl {
        dump_jsonl(&path, &ring, &cluster_ring);
    }
}
