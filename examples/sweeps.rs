//! Exhibit SW: microarchitectural sensitivity sweeps of the eleven
//! data-analysis workloads.
//!
//! ```text
//! cargo run --release --example sweeps                     # full grid, quick windows
//! cargo run --release --example sweeps -- --quick          # reduced grid (CI smoke)
//! cargo run --release --example sweeps -- --jsonl sw.jsonl # event artifact
//! ```
//!
//! Every (axis, point, workload) grid cell is one pure simulation,
//! sharded across `DCBENCH_JOBS` workers and memoized by the counter
//! cache. With `--jsonl`, one `sweep_point` event per cell plus one
//! `sweep_axis` summary per axis are streamed as JSON Lines in fixed
//! grid order, so two runs with the same flags produce
//! **byte-identical** files at any `DCBENCH_JOBS` setting.
//!
//! Set `DCBENCH_STORE=path/to/store.log` to warm-start from (and write
//! new measurements through to) a persistent result store; a run
//! against a fully populated store does **zero** simulations and still
//! renders byte-identical exhibits.

use dc_obs::Recorder;
use dcbench::sweep::SweepAxis;
use dcbench::{cache, report, Characterizer};
use std::io::BufWriter;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jsonl: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jsonl" => jsonl = Some(it.next().expect("--jsonl takes a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: sweeps [--quick] [--jsonl PATH]");
                std::process::exit(2);
            }
        }
    }

    // Sweeps multiply the matrix by the grid size, so both modes
    // measure through quick windows; --quick additionally shrinks the
    // grid to the three-axis smoke set CI byte-compares.
    let axes = if quick {
        SweepAxis::reduced_axes()
    } else {
        SweepAxis::default_axes()
    };

    // Store recovery telemetry stays out of the --jsonl artifact so
    // cold and warm runs remain byte-identical; load results go to
    // stderr instead.
    let store = cache::attach_from_env(&Recorder::disabled()).unwrap_or_else(|e| {
        eprintln!("dc-store: cannot open DCBENCH_STORE: {e}");
        std::process::exit(1);
    });
    if let Some(report) = &store {
        eprintln!(
            "dc-store: loaded {} record(s) \
             (corrupt {}, stale {}, torn {} byte(s), unknown {})",
            report.loaded,
            report.corrupt_skipped,
            report.stale_skipped,
            report.truncated_bytes,
            report.unknown_entries
        );
    }

    let recorder = match &jsonl {
        Some(path) => {
            let file =
                std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            Recorder::jsonl(BufWriter::new(file))
        }
        None => Recorder::disabled(),
    };
    let bench = Characterizer::quick().with_recorder(recorder.clone());

    let figures = report::sweep_exhibit(&bench, &axes).unwrap_or_else(|e| panic!("{e}"));
    for figure in &figures {
        println!("{}", figure.render());
    }
    recorder.flush();
    if let Some(path) = jsonl {
        eprintln!("event artifact written to {path}");
    }
    if store.is_some() {
        eprintln!(
            "dc-store: simulations: {} (store hits {}, store misses {}, write errors {})",
            cache::sim_invocations(),
            cache::store_hits(),
            cache::store_misses(),
            cache::store_write_errors()
        );
    }
}
