//! Exhibit SS: PCA + hierarchical subsetting of the eleven
//! data-analysis workloads.
//!
//! ```text
//! cargo run --release --example subsetting                      # full windows
//! cargo run --release --example subsetting -- --quick           # quick windows (CI smoke)
//! cargo run --release --example subsetting -- --jsonl ss.jsonl  # canonical JSON artifact
//! cargo run --release --example subsetting -- --k 3 --linkage average
//! ```
//!
//! The eleven workloads are characterized through the cached parallel
//! pipeline, their metric matrix is z-scored and PCA-reduced (Jacobi
//! eigensolve, components retained to >=85% cumulative variance), the
//! PC scores are hierarchically clustered, and each cluster's medoid
//! becomes the representative subset. Both the exhibit text on stdout
//! and the `--jsonl` artifact (one canonical JSON line) are
//! **byte-identical** across runs, processes, and `DCBENCH_JOBS`
//! settings.
//!
//! Set `DCBENCH_STORE=path/to/store.log` to warm-start from (and write
//! new measurements through to) a persistent result store; a run
//! against a fully populated store does **zero** simulations and still
//! renders byte-identical exhibits.

use dc_obs::Recorder;
use dcbench::stats::Linkage;
use dcbench::{cache, report, Characterizer};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jsonl: Option<String> = None;
    let mut k = 4usize;
    let mut linkage = Linkage::Complete;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jsonl" => jsonl = Some(it.next().expect("--jsonl takes a path")),
            "--k" => {
                k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--k takes a cluster count")
            }
            "--linkage" => {
                let name = it.next().expect("--linkage takes a name");
                linkage = Linkage::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown linkage: {name} (try single|complete|average)");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: subsetting [--quick] [--jsonl PATH] [--k N] [--linkage NAME]");
                std::process::exit(2);
            }
        }
    }
    if !(1..=11).contains(&k) {
        eprintln!("--k must be in [1, 11]");
        std::process::exit(2);
    }

    // Store recovery telemetry goes to stderr so cold and warm runs
    // stay byte-identical on stdout and in the --jsonl artifact.
    let store = cache::attach_from_env(&Recorder::disabled()).unwrap_or_else(|e| {
        eprintln!("dc-store: cannot open DCBENCH_STORE: {e}");
        std::process::exit(1);
    });
    if let Some(report) = &store {
        eprintln!(
            "dc-store: loaded {} record(s) \
             (corrupt {}, stale {}, torn {} byte(s), unknown {})",
            report.loaded,
            report.corrupt_skipped,
            report.stale_skipped,
            report.truncated_bytes,
            report.unknown_entries
        );
    }

    let (bench, window) = if quick {
        (Characterizer::quick(), "quick")
    } else {
        (Characterizer::full(), "full")
    };
    let subset = report::subset_exhibit(&bench, k, linkage);
    print!("{}", subset.render_text(window, bench.seed()));
    if let Some(path) = jsonl {
        let mut file =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        writeln!(file, "{}", subset.to_json(window, bench.seed()))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("subset artifact written to {path}");
    }
    if store.is_some() {
        eprintln!(
            "dc-store: simulations: {} (store hits {}, store misses {}, write errors {})",
            cache::sim_invocations(),
            cache::store_hits(),
            cache::store_misses(),
            cache::store_write_errors()
        );
    }
}
