//! Fault tolerance: the engine's Hadoop-grade recovery machinery.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
//!
//! Three exhibits:
//!
//! 1. **Exactly-once under task failures** — WordCount with the first
//!    attempt of two map tasks and one reduce task forced to panic.
//!    The job retries the attempts and produces output byte-identical
//!    to the fault-free run.
//! 2. **Deterministic replay** — the same fault seed reproduces the
//!    same `JobStats`, so a failure scenario can be re-run exactly.
//! 3. **Node loss at cluster scale** — every workload's 8-slave
//!    speedup when one slave dies mid-map (the cluster-model companion
//!    to Figure 2).

use dc_datagen::{text, Scale};
use dc_mapreduce::{Fault, FaultPlan, JobConfig, TaskKind};
use dcbench::report::fault_tolerance_exhibit;

fn main() {
    let docs = text::documents(7, Scale::bytes(256 << 10), 60);
    let cfg = JobConfig::default();

    // ---- 1. Exactly-once under injected task panics ----
    let (mut clean, clean_stats) =
        dc_analytics::wordcount::run(docs.clone(), &cfg).expect("fault-free job");
    clean.sort();

    let plan = FaultPlan::new(42)
        .with_fault(TaskKind::Map, 0, 0, Fault::Panic)
        .with_fault(TaskKind::Map, 1, 0, Fault::Panic)
        .with_fault(TaskKind::Reduce, 0, 0, Fault::Panic);
    let mut faulted_cfg = cfg.clone();
    faulted_cfg.faults = Some(plan);

    // Injected panics are caught by the engine; keep them off stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let (mut faulted, faulted_stats) = dc_analytics::wordcount::run(docs.clone(), &faulted_cfg)
        .expect("failures stay under max_attempts");
    faulted.sort();

    assert_eq!(clean, faulted, "recovered output must be identical");
    assert_eq!(
        clean_stats.data_counters(),
        faulted_stats.data_counters(),
        "dataflow counters must be identical"
    );
    assert_eq!(faulted_stats.failed_attempts, 3);
    println!("WordCount with 3 first-attempt panics (2 map tasks + 1 reduce task):");
    println!(
        "    {} distinct words, identical to the fault-free run",
        faulted.len()
    );
    println!(
        "    failed attempts {}, re-executed {} KiB of task input",
        faulted_stats.failed_attempts,
        faulted_stats.reexecuted_bytes >> 10,
    );

    // ---- 2. Deterministic replay: same seed, same stats ----
    let (_, replay_stats) =
        dc_analytics::wordcount::run(docs, &faulted_cfg).expect("failures stay under max_attempts");
    let _ = std::panic::take_hook();
    assert_eq!(
        faulted_stats.without_timings(),
        replay_stats.without_timings(),
        "same fault seed must reproduce the same stats"
    );
    println!("replaying the same fault plan reproduces identical JobStats\n");

    // ---- 3. One slave lost mid-map at 8 slaves ----
    println!(
        "{}",
        fault_tolerance_exhibit(Scale::bytes(48 << 10)).render()
    );
    println!("Hadoop's answer to a lost node: re-run its map waves on the");
    println!("survivors and re-replicate its HDFS blocks — jobs always");
    println!("complete, paying for the loss in speedup, not correctness.");
}
