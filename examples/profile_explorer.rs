//! Inspect one benchmark entry's simulated counters in detail —
//! useful when building new profiles or recalibrating existing ones.
//!
//! ```text
//! cargo run --release --example profile_explorer -- Sort "Naive Bayes"
//! ```

use dcbench::{BenchmarkId, Characterizer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = Characterizer::full();
    for &id in BenchmarkId::all() {
        if !args.is_empty() && !args.iter().any(|a| a == id.name()) {
            continue;
        }
        let (m, events) = bench.run_with_events(id);
        println!("== {} ==", id.name());
        println!(
            "  ipc={:.3} kern={:.2} l1i={:.1} itlbW={:.3} l2={:.1} l3r={:.2} dtlbW={:.3} br={:.4}",
            m.ipc,
            m.kernel_fraction,
            m.l1i_mpki,
            m.itlb_walk_pki,
            m.l2_mpki,
            m.l3_hit_ratio,
            m.dtlb_walk_pki,
            m.branch_misprediction
        );
        let raw = bench.raw_counts(id);
        println!(
            "  prefetches={} l1d_miss={} l2_acc={} l2_miss={} l3_miss={}",
            raw.prefetches, raw.l1d_misses, raw.l2_accesses, raw.l2_misses, raw.l3_misses
        );
        let b = m.stall_breakdown;
        println!(
            "  stalls: fetch={:.2} rat={:.2} load={:.2} rs={:.2} store={:.2} rob={:.2}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        );
        for (e, v) in events {
            println!("  {e:?} = {v}");
        }
    }
}
