//! Property-based invariants of the trace layer.

use dc_trace::profile::{AccessPattern, DataRegion, InstMix, WorkloadProfile};
use dc_trace::reuse::ReuseHistogram;
use dc_trace::rng::{Geometric, SplitMix64, Zipf};
use dc_trace::synth::SyntheticTrace;
use proptest::prelude::*;

proptest! {
    /// Any valid profile synthesizes any number of ops deterministically.
    #[test]
    fn synthesis_is_total_and_deterministic(
        seed in 0u64..1000,
        code_kib in 4u64..512,
        region_kib in 1u64..4096,
        load in 0.05f64..0.4,
        n in 1usize..4000,
    ) {
        let profile = WorkloadProfile::builder("prop")
            .code_footprint_kib(code_kib)
            .data(vec![DataRegion::new(region_kib << 10, 1.0, AccessPattern::Random)])
            .mix(InstMix { load, ..InstMix::default() })
            .build()
            .expect("valid profile");
        let a: Vec<_> = SyntheticTrace::new(&profile, seed).take(n).collect();
        let b: Vec<_> = SyntheticTrace::new(&profile, seed).take(n).collect();
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a, b);
    }

    /// Every synthesized memory address falls inside a declared region
    /// (user-mode profiles only touch user data space).
    #[test]
    fn addresses_stay_in_declared_regions(
        seed in 0u64..500,
        bytes in 1u64..(1 << 22),
    ) {
        let bytes = bytes.max(64);
        let profile = WorkloadProfile::builder("bounds")
            .data(vec![DataRegion::new(bytes, 1.0, AccessPattern::Random)])
            .build()
            .expect("valid");
        for op in SyntheticTrace::new(&profile, seed).take(3000) {
            if let Some(addr) = op.kind.mem_addr() {
                let off = addr - dc_trace::synth::USER_DATA_BASE;
                prop_assert!(off < bytes, "offset {off} outside region of {bytes}");
            }
        }
    }

    /// Dep distances never exceed the documented window.
    #[test]
    fn dep_distances_bounded(seed in 0u64..200) {
        let profile = WorkloadProfile::builder("dep")
            .dep(0.9, 20.0)
            .build()
            .expect("valid");
        for op in SyntheticTrace::new(&profile, seed).take(5000) {
            prop_assert!(op.dep_dist <= 64);
        }
    }

    /// Zipf sampling is always within range and rank-0 never loses to the
    /// tail over a large sample (for skewed exponents).
    #[test]
    fn zipf_in_range_and_skewed(n in 2usize..500, seed in 0u64..100) {
        let zipf = Zipf::new(n, 1.0);
        let mut rng = SplitMix64::new(seed);
        let mut first = 0u32;
        let mut last = 0u32;
        for _ in 0..2000 {
            let s = zipf.sample(&mut rng);
            prop_assert!(s < n);
            if s == 0 { first += 1; }
            if s == n - 1 { last += 1; }
        }
        prop_assert!(first >= last);
    }

    /// Geometric samples have roughly the configured mean.
    #[test]
    fn geometric_mean_tracks(mean in 0.5f64..20.0, seed in 0u64..50) {
        let g = Geometric::with_mean(mean);
        let mut rng = SplitMix64::new(seed);
        let total: u64 = (0..20_000).map(|_| g.sample(&mut rng)).sum();
        let got = total as f64 / 20_000.0;
        prop_assert!((got - mean).abs() < mean * 0.2 + 0.2, "got {got} want {mean}");
    }

    /// Reuse histogram conservation: cold + bucketed == total.
    #[test]
    fn reuse_histogram_conserves(addrs in proptest::collection::vec(0u64..(1 << 16), 1..500)) {
        let mut h = ReuseHistogram::new();
        for a in &addrs {
            h.touch(*a);
        }
        let bucketed: u64 = h.buckets.iter().sum();
        prop_assert_eq!(h.cold + bucketed, h.total);
        prop_assert_eq!(h.total, addrs.len() as u64);
    }

    /// Kernel fraction is realised within tolerance for any setting.
    #[test]
    fn kernel_fraction_realised(frac in 0.05f64..0.6) {
        let profile = WorkloadProfile::builder("k")
            .kernel_fraction(frac)
            .build()
            .expect("valid");
        let kernel = SyntheticTrace::new(&profile, 9)
            .take(300_000)
            .filter(|o| o.mode == dc_trace::Mode::Kernel)
            .count();
        let got = kernel as f64 / 300_000.0;
        prop_assert!((got - frac).abs() < 0.05, "got {got} want {frac}");
    }
}
