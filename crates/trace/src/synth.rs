//! Deterministic synthetic trace generation from a [`WorkloadProfile`].
//!
//! The generator walks a synthetic control-flow graph:
//!
//! * The code footprint is divided into fixed-size basic blocks; each
//!   block ends in a branch. Block-to-block transitions follow the
//!   profile's [`CodeModel`]: a branch falls through with probability
//!   `1 - taken_rate` (modulated per block so individual branches are
//!   strongly biased, as in real code), and taken branches go to the
//!   block's fixed *preferred successor* with probability `regularity`
//!   or to a Zipf-popular random block otherwise.
//! * Non-branch ops draw their class from the [`InstMix`](crate::profile::InstMix); loads and
//!   stores draw an address from the weighted [`DataRegion`] mixture,
//!   each region keeping its own cursor per its
//!   [`AccessPattern`].
//! * When a [`KernelModel`](crate::profile::KernelModel) is present, execution alternates between
//!   user bursts and kernel bursts whose lengths realise the configured
//!   kernel-mode instruction fraction; kernel ops use the kernel's own
//!   code and data footprints.
//!
//! Everything is seeded, so traces are exactly reproducible.

use crate::op::{MicroOp, Mode, OpKind};
use crate::profile::{AccessPattern, CodeModel, DataRegion, WorkloadProfile, BYTES_PER_OP};
use crate::rng::{le_threshold, lt_threshold, Geometric, SplitMix64, Zipf};

/// Base virtual address of user code.
pub const USER_CODE_BASE: u64 = 0x0000_0000_0040_0000;
/// Base virtual address of kernel code.
pub const KERNEL_CODE_BASE: u64 = 0xFFFF_FF80_0000_0000;
/// Base virtual address of the first user data region.
pub const USER_DATA_BASE: u64 = 0x0000_0000_1000_0000;
/// Base virtual address of the first kernel data region.
pub const KERNEL_DATA_BASE: u64 = 0xFFFF_FFA0_0000_0000;
/// Gap left between consecutive data regions.
const REGION_GAP: u64 = 1 << 30;

/// Maximum dependence distance any generated µop will carry.
///
/// Public contract with consumers that resolve dependences through a
/// bounded producer window (dc-cpu's completion ring sizes itself
/// against this at compile time): `MicroOp::dep_dist` never exceeds it.
pub const MAX_DEP_DIST: u64 = 64;

/// Per-region cursor state.
#[derive(Debug, Clone)]
struct RegionState {
    base: u64,
    bytes: u64,
    pattern: AccessPattern,
    cursor: u64,
    /// Integer image of the cumulative weight: region selection
    /// compares the raw 53-bit uniform against this
    /// ([`le_threshold`]), bit-identical to the float comparison.
    cum_le: u64,
}

/// One synthetic code image (user or kernel).
#[derive(Debug, Clone)]
struct CodeImage {
    base: u64,
    num_blocks: usize,
    ops_per_block: u32,
    /// Fixed preferred successor per block.
    preferred: Vec<u32>,
    /// Per-block dominant direction: `true` = usually taken.
    taken_biased: Vec<bool>,
    popularity: Zipf,
    /// Integer Bernoulli thresholds for the per-branch draws
    /// ([`lt_threshold`] of `branch_noise` / `regularity`).
    noise_lt: u64,
    regularity_lt: u64,
    current: usize,
    op_in_block: u32,
}

impl CodeImage {
    fn new(base: u64, model: &CodeModel, ops_per_block: u32, rng: &mut SplitMix64) -> Self {
        let num_blocks = model.num_blocks(ops_per_block);
        let popularity = Zipf::new(num_blocks, model.zipf_theta);
        let mut preferred = Vec::with_capacity(num_blocks);
        let mut taken_biased = Vec::with_capacity(num_blocks);
        for _ in 0..num_blocks {
            // Preferred successors follow the popularity distribution, so
            // hot blocks chain to hot blocks (loop nests), concentrating
            // the *dynamic* footprint the way real code does while the
            // static footprint stays large.
            preferred.push(popularity.sample(rng) as u32);
            taken_biased.push(rng.chance(model.taken_rate));
        }
        CodeImage {
            base,
            num_blocks,
            ops_per_block,
            preferred,
            taken_biased,
            popularity,
            noise_lt: lt_threshold(model.branch_noise),
            regularity_lt: lt_threshold(model.regularity),
            current: 0,
            op_in_block: 0,
        }
    }

    fn block_bytes(&self) -> u64 {
        u64::from(self.ops_per_block) * BYTES_PER_OP
    }

    fn pc(&self) -> u64 {
        self.base
            + self.current as u64 * self.block_bytes()
            + u64::from(self.op_in_block) * BYTES_PER_OP
    }

    fn block_base(&self, block: usize) -> u64 {
        self.base + block as u64 * self.block_bytes()
    }

    /// Advance to the next op; if the current op ends the block, return
    /// the branch outcome `(taken, target)` and move to the next block.
    fn step_branch(&mut self, rng: &mut SplitMix64) -> (bool, u64) {
        // Dominant direction for this block, with a per-branch noise
        // floor so the stream is mostly predictable like real code.
        let dominant_taken = self.taken_biased[self.current];
        let taken = if rng.next_u53() < self.noise_lt {
            !dominant_taken
        } else {
            dominant_taken
        };
        let next = if !taken {
            (self.current + 1) % self.num_blocks
        } else if rng.next_u53() < self.regularity_lt {
            self.preferred[self.current] as usize
        } else {
            self.popularity.sample(rng)
        };
        let target = self.block_base(next);
        self.current = next;
        self.op_in_block = 0;
        (taken, target)
    }
}

/// Memory-address generator over a data-region mixture.
#[derive(Debug, Clone)]
struct AddressStream {
    regions: Vec<RegionState>,
}

impl AddressStream {
    fn new(base: u64, regions: &[DataRegion]) -> Self {
        let total: f64 = regions.iter().map(|r| r.weight).sum();
        let mut out = Vec::with_capacity(regions.len());
        let mut addr = base;
        let mut acc = 0.0;
        for r in regions {
            acc += r.weight / total;
            out.push(RegionState {
                base: addr,
                bytes: r.bytes,
                pattern: r.pattern,
                cursor: 0,
                cum_le: le_threshold(acc),
            });
            addr += r.bytes.max(REGION_GAP).next_power_of_two().max(REGION_GAP);
        }
        AddressStream { regions: out }
    }

    fn next_addr(&mut self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_u53();
        let idx = self
            .regions
            .iter()
            .position(|r| u <= r.cum_le)
            .unwrap_or(self.regions.len() - 1);
        let r = &mut self.regions[idx];
        let off = match r.pattern {
            AccessPattern::Sequential { stride } => {
                let off = r.cursor;
                r.cursor = (r.cursor + u64::from(stride)) % r.bytes;
                off
            }
            AccessPattern::Random => rng.next_below(r.bytes / 8) * 8,
            AccessPattern::Clustered { page_dwell } => {
                // cursor encodes (page, remaining-dwell).
                let pages = (r.bytes >> 12).max(1);
                let (mut page, mut left) = (r.cursor >> 32, r.cursor & 0xFFFF_FFFF);
                if left == 0 {
                    page = rng.next_below(pages);
                    left = u64::from(page_dwell.max(1));
                }
                r.cursor = (page << 32) | (left - 1);
                (page << 12) + rng.next_below(512) * 8
            }
            AccessPattern::Tiled { stride, window } => {
                let window = u64::from(window).min(r.bytes);
                let off = r.cursor;
                let within = (r.cursor % window) + u64::from(stride);
                let tile_base = r.cursor - (r.cursor % window);
                r.cursor = if within >= window {
                    // Move to the next tile, wrapping at region end.
                    (tile_base + window) % r.bytes
                } else {
                    tile_base + within
                };
                off
            }
        };
        r.base + (off & !7)
    }
}

/// Profile-driven synthetic trace. Iterates [`MicroOp`]s forever;
/// callers bound it with `.take(n)` or by simulator op budget.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    rng: SplitMix64,
    /// Instruction-class CDF as [`lt_threshold`] images — the class
    /// draw compares one raw 53-bit uniform against these, bit-
    /// identical to the float CDF walk.
    mix_cdf: [u64; 6],
    user_code: CodeImage,
    user_data: AddressStream,
    kernel: Option<KernelState>,
    /// Bernoulli thresholds ([`lt_threshold`]) for the per-op draws.
    dep_present_lt: u64,
    dep_on_load_lt: u64,
    serial_chain_lt: u64,
    ops_since_load: u64,
    ops_since_chain: u64,
    dep_geo: Geometric,
    rat_lt: u64,
    mode: Mode,
    burst_left: u64,
    emitted: u64,
}

#[derive(Debug, Clone)]
struct KernelState {
    code: CodeImage,
    data: AddressStream,
    kernel_burst: u64,
    user_burst: u64,
}

impl SyntheticTrace {
    /// Create a generator for `profile` with the given `seed`.
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xDCBE_0001);
        let ops_per_block = profile.mix.ops_per_block();
        let user_code = CodeImage::new(USER_CODE_BASE, &profile.code, ops_per_block, &mut rng);
        let user_data = AddressStream::new(USER_DATA_BASE, &profile.data);
        let mut kernel = None;
        if let Some(k) = profile.kernel.as_ref() {
            let kernel_burst = u64::from(k.burst_ops);
            // Choose the user-burst length so that kernel ops make up
            // `fraction` of the stream: k / (k + u) = f.
            let user_burst = ((kernel_burst as f64) * (1.0 - k.fraction) / k.fraction.max(1e-6))
                .round()
                .max(1.0) as u64;
            kernel = Some(KernelState {
                code: CodeImage::new(KERNEL_CODE_BASE, &k.code, ops_per_block, &mut rng),
                data: AddressStream::new(KERNEL_DATA_BASE, &k.data),
                kernel_burst,
                user_burst,
            });
        }

        let m = profile.mix;
        let mut cdf = [0u64; 6];
        let fracs = [m.load, m.store, m.branch, m.fp, m.mul, m.div];
        let mut acc = 0.0;
        for (i, f) in fracs.iter().enumerate() {
            acc += f;
            cdf[i] = lt_threshold(acc);
        }
        let user_burst = kernel.as_ref().map(|k| k.user_burst).unwrap_or(u64::MAX);
        SyntheticTrace {
            rng,
            mix_cdf: cdf,
            user_code,
            user_data,
            kernel,
            dep_present_lt: lt_threshold(profile.dep.dep_fraction),
            dep_on_load_lt: lt_threshold(profile.dep.on_load),
            serial_chain_lt: lt_threshold(profile.dep.serial_chain),
            ops_since_load: u64::MAX,
            ops_since_chain: u64::MAX,
            dep_geo: Geometric::with_mean((profile.dep.mean_dist - 1.0).max(0.0)),
            rat_lt: lt_threshold(profile.rat_hazard_rate),
            mode: Mode::User,
            burst_left: user_burst,
            emitted: 0,
        }
    }

    /// Number of ops emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn maybe_switch_mode(&mut self) {
        let Some(ks) = &self.kernel else { return };
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return;
        }
        match self.mode {
            Mode::User => {
                self.mode = Mode::Kernel;
                self.burst_left = ks.kernel_burst;
            }
            Mode::Kernel => {
                self.mode = Mode::User;
                self.burst_left = ks.user_burst;
            }
        }
    }

    fn dep_dist(&mut self) -> u16 {
        // Loop-carried serial chain: members always link to the previous
        // member (bounded by the dependence window).
        if self.rng.next_u53() < self.serial_chain_lt {
            let dist = self.ops_since_chain.saturating_add(1);
            self.ops_since_chain = 0;
            if dist <= MAX_DEP_DIST {
                return dist as u16;
            }
            return 0; // window exceeded: start a fresh chain head
        }
        self.ops_since_chain = self.ops_since_chain.saturating_add(1);
        if self.rng.next_u53() >= self.dep_present_lt {
            return 0;
        }
        // Chain on the most recent load when one is in window: this is
        // what holds consumers in the RS while a miss is outstanding.
        if self.ops_since_load < MAX_DEP_DIST && self.rng.next_u53() < self.dep_on_load_lt {
            return (self.ops_since_load + 1) as u16;
        }
        (1 + self.dep_geo.sample(&mut self.rng)).min(MAX_DEP_DIST) as u16
    }
}

impl Iterator for SyntheticTrace {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        self.maybe_switch_mode();
        let mode = self.mode;
        let rat_hazard = self.rng.next_u53() < self.rat_lt;
        let dep_dist = self.dep_dist();

        // Split borrows: pick the active code image and data stream.
        let (code, data) = match (mode, self.kernel.as_mut()) {
            (Mode::Kernel, Some(ks)) => (&mut ks.code, &mut ks.data),
            _ => (&mut self.user_code, &mut self.user_data),
        };

        let pc = code.pc();
        let at_block_end = code.op_in_block + 1 >= code.ops_per_block;
        let kind = if at_block_end {
            let (taken, target) = code.step_branch(&mut self.rng);
            OpKind::Branch { taken, target }
        } else {
            code.op_in_block += 1;
            let u = self.rng.next_u53();
            // Skip the branch slot in the mix; block structure provides
            // branches. Re-scale the remaining classes is unnecessary —
            // mix validation keeps totals sane and branch ops drawn here
            // are emitted as plain ALU work.
            if u < self.mix_cdf[0] {
                OpKind::Load {
                    addr: data.next_addr(&mut self.rng),
                    size: 8,
                }
            } else if u < self.mix_cdf[1] {
                OpKind::Store {
                    addr: data.next_addr(&mut self.rng),
                    size: 8,
                }
            } else if u < self.mix_cdf[2] {
                OpKind::IntAlu // branch slot folded into ALU within blocks
            } else if u < self.mix_cdf[3] {
                OpKind::FpAlu
            } else if u < self.mix_cdf[4] {
                OpKind::IntMul
            } else if u < self.mix_cdf[5] {
                OpKind::Div
            } else {
                OpKind::IntAlu
            }
        };
        self.emitted += 1;
        self.ops_since_load = if kind.is_load() {
            0
        } else {
            self.ops_since_load.saturating_add(1)
        };
        Some(MicroOp {
            pc,
            kind,
            mode,
            dep_dist,
            rat_hazard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AccessPattern, InstMix, WorkloadProfile};

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile::builder("synth-test")
            .code_footprint_kib(64)
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = small_profile();
        let a: Vec<_> = SyntheticTrace::new(&p, 11).take(5000).collect();
        let b: Vec<_> = SyntheticTrace::new(&p, 11).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = small_profile();
        let a: Vec<_> = SyntheticTrace::new(&p, 1).take(5000).collect();
        let b: Vec<_> = SyntheticTrace::new(&p, 2).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pcs_stay_within_code_footprint() {
        let p = small_profile();
        let end = USER_CODE_BASE + p.code.footprint_bytes + 64;
        for op in SyntheticTrace::new(&p, 3).take(20_000) {
            assert!(op.pc >= USER_CODE_BASE && op.pc < end, "pc={:x}", op.pc);
        }
    }

    #[test]
    fn branch_fraction_matches_mix() {
        let p = small_profile();
        let n = 100_000;
        let branches = SyntheticTrace::new(&p, 4)
            .take(n)
            .filter(|o| o.kind.is_branch())
            .count();
        let got = branches as f64 / n as f64;
        let want = 1.0 / f64::from(p.mix.ops_per_block());
        assert!((got - want).abs() < 0.02, "got={got} want={want}");
    }

    #[test]
    fn load_fraction_roughly_matches_mix() {
        let p = small_profile();
        let n = 200_000;
        let loads = SyntheticTrace::new(&p, 5)
            .take(n)
            .filter(|o| o.kind.is_load())
            .count();
        let got = loads as f64 / n as f64;
        // Loads are only drawn in non-branch slots.
        let want = p.mix.load * (1.0 - 1.0 / f64::from(p.mix.ops_per_block()));
        assert!((got - want).abs() < 0.02, "got={got} want={want}");
    }

    #[test]
    fn kernel_fraction_is_realised() {
        let p = WorkloadProfile::builder("k")
            .kernel_fraction(0.30)
            .build()
            .unwrap();
        let n = 400_000;
        let kernel = SyntheticTrace::new(&p, 6)
            .take(n)
            .filter(|o| o.mode == Mode::Kernel)
            .count();
        let got = kernel as f64 / n as f64;
        assert!((got - 0.30).abs() < 0.03, "got={got}");
    }

    #[test]
    fn no_kernel_model_means_all_user() {
        let p = small_profile();
        assert!(SyntheticTrace::new(&p, 7)
            .take(50_000)
            .all(|o| o.mode == Mode::User));
    }

    #[test]
    fn kernel_pcs_use_kernel_image() {
        let p = WorkloadProfile::builder("k")
            .kernel_fraction(0.5)
            .build()
            .unwrap();
        for op in SyntheticTrace::new(&p, 8).take(100_000) {
            match op.mode {
                Mode::Kernel => assert!(op.pc >= KERNEL_CODE_BASE),
                Mode::User => assert!(op.pc < KERNEL_CODE_BASE),
            }
        }
    }

    #[test]
    fn sequential_region_walks_forward() {
        let p = WorkloadProfile::builder("seq")
            .data(vec![DataRegion::new(
                1 << 20,
                1.0,
                AccessPattern::Sequential { stride: 64 },
            )])
            .build()
            .unwrap();
        let addrs: Vec<u64> = SyntheticTrace::new(&p, 9)
            .take(50_000)
            .filter_map(|o| o.kind.mem_addr())
            .collect();
        assert!(addrs.len() > 1000);
        let increasing = addrs.windows(2).filter(|w| w[1] == w[0] + 64).count();
        assert!(
            increasing as f64 / (addrs.len() - 1) as f64 > 0.95,
            "sequential cursor should advance by the stride"
        );
    }

    #[test]
    fn random_region_addresses_spread() {
        let p = WorkloadProfile::builder("rand")
            .data(vec![DataRegion::new(64 << 20, 1.0, AccessPattern::Random)])
            .build()
            .unwrap();
        let mut pages = std::collections::HashSet::new();
        for op in SyntheticTrace::new(&p, 10).take(100_000) {
            if let Some(a) = op.kind.mem_addr() {
                pages.insert(a >> 12);
            }
        }
        assert!(pages.len() > 1000, "pages={}", pages.len());
    }

    #[test]
    fn tiled_region_reuses_window() {
        let p = WorkloadProfile::builder("tiled")
            .data(vec![DataRegion::new(
                8 << 20,
                1.0,
                AccessPattern::Tiled {
                    stride: 64,
                    window: 4096,
                },
            )])
            .build()
            .unwrap();
        let addrs: Vec<u64> = SyntheticTrace::new(&p, 12)
            .take(20_000)
            .filter_map(|o| o.kind.mem_addr())
            .collect();
        // All early accesses stay in a small set of pages before moving on.
        let first: Vec<u64> = addrs.iter().take(32).map(|a| a >> 12).collect();
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert!(distinct.len() <= 3, "tiled accesses should cluster");
    }

    #[test]
    fn dep_dist_bounded() {
        let p = small_profile();
        for op in SyntheticTrace::new(&p, 13).take(50_000) {
            assert!(u64::from(op.dep_dist) <= MAX_DEP_DIST);
        }
    }

    #[test]
    fn rat_hazard_rate_realised() {
        let p = WorkloadProfile::builder("rat")
            .rat_hazard_rate(0.10)
            .build()
            .unwrap();
        let n = 200_000;
        let hazards = SyntheticTrace::new(&p, 14)
            .take(n)
            .filter(|o| o.rat_hazard)
            .count();
        let got = hazards as f64 / n as f64;
        assert!((got - 0.10).abs() < 0.01, "got={got}");
    }

    #[test]
    fn taken_rate_shapes_outcomes() {
        let code = crate::profile::CodeModel {
            taken_rate: 0.9,
            ..crate::profile::CodeModel::default()
        };
        let p = WorkloadProfile::builder("taken")
            .code(code)
            .build()
            .unwrap();
        let (mut taken, mut total) = (0u64, 0u64);
        for op in SyntheticTrace::new(&p, 15).take(200_000) {
            if let OpKind::Branch { taken: t, .. } = op.kind {
                total += 1;
                taken += u64::from(t);
            }
        }
        let rate = taken as f64 / total as f64;
        assert!(rate > 0.75, "rate={rate}");
    }

    #[test]
    fn narrow_mix_emits_divs() {
        let mix = InstMix {
            div: 0.2,
            ..InstMix::default()
        };
        let p = WorkloadProfile::builder("div").mix(mix).build().unwrap();
        let divs = SyntheticTrace::new(&p, 16)
            .take(50_000)
            .filter(|o| o.kind == OpKind::Div)
            .count();
        assert!(divs > 5000);
    }
}
