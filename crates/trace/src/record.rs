//! Execution recording: probes for real workload kernels.
//!
//! The real algorithm implementations in `dc-analytics` cannot run under a
//! hardware performance counter, but they *can* report what they do. A
//! [`Probe`] is a lightweight recorder the kernels call at their inner
//! loops (`probe.load(&x)`, `probe.cmp(a < b)`, …). From the recorded
//! stream we derive a [`ProbeSummary`] — measured op mix, branch bias and
//! data-page footprint — which is used to cross-check the calibrated
//! profiles in `dcbench::profiles`, and a [`RecordedTrace`] that can be
//! replayed directly through the CPU simulator.
//!
//! Recording costs one enum push per event, so kernels only instrument a
//! bounded window (the probe stops recording after `capacity` events but
//! keeps counting).

use crate::op::{MicroOp, Mode, OpKind};
use std::collections::HashSet;

/// Recorded abstract event (address-bearing where relevant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Load(u64),
    Store(u64),
    Branch(bool),
    Alu,
    Fp,
}

/// Lightweight execution recorder. See module docs.
#[derive(Debug)]
pub struct Probe {
    events: Vec<Event>,
    capacity: usize,
    counts: ProbeCounts,
}

/// Raw event counts (kept even after the recording window fills).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounts {
    /// Number of recorded load events.
    pub loads: u64,
    /// Number of recorded store events.
    pub stores: u64,
    /// Number of recorded branch (comparison) events.
    pub branches: u64,
    /// Number of branches that evaluated true/taken.
    pub taken: u64,
    /// Number of recorded integer ALU events.
    pub alu: u64,
    /// Number of recorded FP events.
    pub fp: u64,
}

impl ProbeCounts {
    /// Total recorded events.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.branches + self.alu + self.fp
    }
}

/// Aggregate measurements derived from a probe window.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSummary {
    /// Fraction of events that were loads.
    pub load_frac: f64,
    /// Fraction of events that were stores.
    pub store_frac: f64,
    /// Fraction of events that were branches.
    pub branch_frac: f64,
    /// Fraction of events that were FP operations.
    pub fp_frac: f64,
    /// Taken rate among branches.
    pub taken_rate: f64,
    /// Distinct 4 KiB pages touched in the recorded window.
    pub data_pages: usize,
    /// Distinct cache lines touched in the recorded window.
    pub data_lines: usize,
    /// Total events observed (including beyond the window).
    pub total_events: u64,
}

impl Probe {
    /// Create a probe that records up to `capacity` events (and counts
    /// all events regardless).
    pub fn new(capacity: usize) -> Self {
        Probe {
            events: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            counts: ProbeCounts::default(),
        }
    }

    /// Record a load of `value`'s address.
    #[inline]
    pub fn load<T>(&mut self, value: &T) {
        self.counts.loads += 1;
        self.push(Event::Load(value as *const T as u64));
    }

    /// Record a store to `value`'s address.
    #[inline]
    pub fn store<T>(&mut self, value: &T) {
        self.counts.stores += 1;
        self.push(Event::Store(value as *const T as u64));
    }

    /// Record a conditional with outcome `taken`, returning the outcome so
    /// the call can wrap the condition inline: `if probe.cmp(a < b) { … }`.
    #[inline]
    pub fn cmp(&mut self, taken: bool) -> bool {
        self.counts.branches += 1;
        self.counts.taken += u64::from(taken);
        self.push(Event::Branch(taken));
        taken
    }

    /// Record integer ALU work (e.g. one hash step).
    #[inline]
    pub fn alu(&mut self) {
        self.counts.alu += 1;
        self.push(Event::Alu);
    }

    /// Record floating-point work (e.g. one multiply-accumulate).
    #[inline]
    pub fn fp(&mut self) {
        self.counts.fp += 1;
        self.push(Event::Fp);
    }

    #[inline]
    fn push(&mut self, e: Event) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        }
    }

    /// Raw counts observed so far.
    pub fn counts(&self) -> ProbeCounts {
        self.counts
    }

    /// Summarise the recorded window.
    pub fn summary(&self) -> ProbeSummary {
        let total = self.counts.total().max(1) as f64;
        let mut pages = HashSet::new();
        let mut lines = HashSet::new();
        for e in &self.events {
            if let Event::Load(a) | Event::Store(a) = e {
                pages.insert(a >> 12);
                lines.insert(a >> 6);
            }
        }
        ProbeSummary {
            load_frac: self.counts.loads as f64 / total,
            store_frac: self.counts.stores as f64 / total,
            branch_frac: self.counts.branches as f64 / total,
            fp_frac: self.counts.fp as f64 / total,
            taken_rate: self.counts.taken as f64 / self.counts.branches.max(1) as f64,
            data_pages: pages.len(),
            data_lines: lines.len(),
            total_events: self.counts.total(),
        }
    }

    /// Convert the recorded window into a replayable trace.
    ///
    /// Event PCs are synthesised as a compact sequential footprint — the
    /// probe captures *data* behaviour faithfully; instruction-footprint
    /// behaviour of JIT'd production stacks is profile territory.
    pub fn into_trace(self) -> RecordedTrace {
        let mut ops = Vec::with_capacity(self.events.len());
        let mut pc = 0x40_0000u64;
        for e in &self.events {
            let kind = match *e {
                Event::Load(addr) => OpKind::Load { addr, size: 8 },
                Event::Store(addr) => OpKind::Store { addr, size: 8 },
                Event::Branch(taken) => OpKind::Branch {
                    taken,
                    target: pc + 64,
                },
                Event::Alu => OpKind::IntAlu,
                Event::Fp => OpKind::FpAlu,
            };
            ops.push(MicroOp {
                pc,
                kind,
                mode: Mode::User,
                dep_dist: 2,
                rat_hazard: false,
            });
            pc += 4;
        }
        RecordedTrace { ops, next: 0 }
    }
}

/// Replayable trace captured by a [`Probe`].
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    ops: Vec<MicroOp>,
    next: usize,
}

impl RecordedTrace {
    /// Number of ops in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Reset replay to the beginning.
    pub fn rewind(&mut self) {
        self.next = 0;
    }
}

impl Iterator for RecordedTrace {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let op = self.ops.get(self.next).copied();
        self.next += 1;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_and_summary() {
        let mut p = Probe::new(1024);
        let xs = [1u64, 2, 3, 4];
        for x in &xs {
            p.load(x);
            if p.cmp(*x % 2 == 0) {
                p.alu();
            } else {
                p.fp();
            }
        }
        let c = p.counts();
        assert_eq!(c.loads, 4);
        assert_eq!(c.branches, 4);
        assert_eq!(c.taken, 2);
        assert_eq!(c.alu, 2);
        assert_eq!(c.fp, 2);
        let s = p.summary();
        assert!((s.taken_rate - 0.5).abs() < 1e-12);
        assert!(s.data_lines >= 1);
        assert_eq!(s.total_events, 12);
    }

    #[test]
    fn capacity_limits_recording_not_counting() {
        let mut p = Probe::new(4);
        let x = 7u32;
        for _ in 0..100 {
            p.load(&x);
        }
        assert_eq!(p.counts().loads, 100);
        assert_eq!(p.into_trace().len(), 4);
    }

    #[test]
    fn cmp_returns_its_argument() {
        let mut p = Probe::new(8);
        assert!(p.cmp(true));
        assert!(!p.cmp(false));
    }

    #[test]
    fn recorded_trace_replays_in_order() {
        let mut p = Probe::new(16);
        let a = 1u8;
        p.load(&a);
        p.store(&a);
        p.alu();
        let mut t = p.into_trace();
        assert_eq!(t.len(), 3);
        assert!(t.next().unwrap().kind.is_load());
        assert!(t.next().unwrap().kind.is_store());
        assert_eq!(t.next().unwrap().kind, OpKind::IntAlu);
        assert!(t.next().is_none());
        t.rewind();
        assert!(t.next().unwrap().kind.is_load());
    }

    #[test]
    fn pages_footprint_counts_distinct_pages() {
        let mut p = Probe::new(4096);
        let v: Vec<u64> = vec![0; 4096]; // spans several pages
        for x in v.iter().step_by(512) {
            p.load(x);
        }
        assert!(p.summary().data_pages >= 2);
    }
}
