//! Workload profiles: cause-level descriptions of benchmark behaviour.
//!
//! A [`WorkloadProfile`] captures everything the micro-architecture
//! simulator needs to reproduce a workload's counter-visible behaviour:
//!
//! * a [`CodeModel`] — instruction footprint, basic-block popularity and
//!   control-flow regularity (drives L1-I / ITLB / branch-predictor
//!   behaviour),
//! * a set of [`DataRegion`]s — a working-set mixture with per-region
//!   access patterns (drives L1-D / L2 / L3 / DTLB behaviour),
//! * an [`InstMix`] — fractions of loads/stores/branches/FP ops,
//! * an optional [`KernelModel`] — privilege-mode bursts with their own
//!   code and data footprints (drives Figure 4's user/kernel breakdown),
//! * a [`DepModel`] — register-dependence distances (drives achievable
//!   instruction-level parallelism), and
//! * `rat_hazard_rate` — the single direct-injection knob, modelling
//!   partial-register / read-port rename hazards that a synthetic stream
//!   cannot cause organically (see DESIGN.md §5.3).
//!
//! Profiles are built with [`WorkloadProfile::builder`], which validates
//! every field on [`ProfileBuilder::build`].

use std::fmt;

/// Bytes per micro-op of instruction footprint (decoded-op granularity).
pub const BYTES_PER_OP: u64 = 4;

/// Model of a workload's instruction stream structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeModel {
    /// Total instruction footprint in bytes.
    pub footprint_bytes: u64,
    /// Zipf exponent of basic-block popularity; 0 = flat (worst-case
    /// locality), ~1 = heavily skewed hot loops.
    pub zipf_theta: f64,
    /// Fraction of block-ending branches that are taken on average.
    pub taken_rate: f64,
    /// Probability that a branch deviates from its block's dominant
    /// direction (per-branch entropy floor; sets the direction
    /// misprediction floor).
    pub branch_noise: f64,
    /// Probability that a taken branch goes to the block's fixed preferred
    /// successor rather than a random popular block (sets target
    /// predictability and instruction-stream locality).
    pub regularity: f64,
}

impl Default for CodeModel {
    fn default() -> Self {
        CodeModel {
            footprint_bytes: 64 * 1024,
            zipf_theta: 0.8,
            taken_rate: 0.40,
            branch_noise: 0.02,
            regularity: 0.97,
        }
    }
}

impl CodeModel {
    /// Number of basic blocks implied by the footprint and block size.
    pub fn num_blocks(&self, ops_per_block: u32) -> usize {
        let block_bytes = u64::from(ops_per_block) * BYTES_PER_OP;
        ((self.footprint_bytes / block_bytes).max(2)) as usize
    }
}

/// Spatial access pattern within a [`DataRegion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Cursor advances by `stride` bytes each access, wrapping at the
    /// region end (streaming; prefetcher-friendly).
    Sequential {
        /// Cursor advance per access in bytes.
        stride: u32,
    },
    /// Every access picks a uniformly random 8-byte-aligned offset
    /// (pointer-chasing / hash-table-like; prefetcher-hostile).
    Random,
    /// Like `Sequential` but revisits a window: the cursor advances by
    /// `stride` and rewinds to the window start every `window` bytes,
    /// modelling blocked/tiled reuse (e.g. DGEMM tiles).
    Tiled {
        /// Cursor advance per access in bytes.
        stride: u32,
        /// Reuse window in bytes.
        window: u32,
    },
    /// Object-clustered access: dwell on one (random) 4 KiB page for
    /// `page_dwell` accesses at random offsets, then jump to another
    /// random page. Models heap-object traffic: poor line locality but
    /// real page locality (typical of managed-runtime service heaps).
    Clustered {
        /// Accesses per page before jumping.
        page_dwell: u32,
    },
}

/// One component of a workload's data working-set mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct DataRegion {
    /// Region size in bytes.
    pub bytes: u64,
    /// Fraction of memory accesses that touch this region (weights are
    /// normalised at build time).
    pub weight: f64,
    /// Access pattern within the region.
    pub pattern: AccessPattern,
}

impl DataRegion {
    /// Convenience constructor.
    pub fn new(bytes: u64, weight: f64, pattern: AccessPattern) -> Self {
        DataRegion {
            bytes,
            weight,
            pattern,
        }
    }
}

/// Instruction-class mixture. Remaining probability mass is simple
/// integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstMix {
    /// Fraction of µops that are loads.
    pub load: f64,
    /// Fraction of µops that are stores.
    pub store: f64,
    /// Fraction of µops that are branches (determines mean basic-block
    /// length: `1 / branch`).
    pub branch: f64,
    /// Fraction of µops that are FP add/mul.
    pub fp: f64,
    /// Fraction of µops that are integer multiplies.
    pub mul: f64,
    /// Fraction of µops that are divides.
    pub div: f64,
}

impl Default for InstMix {
    fn default() -> Self {
        // A typical integer data-processing mix.
        InstMix {
            load: 0.28,
            store: 0.12,
            branch: 0.16,
            fp: 0.02,
            mul: 0.01,
            div: 0.002,
        }
    }
}

impl InstMix {
    /// Sum of all specified fractions (must be <= 1).
    pub fn total(&self) -> f64 {
        self.load + self.store + self.branch + self.fp + self.mul + self.div
    }

    /// Mean ops per basic block implied by the branch fraction.
    pub fn ops_per_block(&self) -> u32 {
        (1.0 / self.branch.max(1e-3)).round().max(2.0) as u32
    }
}

/// Privilege-mode behaviour: what fraction of instructions retire in
/// kernel mode, and what the kernel's own footprints look like.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelModel {
    /// Fraction of all retired instructions executed in kernel mode.
    pub fraction: f64,
    /// Mean length of one kernel burst (syscall + softirq work), in µops.
    pub burst_ops: u32,
    /// Kernel instruction footprint (network/disk/VFS stacks are large).
    pub code: CodeModel,
    /// Kernel data regions (skb/page-cache/buffer traffic).
    pub data: Vec<DataRegion>,
}

impl KernelModel {
    /// A generic Linux-kernel-ish model: ~400 KiB hot kernel text, buffer
    /// and page-cache traffic with poor locality.
    pub fn generic(fraction: f64) -> Self {
        KernelModel {
            fraction,
            burst_ops: 1200,
            code: CodeModel {
                footprint_bytes: 400 * 1024,
                zipf_theta: 0.85,
                taken_rate: 0.42,
                branch_noise: 0.03,
                regularity: 0.95,
            },
            data: vec![
                DataRegion::new(32 * 1024, 0.55, AccessPattern::Random),
                DataRegion::new(64 * 1024, 0.25, AccessPattern::Clustered { page_dwell: 32 }),
                DataRegion::new(
                    32 * 1024 * 1024,
                    0.20,
                    AccessPattern::Sequential { stride: 16 },
                ),
            ],
        }
    }
}

/// Register-dependence model: how far back an op's producers sit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepModel {
    /// Fraction of µops that have an in-window register dependence.
    pub dep_fraction: f64,
    /// Mean distance (in µops) to the producer, given a dependence exists.
    pub mean_dist: f64,
    /// Given a dependence exists, probability that it is on the most
    /// recent *load* (pointer-chasing / consume-after-load chains) rather
    /// than a distance-sampled producer. Load-chained consumers are what
    /// fill the reservation station while misses are outstanding.
    pub on_load: f64,
    /// Probability that an op joins the workload's *loop-carried serial
    /// chain* (accumulators, induction recurrences): chain members always
    /// depend on the previous member, so this bounds achievable ILP the
    /// way real recurrences do.
    pub serial_chain: f64,
}

impl Default for DepModel {
    fn default() -> Self {
        DepModel {
            dep_fraction: 0.55,
            mean_dist: 6.0,
            on_load: 0.25,
            serial_chain: 0.0,
        }
    }
}

/// Complete cause-level description of one workload. See module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Human-readable workload name.
    pub name: String,
    /// Instruction-stream model.
    pub code: CodeModel,
    /// Data working-set mixture (weights normalised).
    pub data: Vec<DataRegion>,
    /// Instruction-class mixture.
    pub mix: InstMix,
    /// Privilege-mode model; `None` means pure user-mode execution.
    pub kernel: Option<KernelModel>,
    /// Register-dependence model.
    pub dep: DepModel,
    /// Probability per µop of a RAT (rename) hazard bubble.
    pub rat_hazard_rate: f64,
}

impl WorkloadProfile {
    /// Start building a profile with the given name and library defaults.
    pub fn builder(name: impl Into<String>) -> ProfileBuilder {
        ProfileBuilder::new(name)
    }

    /// Kernel-mode instruction fraction (0 when no kernel model).
    pub fn kernel_fraction(&self) -> f64 {
        self.kernel.as_ref().map_or(0.0, |k| k.fraction)
    }

    /// Total data working-set size in bytes.
    pub fn data_footprint(&self) -> u64 {
        self.data.iter().map(|r| r.bytes).sum()
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: code {} KiB, data {} KiB across {} regions, {:.0}% kernel",
            self.name,
            self.code.footprint_bytes / 1024,
            self.data_footprint() / 1024,
            self.data.len(),
            self.kernel_fraction() * 100.0
        )
    }
}

/// Validation failure produced by [`ProfileBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct BuildProfileError {
    msg: String,
}

impl fmt::Display for BuildProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload profile: {}", self.msg)
    }
}

impl std::error::Error for BuildProfileError {}

/// Builder for [`WorkloadProfile`] (see [`WorkloadProfile::builder`]).
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    profile: WorkloadProfile,
}

impl ProfileBuilder {
    fn new(name: impl Into<String>) -> Self {
        ProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                code: CodeModel::default(),
                data: vec![DataRegion::new(16 * 1024, 1.0, AccessPattern::Random)],
                mix: InstMix::default(),
                kernel: None,
                dep: DepModel::default(),
                rat_hazard_rate: 0.0,
            },
        }
    }

    /// Set the full code model.
    pub fn code(mut self, code: CodeModel) -> Self {
        self.profile.code = code;
        self
    }

    /// Shortcut: set only the instruction footprint, in KiB.
    pub fn code_footprint_kib(mut self, kib: u64) -> Self {
        self.profile.code.footprint_bytes = kib * 1024;
        self
    }

    /// Replace the data-region mixture.
    pub fn data(mut self, regions: Vec<DataRegion>) -> Self {
        self.profile.data = regions;
        self
    }

    /// Add one data region.
    pub fn region(mut self, bytes: u64, weight: f64, pattern: AccessPattern) -> Self {
        self.profile
            .data
            .push(DataRegion::new(bytes, weight, pattern));
        self
    }

    /// Set the instruction mix.
    pub fn mix(mut self, mix: InstMix) -> Self {
        self.profile.mix = mix;
        self
    }

    /// Set the kernel model.
    pub fn kernel(mut self, kernel: KernelModel) -> Self {
        self.profile.kernel = Some(kernel);
        self
    }

    /// Shortcut: generic kernel model with the given instruction fraction.
    pub fn kernel_fraction(mut self, fraction: f64) -> Self {
        self.profile.kernel = Some(KernelModel::generic(fraction));
        self
    }

    /// Set the dependence model (keeps the chain-related rates).
    pub fn dep(mut self, dep_fraction: f64, mean_dist: f64) -> Self {
        self.profile.dep.dep_fraction = dep_fraction;
        self.profile.dep.mean_dist = mean_dist;
        self
    }

    /// Set the loop-carried serial-chain occupancy.
    pub fn serial_chain(mut self, p: f64) -> Self {
        self.profile.dep.serial_chain = p;
        self
    }

    /// Set the probability that a dependence chains on the latest load.
    pub fn dep_on_load(mut self, on_load: f64) -> Self {
        self.profile.dep.on_load = on_load;
        self
    }

    /// Set the RAT-hazard injection rate.
    pub fn rat_hazard_rate(mut self, rate: f64) -> Self {
        self.profile.rat_hazard_rate = rate;
        self
    }

    /// Validate and produce the profile.
    ///
    /// # Errors
    /// Returns [`BuildProfileError`] if any fraction is outside `[0, 1]`,
    /// the instruction mix exceeds 1, the data mixture is empty or has
    /// non-positive weights, or any region/footprint is empty.
    pub fn build(self) -> Result<WorkloadProfile, BuildProfileError> {
        let p = &self.profile;
        let err = |msg: &str| {
            Err(BuildProfileError {
                msg: format!("{}: {msg}", p.name),
            })
        };
        if p.code.footprint_bytes < 1024 {
            return err("code footprint must be at least 1 KiB");
        }
        if !(0.0..=4.0).contains(&p.code.zipf_theta) || !p.code.zipf_theta.is_finite() {
            return err("zipf_theta must be within [0, 4]");
        }
        for (lbl, v) in [
            ("taken_rate", p.code.taken_rate),
            ("branch_noise", p.code.branch_noise),
            ("regularity", p.code.regularity),
            ("rat_hazard_rate", p.rat_hazard_rate),
            ("dep_fraction", p.dep.dep_fraction),
            ("dep_on_load", p.dep.on_load),
            ("serial_chain", p.dep.serial_chain),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return err(&format!("{lbl} must be within [0, 1]"));
            }
        }
        if p.mix.total() > 1.0 + 1e-9 {
            return err("instruction mix fractions exceed 1");
        }
        if p.mix.branch <= 0.0 {
            return err("branch fraction must be positive");
        }
        if p.data.is_empty() {
            return err("at least one data region is required");
        }
        for r in &p.data {
            if r.bytes < 64 {
                return err("data regions must be at least one cache line");
            }
            if r.weight <= 0.0 || !r.weight.is_finite() {
                return err("data region weights must be positive");
            }
        }
        if let Some(k) = &p.kernel {
            if !(0.0..1.0).contains(&k.fraction) {
                return err("kernel fraction must be within [0, 1)");
            }
            if k.burst_ops == 0 {
                return err("kernel burst length must be positive");
            }
            if k.data.is_empty() {
                return err("kernel model needs data regions");
            }
        }
        if p.dep.mean_dist < 1.0 {
            return err("mean dependence distance must be >= 1");
        }
        Ok(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_builds() {
        let p = WorkloadProfile::builder("test").build().unwrap();
        assert_eq!(p.name, "test");
        assert!(p.kernel.is_none());
        assert_eq!(p.kernel_fraction(), 0.0);
    }

    #[test]
    fn builder_sets_fields() {
        let p = WorkloadProfile::builder("w")
            .code_footprint_kib(512)
            .region(1 << 20, 0.5, AccessPattern::Random)
            .kernel_fraction(0.24)
            .dep(0.6, 8.0)
            .rat_hazard_rate(0.01)
            .build()
            .unwrap();
        assert_eq!(p.code.footprint_bytes, 512 * 1024);
        assert_eq!(p.data.len(), 2);
        assert!((p.kernel_fraction() - 0.24).abs() < 1e-12);
        assert_eq!(p.rat_hazard_rate, 0.01);
    }

    #[test]
    fn rejects_bad_mix() {
        let bad = InstMix {
            load: 0.7,
            store: 0.5,
            ..InstMix::default()
        };
        assert!(WorkloadProfile::builder("w").mix(bad).build().is_err());
    }

    #[test]
    fn rejects_zero_branch_fraction() {
        let bad = InstMix {
            branch: 0.0,
            ..InstMix::default()
        };
        assert!(WorkloadProfile::builder("w").mix(bad).build().is_err());
    }

    #[test]
    fn rejects_empty_data() {
        assert!(WorkloadProfile::builder("w").data(vec![]).build().is_err());
    }

    #[test]
    fn rejects_negative_weight() {
        let r = vec![DataRegion::new(1024, -1.0, AccessPattern::Random)];
        assert!(WorkloadProfile::builder("w").data(r).build().is_err());
    }

    #[test]
    fn rejects_tiny_code() {
        let c = CodeModel {
            footprint_bytes: 10,
            ..CodeModel::default()
        };
        assert!(WorkloadProfile::builder("w").code(c).build().is_err());
    }

    #[test]
    fn rejects_out_of_range_rates() {
        assert!(WorkloadProfile::builder("w")
            .rat_hazard_rate(1.5)
            .build()
            .is_err());
        let c = CodeModel {
            regularity: -0.1,
            ..CodeModel::default()
        };
        assert!(WorkloadProfile::builder("w").code(c).build().is_err());
    }

    #[test]
    fn ops_per_block_from_branch_fraction() {
        let mix = InstMix {
            branch: 0.125,
            ..InstMix::default()
        };
        assert_eq!(mix.ops_per_block(), 8);
    }

    #[test]
    fn display_is_informative() {
        let p = WorkloadProfile::builder("sort").build().unwrap();
        let s = p.to_string();
        assert!(s.contains("sort"));
        assert!(s.contains("code"));
    }

    #[test]
    fn data_footprint_sums_regions() {
        let p = WorkloadProfile::builder("w")
            .data(vec![
                DataRegion::new(1024, 1.0, AccessPattern::Random),
                DataRegion::new(2048, 1.0, AccessPattern::Sequential { stride: 64 }),
            ])
            .build()
            .unwrap();
        assert_eq!(p.data_footprint(), 3072);
    }
}
