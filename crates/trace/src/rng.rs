//! Small deterministic random-number utilities.
//!
//! Trace synthesis must be exactly reproducible across runs and platforms
//! (the whole experiment pipeline is seeded), so this crate carries its own
//! tiny SplitMix64/xoshiro-style generator plus the two distributions trace
//! synthesis needs (Zipf and geometric) instead of depending on `rand`.

/// SplitMix64 pseudo-random generator.
///
/// Passes BigCrush when used as a 64-bit stream; more than adequate for
/// workload synthesis, and trivially seedable/forkable.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The 53-bit uniform underlying [`SplitMix64::next_f64`], as an
    /// integer. Consumes exactly one `next_u64`, so mixing this with
    /// `next_f64` keeps the stream position identical; comparing it
    /// against [`lt_threshold`]/[`le_threshold`] replicates float
    /// comparisons bit-for-bit without the int→float conversion.
    #[inline]
    pub fn next_u53(&mut self) -> u64 {
        self.next_u64() >> 11
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fork an independent generator (for decoupled sub-streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// Scale between `next_f64` and its integer mantissa: `next_f64() ==
/// next_u53() / 2^53`.
const TWO53: f64 = (1u64 << 53) as f64;

/// Integer threshold such that `rng.next_u53() < lt_threshold(p)` is
/// **bit-identical** to `rng.next_f64() < p`.
///
/// Proof sketch: with `x = next_u53()` (an integer `< 2^53`, exactly
/// representable), `next_f64() = x·2⁻⁵³` exactly, so the float
/// comparison is `x·2⁻⁵³ < p ⇔ x < p·2⁵³`. The product `p·2⁵³` is a
/// pure exponent shift and therefore *exact* in f64, and for an integer
/// `x`, `x < v ⇔ x < ⌈v⌉`. Edge cases: `p ≤ 0` (or NaN) maps to 0
/// (never), `p ≥ 1` maps past the maximum mantissa (always) — matching
/// the float comparison in every case.
pub fn lt_threshold(p: f64) -> u64 {
    (p * TWO53).ceil() as u64
}

/// Integer threshold such that `rng.next_u53() <= le_threshold(w)` is
/// **bit-identical** to `rng.next_f64() <= w` for `w ≥ 0` (same
/// argument as [`lt_threshold`], with `x ≤ v ⇔ x ≤ ⌊v⌋` for integer
/// `x`). `w < 0` is rejected: `x ≤ t` over unsigned `t` cannot express
/// "never".
pub fn le_threshold(w: f64) -> u64 {
    assert!(w >= 0.0, "le_threshold requires a non-negative operand");
    (w * TWO53).floor() as u64
}

/// Zipf-distributed sampler over ranks `0..n` with exponent `theta`.
///
/// Used for basic-block popularity (hot/cold code) and key popularity in
/// data generators. Sampling uses an inverted cumulative table, so draws
/// are O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta >= 0`.
    /// `theta == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(theta >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Geometric sampler: number of failures before first success with
/// success probability `p`; mean `(1-p)/p`.
#[derive(Debug, Clone, Copy)]
pub struct Geometric {
    p: f64,
    /// `ln(1 - p)`, precomputed: the transcendental per draw is the
    /// numerator's `ln` alone. (Same division, same operand values, so
    /// samples are bit-identical to recomputing the denominator.)
    ln_q: f64,
}

impl Geometric {
    /// Create a sampler with success probability `p in (0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1]");
        Geometric {
            p,
            ln_q: (1.0 - p).ln(),
        }
    }

    /// Create a sampler with the given mean (`mean >= 0`).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean >= 0.0, "geometric mean must be non-negative");
        Geometric::new(1.0 / (mean + 1.0))
    }

    /// Draw a sample.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / self.ln_q).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = SplitMix64::new(3);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn integer_thresholds_replicate_float_comparisons_exactly() {
        // For a spread of probabilities (including awkward ones) and a
        // long uniform stream, the integer comparisons must agree with
        // the float comparisons on every single draw.
        let ps = [
            0.0,
            1e-18,
            f64::MIN_POSITIVE,
            0.001,
            0.015,
            0.25,
            1.0 / 3.0,
            0.5,
            0.975,
            0.999,
            1.0,
            1.5,
        ];
        for &p in &ps {
            let lt = lt_threshold(p);
            let le = le_threshold(p);
            let mut a = SplitMix64::new(0xC0FFEE);
            let mut b = a.clone();
            for _ in 0..20_000 {
                let f = a.next_f64();
                let x = b.next_u53();
                assert_eq!(f < p, x < lt, "lt mismatch at p={p} x={x}");
                assert_eq!(f <= p, x <= le, "le mismatch at p={p} x={x}");
            }
        }
        // Boundary mantissas, exhaustively against boundary thresholds.
        for x in [0u64, 1, 2, (1 << 53) - 2, (1 << 53) - 1] {
            let f = x as f64 * (1.0 / TWO53);
            for &p in &ps {
                assert_eq!(f < p, x < lt_threshold(p), "lt boundary p={p} x={x}");
                assert_eq!(f <= p, x <= le_threshold(p), "le boundary p={p} x={x}");
            }
        }
    }

    #[test]
    fn next_u53_consumes_one_draw_like_next_f64() {
        let mut a = SplitMix64::new(31);
        let mut b = SplitMix64::new(31);
        a.next_f64();
        b.next_u53();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let zipf = Zipf::new(100, 0.99);
        let mut rng = SplitMix64::new(5);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(6);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let g = Geometric::with_mean(4.0);
        let mut rng = SplitMix64::new(7);
        let total: u64 = (0..200_000).map(|_| g.sample(&mut rng)).sum();
        let mean = total as f64 / 200_000.0;
        assert!((mean - 4.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn geometric_p1_is_always_zero() {
        let g = Geometric::new(1.0);
        let mut rng = SplitMix64::new(8);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 0);
        }
    }
}
