//! Reuse-distance analysis.
//!
//! A classical LRU stack-distance histogram over cache-line granules. The
//! characterization harness uses it to sanity-check that synthesized
//! address streams have the locality class their profile claims (and it is
//! exposed publicly because it is generally useful when building new
//! profiles from recorded traces).

use std::collections::HashMap;

/// LRU stack reuse-distance histogram over 64-byte lines.
///
/// Distances are bucketed in powers of two; `bucket[i]` counts accesses
/// with stack distance in `[2^i, 2^(i+1))`. Cold (first-touch) accesses
/// are counted separately.
#[derive(Debug, Clone, Default)]
pub struct ReuseHistogram {
    /// Power-of-two distance buckets.
    pub buckets: Vec<u64>,
    /// First-touch accesses (infinite distance).
    pub cold: u64,
    /// Total accesses observed.
    pub total: u64,
    // LRU stack as a vector (O(n) update — fine for analysis windows).
    stack: Vec<u64>,
    position: HashMap<u64, usize>,
}

impl ReuseHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        ReuseHistogram::default()
    }

    /// Observe an access to byte address `addr`.
    pub fn touch(&mut self, addr: u64) {
        let line = addr >> 6;
        self.total += 1;
        if let Some(&pos) = self.position.get(&line) {
            // Stack distance = number of distinct lines more recent.
            let dist = self.stack.len() - 1 - pos;
            let bucket = (dist as u64 + 1).ilog2() as usize;
            if self.buckets.len() <= bucket {
                self.buckets.resize(bucket + 1, 0);
            }
            self.buckets[bucket] += 1;
            // Move to top.
            self.stack.remove(pos);
            for p in self.position.values_mut() {
                if *p > pos {
                    *p -= 1;
                }
            }
            self.position.insert(line, self.stack.len());
            self.stack.push(line);
        } else {
            self.cold += 1;
            self.position.insert(line, self.stack.len());
            self.stack.push(line);
        }
    }

    /// Fraction of (non-cold) accesses whose stack distance is below
    /// `lines` — i.e. the hit ratio of a fully-associative LRU cache of
    /// that many lines.
    pub fn hit_ratio_at(&self, lines: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cutoff = (lines as u64).max(1).ilog2() as usize;
        let hits: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < cutoff)
            .map(|(_, c)| *c)
            .sum();
        hits as f64 / self.total as f64
    }

    /// Number of distinct lines seen.
    pub fn footprint_lines(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_counted() {
        let mut h = ReuseHistogram::new();
        for i in 0..100u64 {
            h.touch(i * 64);
        }
        assert_eq!(h.cold, 100);
        assert_eq!(h.total, 100);
        assert_eq!(h.footprint_lines(), 100);
    }

    #[test]
    fn tight_loop_has_small_distances() {
        let mut h = ReuseHistogram::new();
        for _ in 0..50 {
            for i in 0..4u64 {
                h.touch(i * 64);
            }
        }
        // After warmup, every access has distance 3.
        assert!(h.hit_ratio_at(8) > 0.9);
    }

    #[test]
    fn streaming_has_no_reuse() {
        let mut h = ReuseHistogram::new();
        for i in 0..10_000u64 {
            h.touch(i * 64);
        }
        assert_eq!(h.cold, 10_000);
        assert_eq!(h.hit_ratio_at(1 << 20), 0.0);
    }

    #[test]
    fn same_line_reuse_is_distance_zero() {
        let mut h = ReuseHistogram::new();
        h.touch(0);
        h.touch(8); // same line
        assert_eq!(h.cold, 1);
        assert_eq!(h.buckets.first().copied().unwrap_or(0), 1);
    }

    #[test]
    fn hit_ratio_monotone_in_cache_size() {
        let mut h = ReuseHistogram::new();
        let mut x = 1u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.touch((x >> 20) % (1 << 16) * 64);
        }
        let small = h.hit_ratio_at(64);
        let big = h.hit_ratio_at(4096);
        assert!(big >= small);
    }
}
