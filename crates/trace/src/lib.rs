//! # dc-trace — workload instruction-stream modelling
//!
//! This crate is the interface between *workloads* and the
//! *micro-architecture simulator* (`dc-cpu`) in the dcbench-rs
//! reproduction of "Characterizing Data Analysis Workloads in Data
//! Centers" (IISWC 2013).
//!
//! The paper measures real binaries with hardware performance counters.
//! We cannot run Hadoop/JVM/SPEC binaries under a counter, so each
//! workload is described by a [`WorkloadProfile`]: a structured,
//! cause-level description of its instruction footprint, data-locality
//! mixture, branch behaviour, privilege-mode pattern and instruction-level
//! parallelism. [`synth::SyntheticTrace`] turns a profile into a
//! deterministic stream of [`MicroOp`]s, and `dc-cpu` executes that stream
//! through real cache / TLB / branch-predictor / pipeline models, so every
//! reported metric *emerges from the same mechanism* the paper measured.
//!
//! Profiles encode causes (e.g. "600 KiB instruction footprint",
//! "2 % of memory accesses touch a 6 MiB region at random"), never effects
//! (an IPC or a miss ratio is never written down anywhere).
//!
//! The [`record`] module provides lightweight probes that the real
//! algorithm implementations in `dc-analytics` use to measure their own
//! op mix and branch bias, which is how the analytics profiles were
//! cross-checked.
//!
//! ```
//! use dc_trace::{profile::WorkloadProfile, synth::SyntheticTrace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = WorkloadProfile::builder("wordcount-like")
//!     .code_footprint_kib(256)
//!     .build()?;
//! let ops: Vec<_> = SyntheticTrace::new(&profile, 7).take(1000).collect();
//! assert_eq!(ops.len(), 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod op;
pub mod profile;
pub mod record;
pub mod reuse;
pub mod rng;
pub mod synth;

pub use op::{MicroOp, Mode, OpKind};
pub use profile::WorkloadProfile;
pub use synth::{SyntheticTrace, MAX_DEP_DIST};

/// A source of micro-operations consumed by the CPU simulator.
///
/// Implemented by [`synth::SyntheticTrace`] (profile-driven synthesis) and
/// [`record::RecordedTrace`] (replay of ops captured from real kernels via
/// [`record::Probe`]).
pub trait TraceSource {
    /// Produce the next micro-op, or `None` when the trace is exhausted.
    fn next_op(&mut self) -> Option<MicroOp>;
}

impl<I: Iterator<Item = MicroOp>> TraceSource for I {
    fn next_op(&mut self) -> Option<MicroOp> {
        self.next()
    }
}
