//! Micro-operation model.
//!
//! A [`MicroOp`] is the unit the CPU simulator executes: roughly one
//! decoded RISC-like operation (what Intel calls a µop). The trace layer
//! deliberately stays at this abstraction level — the paper's counters
//! (stall breakdowns, cache/TLB misses, branch mispredictions) are all
//! functions of the µop stream, not of x86 encoding details.

use std::fmt;

/// Privilege mode an instruction retires in.
///
/// Figure 4 of the paper breaks retired instructions down into user
/// ("application") and kernel mode; service workloads execute >40 % of
/// instructions in the kernel while most data-analysis workloads stay
/// below 10 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// User-mode (application) execution.
    #[default]
    User,
    /// Kernel-mode execution (syscalls, interrupts, network/disk stacks).
    Kernel,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::User => f.write_str("user"),
            Mode::Kernel => f.write_str("kernel"),
        }
    }
}

/// Functional class of a micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Simple integer ALU operation (1-cycle class).
    IntAlu,
    /// Integer multiply (3-cycle class on Westmere).
    IntMul,
    /// Integer/FP divide (long-latency, unpipelined class).
    Div,
    /// Floating-point add/mul (3-cycle pipelined class).
    FpAlu,
    /// Memory load of `size` bytes from virtual address `addr`.
    Load {
        /// Virtual byte address accessed.
        addr: u64,
        /// Access width in bytes.
        size: u8,
    },
    /// Memory store of `size` bytes to virtual address `addr`.
    Store {
        /// Virtual byte address accessed.
        addr: u64,
        /// Access width in bytes.
        size: u8,
    },
    /// Control transfer. `taken` is the architectural outcome and
    /// `target` the architectural destination address.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Destination instruction address when taken.
        target: u64,
    },
}

impl OpKind {
    /// Returns `true` for [`OpKind::Load`].
    pub fn is_load(&self) -> bool {
        matches!(self, OpKind::Load { .. })
    }

    /// Returns `true` for [`OpKind::Store`].
    pub fn is_store(&self) -> bool {
        matches!(self, OpKind::Store { .. })
    }

    /// Returns `true` for [`OpKind::Branch`].
    pub fn is_branch(&self) -> bool {
        matches!(self, OpKind::Branch { .. })
    }

    /// Returns `true` for any memory-accessing kind.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// The memory address touched, if any.
    pub fn mem_addr(&self) -> Option<u64> {
        match self {
            OpKind::Load { addr, .. } | OpKind::Store { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

/// One micro-operation in program (fetch) order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Instruction (fetch) address.
    pub pc: u64,
    /// Functional class plus operands relevant to the simulator.
    pub kind: OpKind,
    /// Privilege mode.
    pub mode: Mode,
    /// Distance, in µops, to the most recent producer of one of this op's
    /// source operands. `0` means the op has no in-window register
    /// dependence. The backend uses this to model instruction-level
    /// parallelism without tracking architectural register names.
    pub dep_dist: u16,
    /// Set when this µop triggers a register-allocation-table hazard
    /// (partial-register stall / read-port conflict class). See
    /// `WorkloadProfile::rat_hazard_rate` — this is the one
    /// direct-injection knob in the model, documented in DESIGN.md §5.3.
    pub rat_hazard: bool,
}

impl MicroOp {
    /// Convenience constructor for a plain integer ALU op.
    pub fn int_alu(pc: u64) -> Self {
        MicroOp {
            pc,
            kind: OpKind::IntAlu,
            mode: Mode::User,
            dep_dist: 0,
            rat_hazard: false,
        }
    }

    /// Convenience constructor for a load.
    pub fn load(pc: u64, addr: u64) -> Self {
        MicroOp {
            pc,
            kind: OpKind::Load { addr, size: 8 },
            mode: Mode::User,
            dep_dist: 0,
            rat_hazard: false,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(pc: u64, addr: u64) -> Self {
        MicroOp {
            pc,
            kind: OpKind::Store { addr, size: 8 },
            mode: Mode::User,
            dep_dist: 0,
            rat_hazard: false,
        }
    }

    /// Convenience constructor for a branch.
    pub fn branch(pc: u64, taken: bool, target: u64) -> Self {
        MicroOp {
            pc,
            kind: OpKind::Branch { taken, target },
            mode: Mode::User,
            dep_dist: 0,
            rat_hazard: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(OpKind::Load { addr: 0, size: 8 }.is_load());
        assert!(OpKind::Load { addr: 0, size: 8 }.is_mem());
        assert!(!OpKind::Load { addr: 0, size: 8 }.is_store());
        assert!(OpKind::Store { addr: 4, size: 4 }.is_store());
        assert!(OpKind::Store { addr: 4, size: 4 }.is_mem());
        assert!(OpKind::Branch {
            taken: true,
            target: 0
        }
        .is_branch());
        assert!(!OpKind::IntAlu.is_mem());
        assert!(!OpKind::FpAlu.is_branch());
    }

    #[test]
    fn mem_addr_extraction() {
        assert_eq!(
            OpKind::Load {
                addr: 0x1234,
                size: 8
            }
            .mem_addr(),
            Some(0x1234)
        );
        assert_eq!(
            OpKind::Store {
                addr: 0x88,
                size: 1
            }
            .mem_addr(),
            Some(0x88)
        );
        assert_eq!(OpKind::IntAlu.mem_addr(), None);
        assert_eq!(
            OpKind::Branch {
                taken: false,
                target: 9
            }
            .mem_addr(),
            None
        );
    }

    #[test]
    fn mode_display_and_default() {
        assert_eq!(Mode::default(), Mode::User);
        assert_eq!(Mode::User.to_string(), "user");
        assert_eq!(Mode::Kernel.to_string(), "kernel");
    }

    #[test]
    fn constructors() {
        let op = MicroOp::load(0x400000, 0x7000_0000);
        assert_eq!(op.pc, 0x400000);
        assert_eq!(op.kind.mem_addr(), Some(0x7000_0000));
        assert_eq!(op.mode, Mode::User);
        let b = MicroOp::branch(0x10, true, 0x40);
        assert!(b.kind.is_branch());
        let s = MicroOp::store(0x14, 0x99);
        assert!(s.kind.is_store());
        let a = MicroOp::int_alu(0x18);
        assert_eq!(a.kind, OpKind::IntAlu);
    }
}
