//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the small API subset it actually uses: a seedable
//! [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits with
//! `gen`/`gen_range`/`gen_bool`, and `distributions::{Distribution,
//! Uniform}`. The generator is SplitMix64 — deterministic, fast, and
//! statistically ample for synthetic data generation. It intentionally
//! does **not** reproduce upstream `rand`'s value streams; all in-repo
//! consumers seed explicitly and assert on their own outputs.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a `T` from the "standard" distribution (full integer range,
/// unit interval for floats).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly sampleable from a half-open `Range`.
pub trait UniformSample: Sized + Copy {
    /// Uniform value in `[low, high)`. Panics if the range is empty.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is ~span/2^64 — negligible for the small
                // spans used by the generators in this workspace.
                let off = (rng.next_u64() as u128) % span;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::standard(rng)
    }
}

impl UniformSample for f32 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f32::standard(rng)
    }
}

/// The user-facing generator trait (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::uniform(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Distribution objects, mirroring `rand::distributions`.
pub mod distributions {
    use super::{RngCore, UniformSample};

    /// A distribution over values of `T`, sampleable with any generator.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: UniformSample> Uniform<T> {
        /// Build a uniform distribution; panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl<T: UniformSample> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::uniform(rng, self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(-1.0, 1.0);
        for _ in 0..1000 {
            let v: f64 = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
