//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the subset of proptest it actually uses:
//!
//! * the [`proptest!`] macro wrapping `fn name(arg in strategy, ...)`
//!   test cases,
//! * [`Strategy`] implementations for numeric ranges, `"[chars]{m,n}"`
//!   string patterns, and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Each test runs `PROPTEST_CASES` (default 64) deterministic cases —
//! a block-level `#![cases(N)]` header raises that to at least `N` — a
//! failing case re-panics with the sampled inputs so failures are
//! reproducible and debuggable. Shrinking is not implemented — cases are
//! drawn smallest-bias-free, and the deterministic seed makes any
//! failure replayable as-is.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic SplitMix64 generator driving case sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform u64 in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator: the proptest strategy trait, minus shrinking.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        Range {
            start: self.start as f64,
            end: self.end as f64,
        }
        .sample(rng) as f32
    }
}

/// `"[chars]{min,max}"` regex-lite string strategy, as used by upstream
/// proptest's `&str` strategies. Supports a single character class with
/// `a-z` ranges and literal characters, followed by a repetition count.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[class]{min,max}` into (alphabet, min, max).
fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let min: usize = lo.trim().parse().ok()?;
    let max: usize = hi.trim().parse().ok()?;
    if max < min {
        return None;
    }

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` of `inner`-sampled values with a
    /// length drawn from `len`.
    pub struct VecStrategy<S> {
        inner: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { inner, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.inner.sample(rng)).collect()
        }
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Extract a panic payload's message, if any.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestRng};
}

/// Define deterministic property tests.
///
/// An optional `#![cases(N)]` header raises the case count for the
/// block to at least `N` — `PROPTEST_CASES` still wins when it asks for
/// more, so suites that pin a floor (e.g. 256 cases for numeric laws)
/// stay cheap to raise globally but never silently run fewer.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0u64..100, v in proptest::collection::vec(0u32..9, 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![cases($min:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest!(@min ($min) $($(#[$meta])* fn $name($($arg in $strat),+) $body)+);
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest!(@min (0u64) $($(#[$meta])* fn $name($($arg in $strat),+) $body)+);
    };
    (@min ($min:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases().max($min);
                for case in 0..cases {
                    // Distinct deterministic seed per (test, case).
                    let mut seed: u64 = 0xDCB0_0000 ^ case;
                    for b in stringify!($name).bytes() {
                        seed = seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
                    }
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = outcome {
                        panic!(
                            "property {} failed at case {}/{}\n  inputs: {}\n  cause: {}",
                            stringify!($name),
                            case,
                            cases,
                            described,
                            $crate::panic_message(payload.as_ref()),
                        );
                    }
                }
            }
        )+
    };
}

/// Assert within a property body (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_parsing_covers_ranges_and_literals() {
        let (alpha, min, max) = super::parse_pattern("[a-d ]{0,30}").expect("parses");
        assert_eq!(alpha, vec!['a', 'b', 'c', 'd', ' ']);
        assert_eq!((min, max), (0, 30));
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = collection::vec("[a-c ]{0,40}", 0..20);
        let a = strat.sample(&mut TestRng::new(42));
        let b = strat.sample(&mut TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        /// The macro itself: ranges respected, vec lengths respected.
        #[test]
        fn macro_samples_in_range(
            x in 3u64..17,
            f in -2.0f64..2.0,
            v in collection::vec(0u32..5, 1..9),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| *e < 5));
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 99);
        }
    }
}
