//! The hardware-event catalogue.
//!
//! Each [`PerfEvent`] carries the Westmere event-select code and unit
//! mask the paper programmed (Intel SDM Vol. 3 appendix; e.g.
//! `INST_RETIRED.ANY_P` is event 0xC0 umask 0x01). The simulator does not
//! decode these numbers — they document the mapping from the paper's
//! methodology onto the [`dc_cpu::PerfCounts`] fields and let the `Pmu`
//! present a faithful `perf`-like programming interface.

use dc_cpu::PerfCounts;

/// One measurable hardware event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PerfEvent {
    /// `INST_RETIRED.ANY_P` — retired instructions.
    InstructionsRetired,
    /// `CPU_CLK_UNHALTED.THREAD_P` — core cycles.
    UnhaltedCycles,
    /// `L1I.MISSES` — L1 instruction-cache misses.
    L1iMisses,
    /// `L1I.READS` — L1 instruction-cache reads.
    L1iReads,
    /// `ITLB_MISSES.ANY` — first-level ITLB misses.
    ItlbMisses,
    /// `ITLB_MISSES.WALK_COMPLETED` — completed page walks from ITLB misses.
    ItlbWalksCompleted,
    /// `L1D.REPL` — L1 data-cache misses (line replacements).
    L1dMisses,
    /// `DTLB_MISSES.ANY` — first-level DTLB misses.
    DtlbMisses,
    /// `DTLB_MISSES.WALK_COMPLETED` — completed page walks from DTLB misses.
    DtlbWalksCompleted,
    /// `L2_RQSTS.REFERENCES` — L2 demand accesses.
    L2References,
    /// `L2_RQSTS.MISS` — L2 demand misses.
    L2Misses,
    /// `LONGEST_LAT_CACHE.REFERENCE` — L3 references.
    L3References,
    /// `LONGEST_LAT_CACHE.MISS` — L3 misses.
    L3Misses,
    /// `BR_INST_RETIRED.ALL_BRANCHES` — retired branches.
    BranchesRetired,
    /// `BR_MISP_RETIRED.ALL_BRANCHES` — mispredicted branches.
    BranchesMispredicted,
    /// `ILD_STALL.IQ_FULL` class — instruction-fetch stall cycles.
    FetchStallCycles,
    /// `RAT_STALLS.ANY` — register-allocation-table stall cycles.
    RatStallCycles,
    /// `RESOURCE_STALLS.RS_FULL` — reservation-station-full stall cycles.
    RsFullStallCycles,
    /// `RESOURCE_STALLS.ROB_FULL` — re-order-buffer-full stall cycles.
    RobFullStallCycles,
    /// `RESOURCE_STALLS.LOAD` — load-buffer-full stall cycles.
    LoadBufferStallCycles,
    /// `RESOURCE_STALLS.STORE` — store-buffer-full stall cycles.
    StoreBufferStallCycles,
    /// `MEM_INST_RETIRED.LOADS` — retired loads.
    LoadsRetired,
    /// `MEM_INST_RETIRED.STORES` — retired stores.
    StoresRetired,
    /// Retired kernel-mode instructions (ring-0 filter on `INST_RETIRED`).
    KernelInstructions,
    /// Retired user-mode instructions (ring-3 filter on `INST_RETIRED`).
    UserInstructions,
}

impl PerfEvent {
    /// The Westmere event-select code (`IA32_PERFEVTSELx` bits 0-7).
    pub fn event_code(self) -> u8 {
        use PerfEvent::*;
        match self {
            InstructionsRetired | KernelInstructions | UserInstructions => 0xC0,
            UnhaltedCycles => 0x3C,
            L1iMisses | L1iReads => 0x80,
            ItlbMisses | ItlbWalksCompleted => 0x85,
            L1dMisses => 0x51,
            DtlbMisses | DtlbWalksCompleted => 0x49,
            L2References | L2Misses => 0x24,
            L3References | L3Misses => 0x2E,
            BranchesRetired => 0xC4,
            BranchesMispredicted => 0xC5,
            FetchStallCycles => 0x87,
            RatStallCycles => 0xD2,
            RsFullStallCycles
            | RobFullStallCycles
            | LoadBufferStallCycles
            | StoreBufferStallCycles => 0xA2,
            LoadsRetired | StoresRetired => 0x0B,
        }
    }

    /// The unit mask (`IA32_PERFEVTSELx` bits 8-15).
    pub fn umask(self) -> u8 {
        use PerfEvent::*;
        match self {
            InstructionsRetired => 0x01,
            KernelInstructions => 0x01, // + OS filter bit
            UserInstructions => 0x01,   // + USR filter bit
            UnhaltedCycles => 0x00,
            L1iMisses => 0x02,
            L1iReads => 0x01,
            ItlbMisses => 0x01,
            ItlbWalksCompleted => 0x02,
            L1dMisses => 0x01,
            DtlbMisses => 0x01,
            DtlbWalksCompleted => 0x02,
            L2References => 0xFF,
            L2Misses => 0xAA,
            L3References => 0x4F,
            L3Misses => 0x41,
            BranchesRetired => 0x00,
            BranchesMispredicted => 0x00,
            FetchStallCycles => 0x04,
            RatStallCycles => 0x0F,
            RsFullStallCycles => 0x04,
            RobFullStallCycles => 0x10,
            LoadBufferStallCycles => 0x02,
            StoreBufferStallCycles => 0x08,
            LoadsRetired => 0x01,
            StoresRetired => 0x02,
        }
    }

    /// Extract this event's value from a simulated counter block.
    pub fn extract(self, c: &PerfCounts) -> u64 {
        use PerfEvent::*;
        match self {
            InstructionsRetired => c.instructions,
            UnhaltedCycles => c.cycles,
            L1iMisses => c.l1i_misses,
            L1iReads => c.l1i_accesses,
            ItlbMisses => c.itlb_misses,
            ItlbWalksCompleted => c.itlb_walks,
            L1dMisses => c.l1d_misses,
            DtlbMisses => c.dtlb_misses,
            DtlbWalksCompleted => c.dtlb_walks,
            L2References => c.l2_accesses,
            L2Misses => c.l2_misses,
            L3References => c.l3_accesses,
            L3Misses => c.l3_misses,
            BranchesRetired => c.branches,
            BranchesMispredicted => c.branch_mispredicts,
            FetchStallCycles => c.fetch_stall_cycles,
            RatStallCycles => c.rat_stall_cycles,
            RsFullStallCycles => c.rs_full_stall_cycles,
            RobFullStallCycles => c.rob_full_stall_cycles,
            LoadBufferStallCycles => c.load_buf_stall_cycles,
            StoreBufferStallCycles => c.store_buf_stall_cycles,
            LoadsRetired => c.loads,
            StoresRetired => c.stores,
            KernelInstructions => c.kernel_instructions,
            UserInstructions => c.user_instructions,
        }
    }

    /// The full set of events the characterization methodology collects.
    pub fn all() -> &'static [PerfEvent] {
        use PerfEvent::*;
        &[
            InstructionsRetired,
            UnhaltedCycles,
            L1iMisses,
            L1iReads,
            ItlbMisses,
            ItlbWalksCompleted,
            L1dMisses,
            DtlbMisses,
            DtlbWalksCompleted,
            L2References,
            L2Misses,
            L3References,
            L3Misses,
            BranchesRetired,
            BranchesMispredicted,
            FetchStallCycles,
            RatStallCycles,
            RsFullStallCycles,
            RobFullStallCycles,
            LoadBufferStallCycles,
            StoreBufferStallCycles,
            LoadsRetired,
            StoresRetired,
            KernelInstructions,
            UserInstructions,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_about_twenty_events() {
        // The paper: "We collect about 20 events".
        assert!(PerfEvent::all().len() >= 20);
    }

    #[test]
    fn event_codes_are_stable() {
        assert_eq!(PerfEvent::InstructionsRetired.event_code(), 0xC0);
        assert_eq!(PerfEvent::UnhaltedCycles.event_code(), 0x3C);
        assert_eq!(PerfEvent::L2References.event_code(), 0x24);
        assert_eq!(PerfEvent::BranchesMispredicted.event_code(), 0xC5);
    }

    #[test]
    fn extract_pulls_matching_fields() {
        let c = PerfCounts {
            instructions: 7,
            cycles: 9,
            l2_misses: 3,
            dtlb_walks: 2,
            ..Default::default()
        };
        assert_eq!(PerfEvent::InstructionsRetired.extract(&c), 7);
        assert_eq!(PerfEvent::UnhaltedCycles.extract(&c), 9);
        assert_eq!(PerfEvent::L2Misses.extract(&c), 3);
        assert_eq!(PerfEvent::DtlbWalksCompleted.extract(&c), 2);
    }

    #[test]
    fn all_events_extract_without_panic() {
        let c = PerfCounts::default();
        for e in PerfEvent::all() {
            assert_eq!(e.extract(&c), 0);
            let _ = e.event_code();
            let _ = e.umask();
        }
    }
}
