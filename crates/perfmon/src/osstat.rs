//! `/proc`-style OS statistics.
//!
//! The paper supplements hardware counters with OS-level data "such as
//! the number of disk writes" read from the proc filesystem (Figure 5:
//! disk writes per second). In our reproduction the MapReduce engine and
//! cluster model account their I/O into an [`OsStats`] block, and
//! [`OsStats::render_proc_diskstats`] formats it the way
//! `/proc/diskstats` would, keeping the collection path shaped like the
//! paper's.

use std::fmt;

/// Accumulated OS-level I/O statistics for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OsStats {
    /// Completed disk write operations.
    pub disk_writes: u64,
    /// Bytes written to disk.
    pub disk_write_bytes: u64,
    /// Completed disk read operations.
    pub disk_reads: u64,
    /// Bytes read from disk.
    pub disk_read_bytes: u64,
    /// Bytes sent on the network.
    pub net_tx_bytes: u64,
    /// Bytes received from the network.
    pub net_rx_bytes: u64,
    /// Wall-clock seconds covered by this sample.
    pub elapsed_secs: f64,
}

impl OsStats {
    /// An empty sample.
    pub fn new() -> Self {
        OsStats::default()
    }

    /// Record a disk write of `bytes` (split into 512-byte sectors, the
    /// granularity `/proc/diskstats` counts).
    pub fn record_disk_write(&mut self, bytes: u64) {
        self.disk_writes += 1;
        self.disk_write_bytes += bytes;
    }

    /// Record a disk read of `bytes`.
    pub fn record_disk_read(&mut self, bytes: u64) {
        self.disk_reads += 1;
        self.disk_read_bytes += bytes;
    }

    /// Record a network transfer of `bytes` from this node.
    pub fn record_net_tx(&mut self, bytes: u64) {
        self.net_tx_bytes += bytes;
    }

    /// Record a network receive of `bytes` into this node.
    pub fn record_net_rx(&mut self, bytes: u64) {
        self.net_rx_bytes += bytes;
    }

    /// Disk write operations per second (Figure 5's metric).
    pub fn disk_writes_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.disk_writes as f64 / self.elapsed_secs
        }
    }

    /// Merge another node's sample into this one (cluster-wide totals;
    /// elapsed time takes the maximum, counts add).
    pub fn merge(&mut self, other: &OsStats) {
        self.disk_writes += other.disk_writes;
        self.disk_write_bytes += other.disk_write_bytes;
        self.disk_reads += other.disk_reads;
        self.disk_read_bytes += other.disk_read_bytes;
        self.net_tx_bytes += other.net_tx_bytes;
        self.net_rx_bytes += other.net_rx_bytes;
        self.elapsed_secs = self.elapsed_secs.max(other.elapsed_secs);
    }

    /// Render in `/proc/diskstats` field order (major minor name reads …
    /// writes sectors-written …) for one synthetic device.
    pub fn render_proc_diskstats(&self, device: &str) -> String {
        format!(
            "   8       0 {} {} 0 {} 0 {} 0 {} 0 0 0 0",
            device,
            self.disk_reads,
            self.disk_read_bytes / 512,
            self.disk_writes,
            self.disk_write_bytes / 512,
        )
    }
}

impl fmt::Display for OsStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "disk: {} writes ({} MiB), {} reads ({} MiB); net: {} MiB tx, {} MiB rx over {:.1}s",
            self.disk_writes,
            self.disk_write_bytes >> 20,
            self.disk_reads,
            self.disk_read_bytes >> 20,
            self.net_tx_bytes >> 20,
            self.net_rx_bytes >> 20,
            self.elapsed_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut s = OsStats::new();
        s.record_disk_write(4096);
        s.record_disk_write(8192);
        s.record_disk_read(512);
        s.record_net_tx(1000);
        s.record_net_rx(2000);
        assert_eq!(s.disk_writes, 2);
        assert_eq!(s.disk_write_bytes, 12_288);
        assert_eq!(s.disk_reads, 1);
        assert_eq!(s.net_tx_bytes, 1000);
        assert_eq!(s.net_rx_bytes, 2000);
    }

    #[test]
    fn writes_per_second() {
        let mut s = OsStats::new();
        for _ in 0..300 {
            s.record_disk_write(4096);
        }
        s.elapsed_secs = 2.0;
        assert!((s.disk_writes_per_sec() - 150.0).abs() < 1e-12);
        let empty = OsStats::new();
        assert_eq!(empty.disk_writes_per_sec(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_maxes_time() {
        let mut a = OsStats {
            disk_writes: 5,
            elapsed_secs: 3.0,
            ..Default::default()
        };
        let b = OsStats {
            disk_writes: 7,
            elapsed_secs: 2.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.disk_writes, 12);
        assert!((a.elapsed_secs - 3.0).abs() < 1e-12);
    }

    #[test]
    fn proc_render_has_sector_counts() {
        let mut s = OsStats::new();
        s.record_disk_write(1024);
        let line = s.render_proc_diskstats("sda");
        assert!(line.contains("sda"));
        assert!(line.contains(" 2 "), "1024 bytes = 2 sectors: {line}");
    }

    #[test]
    fn display_mentions_units() {
        let s = OsStats::new();
        let out = s.to_string();
        assert!(out.contains("disk"));
        assert!(out.contains("net"));
    }
}
