//! Derived per-workload metrics: one row of every figure in the paper.

use dc_cpu::PerfCounts;

/// The derived metrics the paper's figures report, computed from one
/// measured counter block, so experiment results can be
/// stored and compared across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Workload name (figure x-axis label).
    pub name: String,
    /// Instructions per cycle (Figure 3).
    pub ipc: f64,
    /// Kernel-mode instruction fraction (Figure 4).
    pub kernel_fraction: f64,
    /// Normalized stall breakdown `[fetch, rat, load, rs, store, rob]`
    /// (Figure 6).
    pub stall_breakdown: [f64; 6],
    /// L1-I misses per thousand instructions (Figure 7).
    pub l1i_mpki: f64,
    /// ITLB-miss page walks per thousand instructions (Figure 8).
    pub itlb_walk_pki: f64,
    /// L2 misses per thousand instructions (Figure 9).
    pub l2_mpki: f64,
    /// L3 misses per thousand instructions (Exhibit CO).
    pub l3_mpki: f64,
    /// Ratio of L2 misses satisfied by L3 (Figure 10).
    pub l3_hit_ratio: f64,
    /// DTLB-miss page walks per thousand instructions (Figure 11).
    pub dtlb_walk_pki: f64,
    /// Branch misprediction ratio (Figure 12).
    pub branch_misprediction: f64,
    /// Retired instructions in the measured window.
    pub instructions: u64,
}

impl Metrics {
    /// Derive the full metric row from a counter block.
    pub fn from_counts(name: impl Into<String>, c: &PerfCounts) -> Self {
        Metrics {
            name: name.into(),
            ipc: c.ipc(),
            kernel_fraction: c.kernel_fraction(),
            stall_breakdown: c.stall_breakdown(),
            l1i_mpki: c.l1i_mpki(),
            itlb_walk_pki: c.itlb_walk_pki(),
            l2_mpki: c.l2_mpki(),
            l3_mpki: c.l3_mpki(),
            l3_hit_ratio: c.l3_hit_ratio_of_l2_misses(),
            dtlb_walk_pki: c.dtlb_walk_pki(),
            branch_misprediction: c.branch_misprediction_ratio(),
            instructions: c.instructions,
        }
    }

    /// Share of stalls in the out-of-order part of the pipeline
    /// (load + RS + store + ROB) — the paper's data-analysis vs service
    /// contrast.
    pub fn ooo_stall_share(&self) -> f64 {
        let [_, _, load, rs, store, rob] = self.stall_breakdown;
        load + rs + store + rob
    }

    /// Share of stalls before the out-of-order part (fetch + RAT).
    pub fn in_order_stall_share(&self) -> f64 {
        let [fetch, rat, ..] = self.stall_breakdown;
        fetch + rat
    }
}

/// Mean of each metric across a set of workloads (the paper's `avg` bar).
pub fn average(name: impl Into<String>, rows: &[Metrics]) -> Metrics {
    let n = rows.len().max(1) as f64;
    let sum = |f: &dyn Fn(&Metrics) -> f64| rows.iter().map(f).sum::<f64>() / n;
    let mut stall = [0.0; 6];
    for r in rows {
        for (a, b) in stall.iter_mut().zip(r.stall_breakdown.iter()) {
            *a += b / n;
        }
    }
    Metrics {
        name: name.into(),
        ipc: sum(&|r| r.ipc),
        kernel_fraction: sum(&|r| r.kernel_fraction),
        stall_breakdown: stall,
        l1i_mpki: sum(&|r| r.l1i_mpki),
        itlb_walk_pki: sum(&|r| r.itlb_walk_pki),
        l2_mpki: sum(&|r| r.l2_mpki),
        l3_mpki: sum(&|r| r.l3_mpki),
        l3_hit_ratio: sum(&|r| r.l3_hit_ratio),
        dtlb_walk_pki: sum(&|r| r.dtlb_walk_pki),
        branch_misprediction: sum(&|r| r.branch_misprediction),
        instructions: (rows.iter().map(|r| r.instructions).sum::<u64>() as f64 / n) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> PerfCounts {
        PerfCounts {
            cycles: 2_000,
            instructions: 1_000,
            kernel_instructions: 40,
            user_instructions: 960,
            fetch_stall_cycles: 20,
            rat_stall_cycles: 10,
            rs_full_stall_cycles: 37,
            rob_full_stall_cycles: 20,
            load_buf_stall_cycles: 8,
            store_buf_stall_cycles: 5,
            l1i_misses: 23,
            itlb_walks: 1,
            l2_misses: 11,
            l3_misses: 2,
            dtlb_walks: 1,
            branches: 160,
            branch_mispredicts: 4,
            ..Default::default()
        }
    }

    #[test]
    fn from_counts_derives_figures() {
        let m = Metrics::from_counts("sort", &counts());
        assert_eq!(m.name, "sort");
        assert!((m.ipc - 0.5).abs() < 1e-12);
        assert!((m.l1i_mpki - 23.0).abs() < 1e-12);
        assert!((m.l2_mpki - 11.0).abs() < 1e-12);
        assert!((m.kernel_fraction - 0.04).abs() < 1e-12);
        let total: f64 = m.stall_breakdown.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stall_shares_partition() {
        let m = Metrics::from_counts("w", &counts());
        assert!((m.ooo_stall_share() + m.in_order_stall_share() - 1.0).abs() < 1e-12);
        assert!(m.ooo_stall_share() > 0.5, "this sample is OoO-stall heavy");
    }

    #[test]
    fn average_is_elementwise_mean() {
        let a = Metrics::from_counts("a", &counts());
        let mut big = counts();
        big.cycles = 1_000; // ipc 1.0
        let b = Metrics::from_counts("b", &big);
        let avg = average("avg", &[a, b]);
        assert!((avg.ipc - 0.75).abs() < 1e-12);
        assert_eq!(avg.name, "avg");
    }

    #[test]
    fn metrics_clone_eq() {
        let m = Metrics::from_counts("w", &counts());
        assert_eq!(m.clone(), m);
    }
}
