//! Model-specific-register model of the PMU.
//!
//! A Westmere core exposes four programmable counters. Software writes an
//! event select + umask into `IA32_PERFEVTSELx` and reads accumulated
//! counts from `IA32_PMCx`. [`Pmu`] mirrors that: [`Pmu::program`] writes
//! a select register, [`Pmu::observe`] accumulates a simulation's counter
//! block into every programmed PMC, and [`Pmu::read`] returns a PMC value
//! — the same program/collect/read flow the paper drives through `perf`.

use crate::events::PerfEvent;
use dc_cpu::PerfCounts;

/// Number of programmable counters per Westmere core.
pub const NUM_COUNTERS: usize = 4;

/// One `IA32_PERFEVTSELx` register's decoded contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSelect {
    /// Event-select code (bits 0-7).
    pub event_code: u8,
    /// Unit mask (bits 8-15).
    pub umask: u8,
    /// Counter enabled (bit 22).
    pub enabled: bool,
    /// The catalogue event this selection corresponds to.
    pub event: PerfEvent,
}

/// The per-core performance-monitoring unit.
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    selects: [Option<EventSelect>; NUM_COUNTERS],
    pmcs: [u64; NUM_COUNTERS],
}

impl Pmu {
    /// A PMU with all counters disabled.
    pub fn new() -> Self {
        Pmu::default()
    }

    /// Program counter `idx` to count `event`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_COUNTERS` (hardware has exactly four).
    pub fn program(&mut self, idx: usize, event: PerfEvent) {
        assert!(
            idx < NUM_COUNTERS,
            "Westmere exposes {NUM_COUNTERS} counters"
        );
        self.selects[idx] = Some(EventSelect {
            event_code: event.event_code(),
            umask: event.umask(),
            enabled: true,
            event,
        });
        self.pmcs[idx] = 0;
    }

    /// Disable counter `idx` (keeps its accumulated value readable).
    pub fn disable(&mut self, idx: usize) {
        if let Some(sel) = self.selects.get_mut(idx).and_then(|s| s.as_mut()) {
            sel.enabled = false;
        }
    }

    /// Accumulate a simulation interval's counts into every enabled PMC.
    pub fn observe(&mut self, counts: &PerfCounts) {
        for (sel, pmc) in self.selects.iter().zip(self.pmcs.iter_mut()) {
            if let Some(sel) = sel {
                if sel.enabled {
                    *pmc += sel.event.extract(counts);
                }
            }
        }
    }

    /// Read `IA32_PMCx`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_COUNTERS`.
    pub fn read(&self, idx: usize) -> u64 {
        assert!(idx < NUM_COUNTERS);
        self.pmcs[idx]
    }

    /// The currently programmed selection for counter `idx`, if any.
    pub fn selection(&self, idx: usize) -> Option<EventSelect> {
        self.selects.get(idx).copied().flatten()
    }

    /// Zero all PMCs (selections stay programmed).
    pub fn clear(&mut self) {
        self.pmcs = [0; NUM_COUNTERS];
    }
}

/// Per-core PMU spaces for a whole chip, with chip-level aggregation —
/// the software view `perf stat -a` presents: every core carries its
/// own four select/PMC register pairs, and a socket-wide read sums the
/// per-core PMCs.
///
/// Feed it one [`PerfCounts`] block per core (as returned by
/// [`dc_cpu::Chip::run`], indexed by core) via [`ChipPmu::observe`].
#[derive(Debug, Clone)]
pub struct ChipPmu {
    cores: Vec<Pmu>,
}

impl ChipPmu {
    /// A chip of `num_cores` PMUs, all counters disabled.
    ///
    /// # Panics
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "a chip needs at least one core");
        ChipPmu {
            cores: vec![Pmu::new(); num_cores],
        }
    }

    /// Number of per-core PMU spaces.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Program counter `idx` on **every** core to count `event`
    /// (`perf`'s per-CPU event groups program all CPUs identically).
    pub fn program_all(&mut self, idx: usize, event: PerfEvent) {
        for pmu in &mut self.cores {
            pmu.program(idx, event);
        }
    }

    /// Accumulate one core's simulation interval into that core's PMCs.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn observe(&mut self, core: usize, counts: &PerfCounts) {
        self.cores[core].observe(counts);
    }

    /// Read `IA32_PMCx` of one core.
    ///
    /// # Panics
    /// Panics if `core` is out of range or `idx >= NUM_COUNTERS`.
    pub fn read_core(&self, core: usize, idx: usize) -> u64 {
        self.cores[core].read(idx)
    }

    /// Chip-wide (socket-aggregated) value of counter `idx`: the sum of
    /// that PMC over every core.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_COUNTERS`.
    pub fn read_chip(&self, idx: usize) -> u64 {
        self.cores.iter().map(|p| p.read(idx)).sum()
    }

    /// Zero every core's PMCs (selections stay programmed).
    pub fn clear(&mut self) {
        for pmu in &mut self.cores {
            pmu.clear();
        }
    }
}

/// Collect every catalogue event from a counter block by multiplexing the
/// four hardware counters across groups, as `perf stat` does when more
/// events are requested than counters exist.
pub fn collect_all(counts: &PerfCounts) -> Vec<(PerfEvent, u64)> {
    let mut out = Vec::new();
    for group in PerfEvent::all().chunks(NUM_COUNTERS) {
        let mut pmu = Pmu::new();
        for (i, &e) in group.iter().enumerate() {
            pmu.program(i, e);
        }
        pmu.observe(counts);
        for (i, &e) in group.iter().enumerate() {
            out.push((e, pmu.read(i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> PerfCounts {
        PerfCounts {
            instructions: 1_000,
            cycles: 1_500,
            l2_misses: 12,
            branches: 160,
            branch_mispredicts: 4,
            ..Default::default()
        }
    }

    #[test]
    fn program_observe_read() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::InstructionsRetired);
        pmu.program(3, PerfEvent::L2Misses);
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 1_000);
        assert_eq!(pmu.read(3), 12);
        assert_eq!(pmu.read(1), 0, "unprogrammed counter stays zero");
    }

    #[test]
    fn observe_accumulates_across_intervals() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::UnhaltedCycles);
        pmu.observe(&sample_counts());
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 3_000);
    }

    #[test]
    fn disable_stops_counting() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::BranchesRetired);
        pmu.observe(&sample_counts());
        pmu.disable(0);
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 160);
    }

    #[test]
    #[should_panic]
    fn programming_fifth_counter_panics() {
        Pmu::new().program(4, PerfEvent::UnhaltedCycles);
    }

    #[test]
    fn clear_zeroes_pmcs_but_keeps_selection() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::InstructionsRetired);
        pmu.observe(&sample_counts());
        pmu.clear();
        assert_eq!(pmu.read(0), 0);
        assert!(pmu.selection(0).is_some());
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 1_000);
    }

    #[test]
    fn chip_pmu_aggregates_across_cores() {
        let mut chip = ChipPmu::new(3);
        chip.program_all(0, PerfEvent::InstructionsRetired);
        chip.program_all(1, PerfEvent::L2Misses);
        for core in 0..3 {
            chip.observe(core, &sample_counts());
        }
        // One extra interval lands on core 1 only.
        chip.observe(1, &sample_counts());
        assert_eq!(chip.read_core(0, 0), 1_000);
        assert_eq!(chip.read_core(1, 0), 2_000);
        assert_eq!(chip.read_chip(0), 4_000);
        assert_eq!(chip.read_chip(1), 4 * 12);
        chip.clear();
        assert_eq!(chip.read_chip(0), 0);
    }

    #[test]
    #[should_panic]
    fn zero_core_chip_pmu_panics() {
        ChipPmu::new(0);
    }

    #[test]
    fn collect_all_multiplexes_every_event() {
        let counts = sample_counts();
        let all = collect_all(&counts);
        assert_eq!(all.len(), PerfEvent::all().len());
        let get = |e: PerfEvent| all.iter().find(|(x, _)| *x == e).unwrap().1;
        assert_eq!(get(PerfEvent::InstructionsRetired), 1_000);
        assert_eq!(get(PerfEvent::BranchesMispredicted), 4);
    }
}
