//! Model-specific-register model of the PMU.
//!
//! A Westmere core exposes four programmable counters. Software writes an
//! event select + umask into `IA32_PERFEVTSELx` and reads accumulated
//! counts from `IA32_PMCx`. [`Pmu`] mirrors that: [`Pmu::program`] writes
//! a select register, [`Pmu::observe`] accumulates a simulation's counter
//! block into every programmed PMC, and [`Pmu::read`] returns a PMC value
//! — the same program/collect/read flow the paper drives through `perf`.

use crate::events::PerfEvent;
use dc_cpu::PerfCounts;

/// Number of programmable counters per Westmere core.
pub const NUM_COUNTERS: usize = 4;

/// One `IA32_PERFEVTSELx` register's decoded contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSelect {
    /// Event-select code (bits 0-7).
    pub event_code: u8,
    /// Unit mask (bits 8-15).
    pub umask: u8,
    /// Counter enabled (bit 22).
    pub enabled: bool,
    /// The catalogue event this selection corresponds to.
    pub event: PerfEvent,
}

/// The per-core performance-monitoring unit.
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    selects: [Option<EventSelect>; NUM_COUNTERS],
    pmcs: [u64; NUM_COUNTERS],
}

impl Pmu {
    /// A PMU with all counters disabled.
    pub fn new() -> Self {
        Pmu::default()
    }

    /// Program counter `idx` to count `event`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_COUNTERS` (hardware has exactly four).
    pub fn program(&mut self, idx: usize, event: PerfEvent) {
        assert!(
            idx < NUM_COUNTERS,
            "Westmere exposes {NUM_COUNTERS} counters"
        );
        self.selects[idx] = Some(EventSelect {
            event_code: event.event_code(),
            umask: event.umask(),
            enabled: true,
            event,
        });
        self.pmcs[idx] = 0;
    }

    /// Disable counter `idx` (keeps its accumulated value readable).
    pub fn disable(&mut self, idx: usize) {
        if let Some(sel) = self.selects.get_mut(idx).and_then(|s| s.as_mut()) {
            sel.enabled = false;
        }
    }

    /// Accumulate a simulation interval's counts into every enabled PMC.
    pub fn observe(&mut self, counts: &PerfCounts) {
        for (sel, pmc) in self.selects.iter().zip(self.pmcs.iter_mut()) {
            if let Some(sel) = sel {
                if sel.enabled {
                    *pmc += sel.event.extract(counts);
                }
            }
        }
    }

    /// Read `IA32_PMCx`.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_COUNTERS`.
    pub fn read(&self, idx: usize) -> u64 {
        assert!(idx < NUM_COUNTERS);
        self.pmcs[idx]
    }

    /// The currently programmed selection for counter `idx`, if any.
    pub fn selection(&self, idx: usize) -> Option<EventSelect> {
        self.selects.get(idx).copied().flatten()
    }

    /// Zero all PMCs (selections stay programmed).
    pub fn clear(&mut self) {
        self.pmcs = [0; NUM_COUNTERS];
    }
}

/// Collect every catalogue event from a counter block by multiplexing the
/// four hardware counters across groups, as `perf stat` does when more
/// events are requested than counters exist.
pub fn collect_all(counts: &PerfCounts) -> Vec<(PerfEvent, u64)> {
    let mut out = Vec::new();
    for group in PerfEvent::all().chunks(NUM_COUNTERS) {
        let mut pmu = Pmu::new();
        for (i, &e) in group.iter().enumerate() {
            pmu.program(i, e);
        }
        pmu.observe(counts);
        for (i, &e) in group.iter().enumerate() {
            out.push((e, pmu.read(i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> PerfCounts {
        PerfCounts {
            instructions: 1_000,
            cycles: 1_500,
            l2_misses: 12,
            branches: 160,
            branch_mispredicts: 4,
            ..Default::default()
        }
    }

    #[test]
    fn program_observe_read() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::InstructionsRetired);
        pmu.program(3, PerfEvent::L2Misses);
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 1_000);
        assert_eq!(pmu.read(3), 12);
        assert_eq!(pmu.read(1), 0, "unprogrammed counter stays zero");
    }

    #[test]
    fn observe_accumulates_across_intervals() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::UnhaltedCycles);
        pmu.observe(&sample_counts());
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 3_000);
    }

    #[test]
    fn disable_stops_counting() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::BranchesRetired);
        pmu.observe(&sample_counts());
        pmu.disable(0);
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 160);
    }

    #[test]
    #[should_panic]
    fn programming_fifth_counter_panics() {
        Pmu::new().program(4, PerfEvent::UnhaltedCycles);
    }

    #[test]
    fn clear_zeroes_pmcs_but_keeps_selection() {
        let mut pmu = Pmu::new();
        pmu.program(0, PerfEvent::InstructionsRetired);
        pmu.observe(&sample_counts());
        pmu.clear();
        assert_eq!(pmu.read(0), 0);
        assert!(pmu.selection(0).is_some());
        pmu.observe(&sample_counts());
        assert_eq!(pmu.read(0), 1_000);
    }

    #[test]
    fn collect_all_multiplexes_every_event() {
        let counts = sample_counts();
        let all = collect_all(&counts);
        assert_eq!(all.len(), PerfEvent::all().len());
        let get = |e: PerfEvent| all.iter().find(|(x, _)| *x == e).unwrap().1;
        assert_eq!(get(PerfEvent::InstructionsRetired), 1_000);
        assert_eq!(get(PerfEvent::BranchesMispredicted), 4);
    }
}
