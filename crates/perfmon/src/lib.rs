//! # dc-perfmon — the performance-monitoring layer
//!
//! The paper collects ~20 events by programming Westmere performance
//! event-select MSRs through Linux `perf`. This crate reproduces that
//! interface over the simulated machine in `dc-cpu`:
//!
//! * [`events::PerfEvent`] — the event catalogue with Westmere event-select
//!   codes and umasks (from the Intel SDM appendix the paper cites);
//! * [`msr`] — `IA32_PERFEVTSELx` / `IA32_PMCx` register pairs and a
//!   [`msr::Pmu`] that counts programmed events out of a
//!   [`dc_cpu::PerfCounts`] block, the way `perf stat` reads MSRs;
//! * [`metrics::Metrics`] — the derived per-workload metrics behind every
//!   figure of the paper (IPC, stall breakdown, MPKIs, walk rates,
//!   misprediction ratio);
//! * [`osstat`] — `/proc`-style OS-level statistics (disk writes,
//!   network traffic) used by Figure 5.
//!
//! ```
//! use dc_perfmon::events::PerfEvent;
//! use dc_perfmon::msr::Pmu;
//!
//! let mut pmu = Pmu::new();
//! pmu.program(0, PerfEvent::InstructionsRetired);
//! pmu.program(1, PerfEvent::UnhaltedCycles);
//! let counts = dc_cpu::PerfCounts { instructions: 1000, cycles: 2000, ..Default::default() };
//! pmu.observe(&counts);
//! assert_eq!(pmu.read(0), 1000);
//! assert_eq!(pmu.read(1), 2000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod msr;
pub mod osstat;
pub mod sampling;

pub use events::PerfEvent;
pub use metrics::Metrics;
pub use msr::{ChipPmu, Pmu};
pub use osstat::OsStats;
pub use sampling::{IntervalMetrics, SampledMetrics};
