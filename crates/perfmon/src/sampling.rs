//! The `perf stat -I`-shaped view: derived metrics per sampling
//! interval.
//!
//! `dc-cpu`'s [`SampledRun`] carries raw per-interval counter deltas;
//! this module derives the per-interval rates the phase exhibits plot —
//! IPC, L2/L3 MPKI, branch MPKI — exactly the way `perf stat -I <ms>`
//! prints rates per interval on real hardware. Ratios are computed
//! *within* each interval (from its deltas), so a phase shift shows up
//! undiluted instead of being averaged into the whole-window mean.

use dc_cpu::{IntervalSample, PerfCounts, SampledRun};

/// Derived rates for one sampling interval.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalMetrics {
    /// Position in the series (0-based).
    pub index: usize,
    /// Measured-window cycle at which the interval opened.
    pub start_cycle: u64,
    /// Measured-window cycle at which the interval closed.
    pub end_cycle: u64,
    /// Instructions retired within the interval.
    pub instructions: u64,
    /// Instructions per cycle within the interval.
    pub ipc: f64,
    /// L2 misses per thousand instructions within the interval.
    pub l2_mpki: f64,
    /// L3 misses per thousand instructions within the interval.
    pub l3_mpki: f64,
    /// Branch mispredictions per thousand instructions within the
    /// interval.
    pub branch_mpki: f64,
}

impl IntervalMetrics {
    /// Derive one interval's rates from its counter deltas.
    pub fn from_sample(s: &IntervalSample) -> Self {
        IntervalMetrics {
            index: s.index,
            start_cycle: s.start_cycle,
            end_cycle: s.end_cycle,
            instructions: s.counts.instructions,
            ipc: s.counts.ipc(),
            l2_mpki: s.counts.l2_mpki(),
            l3_mpki: s.counts.l3_mpki(),
            branch_mpki: s.counts.branch_mpki(),
        }
    }
}

/// A workload's sampled series plus its whole-window aggregate: the
/// data behind one Exhibit PH panel.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledMetrics {
    /// Workload name.
    pub name: String,
    /// Sampling period, in simulated cycles.
    pub every_cycles: u64,
    /// Aggregate counters for the whole measured window (bit-identical
    /// to the unsampled run).
    pub aggregate: PerfCounts,
    /// Per-interval derived rates, in time order.
    pub intervals: Vec<IntervalMetrics>,
}

impl SampledMetrics {
    /// Derive the interval series from a sampled run.
    pub fn from_run(name: impl Into<String>, run: &SampledRun) -> Self {
        SampledMetrics {
            name: name.into(),
            every_cycles: run.every_cycles,
            aggregate: run.aggregate,
            intervals: run
                .samples
                .iter()
                .map(IntervalMetrics::from_sample)
                .collect(),
        }
    }

    /// Peak-to-trough IPC spread across intervals — a scalar "how much
    /// phase behavior" signal (0 for a single-interval series).
    pub fn ipc_spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for iv in &self.intervals {
            lo = lo.min(iv.ipc);
            hi = hi.max(iv.ipc);
        }
        if self.intervals.is_empty() {
            0.0
        } else {
            hi - lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> SampledRun {
        let mk = |cycles, instructions, l2, l3, mis| PerfCounts {
            cycles,
            instructions,
            l2_misses: l2,
            l3_misses: l3,
            branch_mispredicts: mis,
            ..PerfCounts::default()
        };
        let a = mk(1_000, 2_000, 4, 1, 2);
        let b = mk(1_000, 500, 30, 20, 1);
        let mut aggregate = a;
        aggregate.accumulate(&b);
        SampledRun {
            every_cycles: 1_000,
            aggregate,
            samples: vec![
                IntervalSample {
                    index: 0,
                    start_cycle: 0,
                    end_cycle: 1_000,
                    counts: a,
                },
                IntervalSample {
                    index: 1,
                    start_cycle: 1_000,
                    end_cycle: 2_000,
                    counts: b,
                },
            ],
        }
    }

    #[test]
    fn per_interval_rates_come_from_the_interval_deltas() {
        let m = SampledMetrics::from_run("sort", &run());
        assert_eq!(m.name, "sort");
        assert_eq!(m.intervals.len(), 2);
        assert!((m.intervals[0].ipc - 2.0).abs() < 1e-12);
        assert!((m.intervals[1].ipc - 0.5).abs() < 1e-12);
        assert!((m.intervals[0].l2_mpki - 2.0).abs() < 1e-12);
        assert!((m.intervals[1].l2_mpki - 60.0).abs() < 1e-12);
        assert!((m.intervals[1].l3_mpki - 40.0).abs() < 1e-12);
        assert!((m.intervals[0].branch_mpki - 1.0).abs() < 1e-12);
        // The aggregate's IPC is the blended mean, not either phase's.
        assert!((m.aggregate.ipc() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn ipc_spread_measures_phase_contrast() {
        let m = SampledMetrics::from_run("sort", &run());
        assert!((m.ipc_spread() - 1.5).abs() < 1e-12);
        let flat = SampledMetrics {
            intervals: Vec::new(),
            ..m
        };
        assert_eq!(flat.ipc_spread(), 0.0);
    }
}
