//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships the small API subset `dc-benches` uses: a
//! [`Criterion`] handle with `bench_function`/`benchmark_group`, a
//! [`Bencher`] with `iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical
//! engine, each benchmark runs a fixed warm-up then `sample_size`
//! timed passes and prints min/mean per-iteration wall time — enough
//! for the repo's "print the reproduction, then time it" harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Times one benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Run `body` repeatedly and record per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up / calibration pass.
        let t0 = Instant::now();
        black_box(body());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~20ms per sample, capped to keep total runtime low.
        self.iters_per_sample =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(body());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Benchmark registry/configuration handle.
pub struct Criterion {
    sample_size: usize,
    group_prefix: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            group_prefix: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling here is iteration-count
    /// driven rather than time driven.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let name = name.as_ref();
        let full = match &self.group_prefix {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&full, &b);
        self
    }

    /// Open a named group; benchmarks in it are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.parent.group_prefix = Some(self.prefix.clone());
        self.parent.bench_function(name, f);
        self.parent.group_prefix = None;
        self
    }

    /// Accepted for API compatibility.
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher) {
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().min().expect("non-empty");
    let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<40} min {:>12?}  mean {:>12?}  ({} samples x {} iters)",
        min,
        mean,
        b.samples.len(),
        b.iters_per_sample
    );
}

/// Identity function that defeats trivial dead-code elimination by
/// moving the value through a volatile-ish observation point.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    criterion_group!(smoke, bench_addition);

    #[test]
    fn harness_runs_and_samples() {
        smoke();
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.bench_function("x", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
