//! One Criterion target per figure of the paper. Each target prints the
//! regenerated series once (the reproduction) and then times it.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_benches::bench_characterizer;
use dc_datagen::Scale;
use dcbench::report;
use std::sync::OnceLock;
use std::time::Duration;

fn printed(name: &str, render: impl FnOnce() -> String) {
    static SHOWN: OnceLock<std::sync::Mutex<Vec<String>>> = OnceLock::new();
    let shown = SHOWN.get_or_init(|| std::sync::Mutex::new(Vec::new()));
    let mut guard = shown.lock().expect("print registry");
    if !guard.iter().any(|n| n == name) {
        println!("\n{}", render());
        guard.push(name.to_string());
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(12))
        .warm_up_time(Duration::from_secs(2))
}

fn fig01_topsites(c: &mut Criterion) {
    printed("fig1", || report::figure1().render());
    c.bench_function("fig01_topsites", |b| b.iter(report::figure1));
}

fn fig02_speedup(c: &mut Criterion) {
    let scale = Scale::bytes(64 << 10);
    printed("fig2", || report::figure2(scale).render());
    c.bench_function("fig02_speedup", |b| b.iter(|| report::figure2(scale)));
}

fn fig05_diskwrites(c: &mut Criterion) {
    let scale = Scale::bytes(64 << 10);
    printed("fig5", || report::figure5(scale).render());
    c.bench_function("fig05_diskwrites", |b| b.iter(|| report::figure5(scale)));
}

macro_rules! metric_fig_bench {
    ($fn_name:ident, $report:ident, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let bench = bench_characterizer();
            printed($label, || report::$report(&bench).render());
            // Time one representative characterization rather than all 27
            // (the full sweep is the printed reproduction above).
            c.bench_function(concat!(stringify!($fn_name), "/sort_row"), |b| {
                b.iter(|| bench.run(dcbench::BenchmarkId::Sort))
            });
        }
    };
}

metric_fig_bench!(fig03_ipc, figure3, "fig3");
metric_fig_bench!(fig04_modes, figure4, "fig4");
metric_fig_bench!(fig06_stalls, figure6, "fig6");
metric_fig_bench!(fig07_l1i, figure7, "fig7");
metric_fig_bench!(fig08_itlb, figure8, "fig8");
metric_fig_bench!(fig09_l2, figure9, "fig9");
metric_fig_bench!(fig10_l3ratio, figure10, "fig10");
metric_fig_bench!(fig11_dtlb, figure11, "fig11");
metric_fig_bench!(fig12_branch, figure12, "fig12");

criterion_group! {
    name = figures;
    config = config();
    targets = fig01_topsites, fig02_speedup, fig03_ipc, fig04_modes,
        fig05_diskwrites, fig06_stalls, fig07_l1i, fig08_itlb, fig09_l2,
        fig10_l3ratio, fig11_dtlb, fig12_branch
}
criterion_main!(figures);
