//! Table I/II/III regeneration benches.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_analytics::Workload;
use dc_benches::bench_characterizer;
use dc_datagen::Scale;
use dc_mapreduce::engine::JobConfig;
use dcbench::report;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
}

fn table1_workloads(c: &mut Criterion) {
    println!("\n{}", report::table1().render());
    // Table I's substance is the workload inventory actually running:
    // time one real workload execution.
    c.bench_function("table1/wordcount_run", |b| {
        b.iter(|| Workload::WordCount.run(Scale::bytes(32 << 10), &JobConfig::default()))
    });
}

fn table2_scenarios(c: &mut Criterion) {
    println!("{}", report::table2());
    c.bench_function("table2/render", |b| b.iter(report::table2));
}

fn table3_hardware(c: &mut Criterion) {
    let bench = bench_characterizer();
    println!("{}", report::table3(&bench));
    c.bench_function("table3/render", |b| b.iter(|| report::table3(&bench)));
}

criterion_group! {
    name = tables;
    config = config();
    targets = table1_workloads, table2_scenarios, table3_hardware
}
criterion_main!(tables);
