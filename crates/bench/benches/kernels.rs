//! Micro-benchmarks of the real substrate kernels: the eleven analytics
//! algorithms on the MapReduce engine and the HPCC kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_analytics::Workload;
use dc_datagen::Scale;
use dc_mapreduce::engine::JobConfig;
use dc_suites::hpcc;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
}

fn analytics_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytics");
    let cfg = JobConfig::default();
    for &w in Workload::all() {
        group.bench_function(w.name().replace(' ', "_"), |b| {
            b.iter(|| w.run(Scale::bytes(24 << 10), &cfg))
        });
    }
    group.finish();
}

fn hpcc_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpcc");
    group.bench_function("hpl", |b| b.iter(|| hpcc::hpl(48, 1)));
    group.bench_function("dgemm", |b| b.iter(|| hpcc::dgemm(64, 16, 1)));
    group.bench_function("stream", |b| b.iter(|| hpcc::stream(1 << 14, 2)));
    group.bench_function("ptrans", |b| b.iter(|| hpcc::ptrans(64, 1)));
    group.bench_function("random_access", |b| {
        b.iter(|| hpcc::random_access(12, 1 << 12))
    });
    group.bench_function("fft", |b| b.iter(|| hpcc::fft(11, 1)));
    group.finish();
}

criterion_group! {
    name = kernels;
    config = config();
    targets = analytics_workloads, hpcc_kernels
}
criterion_main!(kernels);
