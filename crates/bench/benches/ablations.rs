//! Ablation studies for the paper's architectural recommendations:
//!
//! * LLC capacity ("optimizing the LLC capacity will improve the
//!   energy-efficiency of processor and save the die size")
//! * branch-predictor simplification ("a simpler branch predictor may be
//!   preferred")
//! * ROB/RS sizing (the out-of-order stall observation)
//! * prefetcher on/off (the streaming component of data analysis)

use criterion::{criterion_group, criterion_main, Criterion};
use dc_cpu::{core::SimOptions, CpuConfig};
use dcbench::{BenchmarkId, Characterizer};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(12))
}

fn quick_opts() -> SimOptions {
    SimOptions::exact(250_000, 400_000)
}

fn run_with(cfg: CpuConfig, id: BenchmarkId) -> dc_perfmon::Metrics {
    Characterizer::new(cfg, quick_opts(), 2013).run(id)
}

fn llc_capacity_sweep(c: &mut Criterion) {
    println!("\n== ablation: LLC capacity (PageRank) ==");
    for mb in [1u64, 3, 6, 12] {
        let m = run_with(
            CpuConfig::westmere_e5645().with_l3_bytes(mb << 20),
            BenchmarkId::PageRank,
        );
        println!(
            "    L3 {mb:>2} MB: IPC {:.3}, L3-hit-of-L2-miss {:.2}",
            m.ipc, m.l3_hit_ratio
        );
    }
    c.bench_function("ablation/llc_12mb", |b| {
        b.iter(|| run_with(CpuConfig::westmere_e5645(), BenchmarkId::PageRank))
    });
}

fn predictor_simplification(c: &mut Criterion) {
    println!("\n== ablation: branch predictor (WordCount vs SPECINT) ==");
    for bits in [0u32, 4, 8, 12] {
        let cfg = CpuConfig::westmere_e5645().with_predictor_bits(bits);
        let da = run_with(cfg.clone(), BenchmarkId::WordCount);
        let int = run_with(cfg, BenchmarkId::SpecInt);
        println!(
            "    history {bits:>2} bits: WordCount IPC {:.3} (misp {:.3}), SPECINT IPC {:.3} (misp {:.3})",
            da.ipc, da.branch_misprediction, int.ipc, int.branch_misprediction
        );
    }
    c.bench_function("ablation/predictor_4bit", |b| {
        b.iter(|| {
            run_with(
                CpuConfig::westmere_e5645().with_predictor_bits(4),
                BenchmarkId::WordCount,
            )
        })
    });
}

fn window_sizing(c: &mut Criterion) {
    println!("\n== ablation: OoO window (K-means) ==");
    for (rob, rs) in [(32, 12), (64, 24), (128, 36), (256, 72)] {
        let m = run_with(
            CpuConfig::westmere_e5645()
                .with_rob_entries(rob)
                .with_rs_entries(rs),
            BenchmarkId::KMeans,
        );
        let b = m.stall_breakdown;
        println!(
            "    ROB {rob:>3} / RS {rs:>2}: IPC {:.3}, rs-stall {:.2}, rob-stall {:.2}",
            m.ipc, b[3], b[5]
        );
    }
    c.bench_function("ablation/rob_128", |b| {
        b.iter(|| run_with(CpuConfig::westmere_e5645(), BenchmarkId::KMeans))
    });
}

fn prefetcher_value(c: &mut Criterion) {
    println!("\n== ablation: L2 streamer (Sort) ==");
    for on in [true, false] {
        let m = run_with(
            CpuConfig::westmere_e5645().with_prefetch(on),
            BenchmarkId::Sort,
        );
        println!(
            "    prefetch {:>3}: IPC {:.3}, L2 MPKI {:.1}",
            if on { "on" } else { "off" },
            m.ipc,
            m.l2_mpki
        );
    }
    c.bench_function("ablation/prefetch_on", |b| {
        b.iter(|| run_with(CpuConfig::westmere_e5645(), BenchmarkId::Sort))
    });
}

criterion_group! {
    name = ablations;
    config = config();
    targets = llc_capacity_sweep, predictor_simplification, window_sizing,
        prefetcher_value
}
criterion_main!(ablations);
