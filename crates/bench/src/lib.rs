//! # dc-benches — the benchmark harness
//!
//! Criterion targets that regenerate every exhibit of the paper
//! (`benches/figures.rs`, `benches/tables.rs`), ablation studies for the
//! paper's architectural recommendations (`benches/ablations.rs`), and
//! micro-benchmarks of the real workload kernels (`benches/kernels.rs`).
//!
//! Each figure bench *prints the regenerated rows once* and then times
//! the regeneration, so `cargo bench` doubles as the reproduction run;
//! EXPERIMENTS.md records the printed series against the paper's.

pub mod metrics_text;
pub mod schema;

/// Shared quick-characterizer constructor so every bench measures the
/// same configuration.
pub fn bench_characterizer() -> dcbench::Characterizer {
    dcbench::Characterizer::quick()
}
