//! The documented `dc-obs` JSONL event schema, and a validator for it.
//!
//! Every JSONL artifact the stack emits — the phase exhibit from
//! `examples/phases.rs`, engine job timelines, cluster replays, and
//! `dc-bench`'s own run metadata — is a stream of lines shaped
//! `{"seq":N,"ts":N,"kind":"…","fields":{…}}`. This module pins that
//! contract: [`validate_line`] checks one line's envelope and the
//! per-kind required fields below, and [`validate_stream`] additionally
//! checks that `seq` is gapless from zero (one recorder per artifact).
//!
//! The table is deliberately a compile-time list: adding an event kind
//! anywhere in the stack without documenting it here makes the
//! schema-check CI job fail on the first artifact that contains it.
//!
//! The validator carries its own ~150-line JSON reader rather than a
//! dependency: the workspace is offline-vendored, and the subset of
//! JSON the serializer in `dc-obs` emits is small and stable.

/// Required fields per event kind. Extra fields are allowed (the
/// producer may enrich events); missing ones fail validation, as does
/// any kind not listed here.
pub const EVENT_SCHEMA: &[(&str, &[&str])] = &[
    // Characterizer cache telemetry (ts: logical, always 0).
    ("cache_hit", &["entry", "corun"]),
    ("cache_miss", &["entry", "corun"]),
    ("sim_uncached", &["entry", "corun"]),
    // Interval PMU sampling (ts: simulated cycles).
    (
        "interval_sample",
        &[
            "workload",
            "interval",
            "start_cycle",
            "end_cycle",
            "instructions",
            "ipc",
            "l2_mpki",
            "l3_mpki",
            "branch_mpki",
        ],
    ),
    (
        "workload_sampled",
        &[
            "workload",
            "intervals",
            "every_cycles",
            "instructions",
            "ipc",
            "ipc_spread",
        ],
    ),
    // Sensitivity sweeps (ts: logical, always 0; order comes from seq).
    (
        "sweep_point",
        &[
            "axis",
            "point",
            "value",
            "workload",
            "ipc",
            "l2_mpki",
            "l3_mpki",
            "l3_misses",
            "misp_ratio",
            "instructions",
        ],
    ),
    ("sweep_axis", &["axis", "points", "workloads"]),
    // Engine job timelines (ts: job-relative wall-clock ms).
    (
        "job_start",
        &["map_tasks", "reduce_tasks", "input_bytes", "speculative"],
    ),
    (
        "job_summary",
        &[
            "map_input_records",
            "map_output_records",
            "shuffle_bytes",
            "reduce_input_records",
            "reduce_input_bytes",
            "reduce_output_records",
            "failed_attempts",
            "speculative_attempts",
            "killed_attempts",
            "reexecuted_bytes",
            "map_ms",
            "reduce_ms",
        ],
    ),
    ("job_failed", &["error"]),
    ("attempt_start", &["phase", "task", "attempt"]),
    ("attempt_end", &["phase", "task", "attempt", "outcome"]),
    ("attempt_retry", &["phase", "task", "attempt", "backoff_ms"]),
    ("speculative_launch", &["phase", "task", "attempt"]),
    // Cluster replay (ts: simulated ms).
    ("phase_start", &["phase", "iteration"]),
    ("phase_end", &["phase", "iteration", "secs"]),
    (
        "node_loss",
        &[
            "lost",
            "alive",
            "requeued_map_secs",
            "rereplicated_mb",
            "rereplication_stall_secs",
        ],
    ),
    ("node_recover", &["recovered", "alive"]),
    // dc-bench run metadata (ts: entry index).
    ("bench_run_start", &["label", "window", "jobs"]),
    ("bench_entry", &["name", "wall_ms", "threads"]),
    ("bench_run_end", &["entries"]),
];

/// A parsed JSON value (the subset `dc-obs` emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (a non-finite f64 serializes as this).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Maximum container nesting [`parse_json`] accepts. The recursive
/// descent would otherwise turn attacker-depth input (`[[[[…`) into a
/// stack overflow — an abort, not an `Err`. Real event lines nest
/// three levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key \"{key}\" at byte {}", self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| format!("invalid \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Parse one JSON document. Trailing non-whitespace, duplicate object
/// keys, and nesting beyond [`MAX_DEPTH`] levels are errors — the
/// parser reads artifacts that may be truncated or corrupt, so every
/// malformation must surface as `Err`, never a panic.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

/// The validated envelope of one event line.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLine {
    /// Recorder-assigned sequence number.
    pub seq: u64,
    /// Producer timestamp (domain documented per kind).
    pub ts: u64,
    /// Event kind.
    pub kind: String,
}

fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Validate one JSONL line: envelope shape, known kind, required
/// fields. Returns the envelope on success.
pub fn validate_line(line: &str) -> Result<EventLine, String> {
    let doc = parse_json(line)?;
    let seq = doc
        .get("seq")
        .and_then(as_u64)
        .ok_or("missing or non-integer \"seq\"")?;
    let ts = doc
        .get("ts")
        .and_then(as_u64)
        .ok_or("missing or non-integer \"ts\"")?;
    let kind = match doc.get("kind") {
        Some(Json::Str(k)) => k.clone(),
        _ => return Err("missing or non-string \"kind\"".into()),
    };
    let fields = doc.get("fields").ok_or("missing \"fields\"")?;
    if !matches!(fields, Json::Obj(_)) {
        return Err("\"fields\" is not an object".into());
    }
    let Some((_, required)) = EVENT_SCHEMA.iter().find(|(k, _)| *k == kind) else {
        return Err(format!("undocumented event kind \"{kind}\""));
    };
    for field in *required {
        if fields.get(field).is_none() {
            return Err(format!("kind \"{kind}\" is missing field \"{field}\""));
        }
    }
    Ok(EventLine { seq, ts, kind })
}

/// Validate a whole single-recorder artifact: every line individually,
/// plus `seq` gapless from zero. Returns the number of events.
pub fn validate_stream(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let ev = validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if ev.seq != i as u64 {
            return Err(format!(
                "line {}: seq {} breaks the gapless order (expected {})",
                i + 1,
                ev.seq,
                i
            ));
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_obs::{Recorder, SharedBuf, Value};

    #[test]
    fn accepts_every_documented_kind_from_the_real_serializer() {
        let buf = SharedBuf::default();
        let rec = Recorder::jsonl(buf.clone());
        rec.emit(
            0,
            "cache_miss",
            vec![("entry", Value::str("sort")), ("corun", Value::U64(1))],
        );
        rec.emit(
            7,
            "interval_sample",
            vec![
                ("workload", Value::str("sort")),
                ("interval", Value::U64(0)),
                ("start_cycle", Value::U64(0)),
                ("end_cycle", Value::U64(7)),
                ("instructions", Value::U64(5)),
                ("ipc", Value::F64(0.71)),
                ("l2_mpki", Value::F64(1.0)),
                ("l3_mpki", Value::F64(f64::NAN)), // serializes as null
                ("branch_mpki", Value::F64(0.0)),
            ],
        );
        rec.emit(
            9,
            "attempt_end",
            vec![
                ("phase", Value::str("map")),
                ("task", Value::U64(1)),
                ("attempt", Value::U64(0)),
                ("outcome", Value::str("failed")),
            ],
        );
        rec.flush();
        let text = buf.to_string_lossy();
        assert_eq!(validate_stream(&text), Ok(3));
    }

    #[test]
    fn rejects_undocumented_kinds_and_missing_fields() {
        let undocumented = r#"{"seq":0,"ts":0,"kind":"mystery","fields":{}}"#;
        assert!(validate_line(undocumented)
            .unwrap_err()
            .contains("undocumented"));
        let missing = r#"{"seq":0,"ts":0,"kind":"attempt_end","fields":{"phase":"map","task":1,"attempt":0}}"#;
        assert!(validate_line(missing).unwrap_err().contains("outcome"));
        let no_envelope = r#"{"ts":0,"kind":"job_failed","fields":{"error":"x"}}"#;
        assert!(validate_line(no_envelope).unwrap_err().contains("seq"));
    }

    #[test]
    fn stream_validation_requires_gapless_seq() {
        let good = concat!(
            r#"{"seq":0,"ts":0,"kind":"job_failed","fields":{"error":"a"}}"#,
            "\n",
            r#"{"seq":1,"ts":1,"kind":"job_failed","fields":{"error":"b"}}"#,
            "\n"
        );
        assert_eq!(validate_stream(good), Ok(2));
        let gapped = concat!(
            r#"{"seq":0,"ts":0,"kind":"job_failed","fields":{"error":"a"}}"#,
            "\n",
            r#"{"seq":2,"ts":1,"kind":"job_failed","fields":{"error":"b"}}"#,
            "\n"
        );
        assert!(validate_stream(gapped).unwrap_err().contains("gapless"));
    }

    #[test]
    fn parser_handles_escapes_nulls_and_nesting() {
        let doc =
            parse_json(r#"{"a":"x\n\"y\"A","b":[1,-2.5e3,null,true],"c":{}}"#).expect("valid json");
        assert_eq!(doc.get("a"), Some(&Json::Str("x\n\"y\"A".to_string())));
        match doc.get("b") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1], Json::Num(-2500.0));
                assert_eq!(items[2], Json::Null);
                assert_eq!(items[3], Json::Bool(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json(r#"{"a":1} trailing"#).is_err());
        assert!(parse_json("").is_err());
    }
}
