//! The documented `dc-obs` JSONL event schema, and a validator for it.
//!
//! Every JSONL artifact the stack emits — the phase exhibit from
//! `examples/phases.rs`, engine job timelines, cluster replays, and
//! `dc-bench`'s own run metadata — is a stream of lines shaped
//! `{"seq":N,"ts":N,"kind":"…","fields":{…}}`. This module pins that
//! contract: [`validate_line`] checks one line's envelope and the
//! per-kind required fields below, and [`validate_stream`] additionally
//! checks that `seq` is gapless from zero (one recorder per artifact).
//!
//! The table is deliberately a compile-time list: adding an event kind
//! anywhere in the stack without documenting it here makes the
//! schema-check CI job fail on the first artifact that contains it.
//!
//! The hardened JSON reader this validator uses lives in
//! [`dc_store::json`] (re-exported here, its original home) so the
//! event validator and the persistent store's recovery path share one
//! parser — and one adversarial-input contract.

/// Required fields per event kind. Extra fields are allowed (the
/// producer may enrich events); missing ones fail validation, as does
/// any kind not listed here.
pub const EVENT_SCHEMA: &[(&str, &[&str])] = &[
    // Characterizer cache telemetry (ts: logical, always 0).
    ("cache_hit", &["entry", "corun"]),
    ("cache_miss", &["entry", "corun"]),
    ("sim_uncached", &["entry", "corun"]),
    // Interval PMU sampling (ts: simulated cycles).
    (
        "interval_sample",
        &[
            "workload",
            "interval",
            "start_cycle",
            "end_cycle",
            "instructions",
            "ipc",
            "l2_mpki",
            "l3_mpki",
            "branch_mpki",
        ],
    ),
    (
        "workload_sampled",
        &[
            "workload",
            "intervals",
            "every_cycles",
            "instructions",
            "ipc",
            "ipc_spread",
        ],
    ),
    // Sensitivity sweeps (ts: logical, always 0; order comes from seq).
    (
        "sweep_point",
        &[
            "axis",
            "point",
            "value",
            "workload",
            "ipc",
            "l2_mpki",
            "l3_mpki",
            "l3_misses",
            "misp_ratio",
            "instructions",
        ],
    ),
    ("sweep_axis", &["axis", "points", "workloads"]),
    // Engine job timelines (ts: job-relative wall-clock ms).
    (
        "job_start",
        &["map_tasks", "reduce_tasks", "input_bytes", "speculative"],
    ),
    (
        "job_summary",
        &[
            "map_input_records",
            "map_output_records",
            "shuffle_bytes",
            "reduce_input_records",
            "reduce_input_bytes",
            "reduce_output_records",
            "failed_attempts",
            "speculative_attempts",
            "killed_attempts",
            "reexecuted_bytes",
            "map_ms",
            "reduce_ms",
        ],
    ),
    ("job_failed", &["error"]),
    ("attempt_start", &["phase", "task", "attempt"]),
    ("attempt_end", &["phase", "task", "attempt", "outcome"]),
    ("attempt_retry", &["phase", "task", "attempt", "backoff_ms"]),
    ("speculative_launch", &["phase", "task", "attempt"]),
    // Cluster replay (ts: simulated ms).
    ("phase_start", &["phase", "iteration"]),
    ("phase_end", &["phase", "iteration", "secs"]),
    (
        "node_loss",
        &[
            "lost",
            "alive",
            "requeued_map_secs",
            "rereplicated_mb",
            "rereplication_stall_secs",
        ],
    ),
    ("node_recover", &["recovered", "alive"]),
    // dc-bench run metadata (ts: entry index).
    ("bench_run_start", &["label", "window", "jobs"]),
    ("bench_entry", &["name", "wall_ms", "threads"]),
    ("bench_run_end", &["entries"]),
    // Persistent result store (ts: logical, always 0).
    ("store_hit", &["entry", "corun"]),
    ("store_miss", &["entry", "corun"]),
    ("store_corrupt_skipped", &["records", "stale"]),
    ("store_truncated", &["bytes"]),
    ("store_compacted", &["live", "dropped"]),
    // dc-server daemon lifecycle (ts: logical, always 0). The first
    // two come from the server-wide recorder only; `job_queued` and
    // `job_done` bracket every job's own event stream as well.
    ("request_accepted", &["verb"]),
    ("request_rejected", &["code"]),
    (
        "job_queued",
        &["job", "kind", "entries", "window", "seed", "corun"],
    ),
    ("job_done", &["job", "state", "simulations"]),
];

pub use dc_store::json::{parse_json, Json, MAX_DEPTH};

/// The validated envelope of one event line.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLine {
    /// Recorder-assigned sequence number.
    pub seq: u64,
    /// Producer timestamp (domain documented per kind).
    pub ts: u64,
    /// Event kind.
    pub kind: String,
}

fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Validate one JSONL line: envelope shape, known kind, required
/// fields. Returns the envelope on success.
pub fn validate_line(line: &str) -> Result<EventLine, String> {
    let doc = parse_json(line)?;
    let seq = doc
        .get("seq")
        .and_then(as_u64)
        .ok_or("missing or non-integer \"seq\"")?;
    let ts = doc
        .get("ts")
        .and_then(as_u64)
        .ok_or("missing or non-integer \"ts\"")?;
    let kind = match doc.get("kind") {
        Some(Json::Str(k)) => k.clone(),
        _ => return Err("missing or non-string \"kind\"".into()),
    };
    let fields = doc.get("fields").ok_or("missing \"fields\"")?;
    if !matches!(fields, Json::Obj(_)) {
        return Err("\"fields\" is not an object".into());
    }
    let Some((_, required)) = EVENT_SCHEMA.iter().find(|(k, _)| *k == kind) else {
        return Err(format!("undocumented event kind \"{kind}\""));
    };
    for field in *required {
        if fields.get(field).is_none() {
            return Err(format!("kind \"{kind}\" is missing field \"{field}\""));
        }
    }
    Ok(EventLine { seq, ts, kind })
}

/// Validate a whole single-recorder artifact: every line individually,
/// plus `seq` gapless from zero. Returns the number of events.
pub fn validate_stream(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let ev = validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if ev.seq != i as u64 {
            return Err(format!(
                "line {}: seq {} breaks the gapless order (expected {})",
                i + 1,
                ev.seq,
                i
            ));
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_obs::{Recorder, SharedBuf, Value};

    #[test]
    fn accepts_every_documented_kind_from_the_real_serializer() {
        let buf = SharedBuf::default();
        let rec = Recorder::jsonl(buf.clone());
        rec.emit(
            0,
            "cache_miss",
            vec![("entry", Value::str("sort")), ("corun", Value::U64(1))],
        );
        rec.emit(
            7,
            "interval_sample",
            vec![
                ("workload", Value::str("sort")),
                ("interval", Value::U64(0)),
                ("start_cycle", Value::U64(0)),
                ("end_cycle", Value::U64(7)),
                ("instructions", Value::U64(5)),
                ("ipc", Value::F64(0.71)),
                ("l2_mpki", Value::F64(1.0)),
                ("l3_mpki", Value::F64(f64::NAN)), // serializes as null
                ("branch_mpki", Value::F64(0.0)),
            ],
        );
        rec.emit(
            9,
            "attempt_end",
            vec![
                ("phase", Value::str("map")),
                ("task", Value::U64(1)),
                ("attempt", Value::U64(0)),
                ("outcome", Value::str("failed")),
            ],
        );
        rec.flush();
        let text = buf.to_string_lossy();
        assert_eq!(validate_stream(&text), Ok(3));
    }

    #[test]
    fn rejects_undocumented_kinds_and_missing_fields() {
        let undocumented = r#"{"seq":0,"ts":0,"kind":"mystery","fields":{}}"#;
        assert!(validate_line(undocumented)
            .unwrap_err()
            .contains("undocumented"));
        let missing = r#"{"seq":0,"ts":0,"kind":"attempt_end","fields":{"phase":"map","task":1,"attempt":0}}"#;
        assert!(validate_line(missing).unwrap_err().contains("outcome"));
        let no_envelope = r#"{"ts":0,"kind":"job_failed","fields":{"error":"x"}}"#;
        assert!(validate_line(no_envelope).unwrap_err().contains("seq"));
    }

    #[test]
    fn stream_validation_requires_gapless_seq() {
        let good = concat!(
            r#"{"seq":0,"ts":0,"kind":"job_failed","fields":{"error":"a"}}"#,
            "\n",
            r#"{"seq":1,"ts":1,"kind":"job_failed","fields":{"error":"b"}}"#,
            "\n"
        );
        assert_eq!(validate_stream(good), Ok(2));
        let gapped = concat!(
            r#"{"seq":0,"ts":0,"kind":"job_failed","fields":{"error":"a"}}"#,
            "\n",
            r#"{"seq":2,"ts":1,"kind":"job_failed","fields":{"error":"b"}}"#,
            "\n"
        );
        assert!(validate_stream(gapped).unwrap_err().contains("gapless"));
    }

    #[test]
    fn parser_handles_escapes_nulls_and_nesting() {
        let doc =
            parse_json(r#"{"a":"x\n\"y\"A","b":[1,-2.5e3,null,true],"c":{}}"#).expect("valid json");
        assert_eq!(doc.get("a"), Some(&Json::Str("x\n\"y\"A".to_string())));
        match doc.get("b") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1], Json::Num(-2500.0));
                assert_eq!(items[2], Json::Null);
                assert_eq!(items[3], Json::Bool(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json(r#"{"a":1} trailing"#).is_err());
        assert!(parse_json("").is_err());
    }
}
