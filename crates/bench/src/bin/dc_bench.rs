//! `dc-bench` — the perf-trajectory harness.
//!
//! Times the repo's hot paths — the full characterization matrix
//! sequentially, in parallel, and from a warm result cache, plus the
//! MapReduce engine and cluster-model paths behind Figures 2/5 — and
//! writes a machine-readable `BENCH_<label>.json` so CI can track the
//! trajectory and gate on regressions:
//!
//! ```text
//! cargo run --release -p dc-benches --bin dc-bench -- --label ci --quick \
//!     --baseline BENCH_baseline.json --tolerance 0.25
//! ```
//!
//! With `--baseline`, every `full_matrix_*`, `chip_*`, `sweep_*`,
//! `subset_*`, `server_*`, `obs_disabled*`, and `metrics_disabled*` entry is
//! compared against the same-named entry in the baseline file; any
//! wall-clock more than `tolerance` above baseline fails the run
//! (exit 1). `DCBENCH_JOBS` caps the parallel
//! phase's worker count, as everywhere else.
//!
//! Besides `BENCH_<label>.json`, the run writes
//! `BENCH_<label>.events.jsonl` — its own metadata as `dc-obs` events
//! (`bench_run_start` / one `bench_entry` per timing / `bench_run_end`),
//! validated in CI by `obs-schema-check`.

use dc_datagen::Scale;
use dc_mapreduce::engine::JobConfig;
use dc_obs::{Recorder, Value};
use dcbench::{cache, cluster_experiments, pool, sweep, Characterizer};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One timed entry of the emitted report.
struct BenchEntry {
    name: &'static str,
    wall_ms: f64,
    uops_per_s: f64,
    threads: usize,
}

struct Options {
    label: String,
    quick: bool,
    baseline: Option<String>,
    tolerance: f64,
    out_dir: String,
    /// Only time entries whose name starts with this prefix. Entries
    /// that depend on state a skipped entry would have left behind
    /// (warm memo cache, populated store) set it up untimed.
    only: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dc-bench [--label <name>] [--quick|--full] \
         [--baseline <BENCH_x.json>] [--tolerance <frac>] [--out <dir>] \
         [--only <name-prefix>]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        label: "local".to_string(),
        quick: true,
        baseline: None,
        tolerance: 0.25,
        out_dir: ".".to_string(),
        only: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => opts.label = args.next().unwrap_or_else(|| usage()),
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            "--baseline" => opts.baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| usage());
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => opts.tolerance = t,
                    _ => usage(),
                }
            }
            "--out" => opts.out_dir = args.next().unwrap_or_else(|| usage()),
            "--only" => opts.only = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    opts
}

/// Whether entry `name` is selected under an optional `--only` prefix.
fn selected(name: &str, only: Option<&str>) -> bool {
    only.is_none_or(|prefix| name.starts_with(prefix))
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// µops actually simulated per full-matrix pass (warm-up retires
/// through the pipeline too, so it is honest work).
fn matrix_uops(bench: &Characterizer) -> f64 {
    let per_entry = bench.options().warmup_ops + bench.options().max_ops;
    (dcbench::BenchmarkId::all().len() as u64 * per_entry) as f64
}

fn run_entries(quick: bool, only: Option<&str>) -> Vec<BenchEntry> {
    let bench = if quick {
        Characterizer::quick()
    } else {
        Characterizer::full()
    };
    let uops = matrix_uops(&bench);
    let jobs = pool::jobs();
    let want = |name: &str| selected(name, only);
    let mut entries = Vec::new();
    let mut push = |name, wall_ms: f64, work: f64, threads| {
        let rate = if wall_ms > 0.0 {
            work / (wall_ms / 1e3)
        } else {
            0.0
        };
        eprintln!("  {name:28} {wall_ms:10.1} ms  ({threads} thread(s))");
        entries.push(BenchEntry {
            name,
            wall_ms,
            uops_per_s: rate,
            threads,
        });
    };

    if want("full_matrix_sequential") || want("full_matrix_parallel") || want("full_matrix_cached")
    {
        eprintln!(
            "dc-bench: full characterization matrix ({} entries)",
            dcbench::BenchmarkId::all().len()
        );
    }
    if want("full_matrix_sequential") {
        cache::clear();
        let seq = time_ms(|| {
            bench.run_all_sequential();
        });
        push("full_matrix_sequential", seq, uops, 1);
    }

    let mut matrix_warm = false;
    if want("full_matrix_parallel") {
        cache::clear();
        let par = time_ms(|| {
            bench.run_all();
        });
        push("full_matrix_parallel", par, uops, jobs);
        matrix_warm = true;
    }

    // Cache stays warm from the parallel pass: this measures pure
    // lookup + metric derivation, the figN-regeneration steady state.
    // Under `--only`, warm the cache untimed when the parallel pass
    // was filtered out.
    if want("full_matrix_cached") {
        if !matrix_warm {
            cache::clear();
            bench.run_all();
        }
        let cached = time_ms(|| {
            bench.run_all();
        });
        push("full_matrix_cached", cached, uops, jobs);
    }

    // The matrix entries the SoA/SMARTS work added. `full_matrix_soa`
    // re-times the exact sequential pass under its post-refactor name:
    // `full_matrix_sequential`'s baseline preserves the pre-SoA
    // trajectory point, while this entry's baseline pins the
    // flat-array engine's level so future regressions gate against the
    // tighter number. `full_matrix_sampled` runs the same matrix under
    // the default SMARTS plan — the fast path for window-hungry
    // consumers (sweeps, co-run grids).
    if want("full_matrix_soa") {
        cache::clear();
        let soa = time_ms(|| {
            bench.run_all_sequential();
        });
        push("full_matrix_soa", soa, uops, 1);
    }
    if want("full_matrix_sampled") {
        let plan = dc_cpu::SamplePlan::DEFAULT;
        let sampled_bench = bench.clone().with_sampling(plan.detail_ops, plan.ffwd_ops);
        cache::clear();
        let sam = time_ms(|| {
            sampled_bench.run_all_sequential();
        });
        push("full_matrix_sampled", sam, uops, 1);
    }

    if want("engine_wordcount_256k") || want("cluster_model_figure2") {
        eprintln!("dc-bench: engine + cluster hot paths");
    }
    if want("engine_wordcount_256k") {
        let docs = dc_datagen::text::documents(2013, Scale::bytes(256 << 10), 24);
        let doc_bytes: usize = docs.iter().map(String::len).sum();
        let engine = time_ms(|| {
            dc_analytics::wordcount::run(docs, &JobConfig::default())
                .expect("fault-free wordcount");
        });
        push(
            "engine_wordcount_256k",
            engine,
            doc_bytes as f64,
            JobConfig::default().map_slots,
        );
    }

    if want("cluster_model_figure2") {
        let cluster = time_ms(|| {
            cluster_experiments::figure2_speedups(Scale::bytes(48 << 10));
        });
        push("cluster_model_figure2", cluster, 0.0, 1);
    }

    let corun_width = 4;
    let corun_uops =
        corun_width as f64 * (bench.options().warmup_ops + bench.options().max_ops) as f64;
    let mut corun_warm = false;
    if want("chip_corun_sort_x4") {
        eprintln!("dc-bench: chip co-run path (4 Sort tasks, shared L3)");
        cache::clear();
        let chip = time_ms(|| {
            bench.corun_counts(dcbench::BenchmarkId::Sort, corun_width);
        });
        push("chip_corun_sort_x4", chip, corun_uops, 1);
        corun_warm = true;
    }

    // Warm: the co-run matrix is memoized like everything else, so this
    // measures pure cache lookup (populated untimed under `--only`).
    if want("chip_corun_cached") {
        if !corun_warm {
            bench.corun_counts(dcbench::BenchmarkId::Sort, corun_width);
        }
        let chip_warm = time_ms(|| {
            bench.corun_counts(dcbench::BenchmarkId::Sort, corun_width);
        });
        push("chip_corun_cached", chip_warm, corun_uops, 1);
    }

    // Observability overhead: the sampled characterization pass over
    // the eleven data-analysis workloads, once with the recorder
    // disabled (the default — must cost nothing, so it gates) and once
    // streaming JSONL to a sink (informational). Sampled runs are
    // never memoized, so both passes simulate the same work.
    let da = dcbench::BenchmarkId::data_analysis();
    let every = bench.options().max_ops / 8;
    let sample_uops =
        da.len() as f64 * (bench.options().warmup_ops + bench.options().max_ops) as f64;
    if want("obs_disabled_sampled_matrix") || want("obs_recorder_sampled_matrix") {
        eprintln!("dc-bench: observability overhead (sampled DA matrix)");
    }
    if want("obs_disabled_sampled_matrix") {
        let disabled = time_ms(|| {
            for &id in da {
                bench.run_sampled(id, every);
            }
        });
        push("obs_disabled_sampled_matrix", disabled, sample_uops, 1);
    }

    if want("obs_recorder_sampled_matrix") {
        let recording = bench
            .clone()
            .with_recorder(Recorder::jsonl(std::io::sink()));
        let recorded = time_ms(|| {
            for &id in da {
                recording.run_sampled(id, every);
            }
        });
        push("obs_recorder_sampled_matrix", recorded, sample_uops, 1);
    }

    // Metrics-registry overhead: the cold parallel matrix with the
    // global registry switched off (must cost nothing — gates against
    // its baseline) and on (the default — informational). The matrix
    // crosses every instrumented path: cache counters per lookup, pool
    // gauges per parallel_map, simulator phase counters per run.
    if want("metrics_disabled") || want("metrics_enabled_matrix") {
        eprintln!("dc-bench: metrics-registry overhead (cold parallel matrix)");
    }
    if want("metrics_disabled") {
        dc_obs::metrics::global().set_enabled(false);
        cache::clear();
        let off = time_ms(|| {
            bench.run_all();
        });
        dc_obs::metrics::global().set_enabled(true);
        push("metrics_disabled", off, uops, jobs);
    }
    if want("metrics_enabled_matrix") {
        cache::clear();
        let on = time_ms(|| {
            bench.run_all();
        });
        push("metrics_enabled_matrix", on, uops, jobs);
    }

    // Sensitivity-sweep path: the eleven DA workloads along a two-point
    // L3 axis (half / paper-size), cold and then from the warm counter
    // cache. The cold pass is the per-axis cost unit EXPERIMENTS.md
    // quotes for Exhibit SW; the warm pass pins sweep regeneration to
    // cache-lookup speed.
    let axis = [sweep::SweepAxis::l3_bytes(vec![6 << 20, 12 << 20])];
    let sweep_uops = 2.0 * sample_uops;
    let mut sweep_warm = false;
    if want("sweep_l3_axis") {
        eprintln!("dc-bench: sensitivity sweep (L3 axis, 11 DA workloads)");
        cache::clear();
        let swept = time_ms(|| {
            sweep::run(&bench, da, &axis).expect("valid L3 grid");
        });
        push("sweep_l3_axis", swept, sweep_uops, jobs);
        sweep_warm = true;
    }

    if want("sweep_l3_cached") {
        if !sweep_warm {
            cache::clear();
            sweep::run(&bench, da, &axis).expect("valid L3 grid");
        }
        let swept_warm = time_ms(|| {
            sweep::run(&bench, da, &axis).expect("valid L3 grid");
        });
        push("sweep_l3_cached", swept_warm, sweep_uops, jobs);
    }

    // Same sweep through the persistent store: the cold pass simulates
    // everything and writes through (simulation + append + fsync cost);
    // the warm pass restarts with an empty memo and regenerates the
    // grid entirely from recovered store records — the cross-process
    // warm-start cost EXPERIMENTS.md quotes.
    if want("sweep_l3_store_cold") || want("sweep_l3_store_warm") {
        eprintln!("dc-bench: sensitivity sweep through the persistent store");
        let store_dir = std::env::temp_dir().join(format!("dc_bench_store_{}", std::process::id()));
        std::fs::create_dir_all(&store_dir).expect("mkdir store dir");
        let store_path = store_dir.join("bench_store.log");
        let quiet = Recorder::disabled();
        cache::clear();
        cache::attach_store(&store_path, &quiet).expect("open fresh store");
        if want("sweep_l3_store_cold") {
            let store_cold = time_ms(|| {
                sweep::run(&bench, da, &axis).expect("valid L3 grid");
            });
            push("sweep_l3_store_cold", store_cold, sweep_uops, jobs);
        } else {
            // Populate the store untimed so the warm pass has records.
            sweep::run(&bench, da, &axis).expect("valid L3 grid");
        }

        if want("sweep_l3_store_warm") {
            cache::clear();
            let store_warm = time_ms(|| {
                cache::attach_store(&store_path, &quiet).expect("reopen populated store");
                sweep::run(&bench, da, &axis).expect("valid L3 grid");
            });
            assert_eq!(
                cache::sim_invocations(),
                0,
                "a populated store must regenerate the sweep without simulating"
            );
            push("sweep_l3_store_warm", store_warm, sweep_uops, jobs);
        }
        cache::detach_store();
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    // Workload-subsetting pipeline (Exhibit SS): the eleven DA
    // workloads characterized, z-scored, PCA'd, clustered and rendered
    // — cold, then from the warm memo cache. The warm pass must
    // simulate nothing: it is the pure linear-algebra + render cost a
    // warm daemon pays per `subset` request.
    let window_name = if quick { "quick" } else { "full" };
    let mut subset_warm_ready = false;
    if want("subset_cold") {
        eprintln!("dc-bench: workload subsetting (Exhibit SS, 11 DA workloads)");
        cache::clear();
        let cold = time_ms(|| {
            let sub = dcbench::report::subset_exhibit(&bench, 4, dcbench::stats::Linkage::Complete);
            let _ = sub.to_json(window_name, bench.seed());
        });
        push("subset_cold", cold, sample_uops, jobs);
        subset_warm_ready = true;
    }
    if want("subset_warm") {
        if !subset_warm_ready {
            cache::clear();
            dcbench::report::subset_exhibit(&bench, 4, dcbench::stats::Linkage::Complete);
        }
        let sims_before = cache::sim_invocations();
        let warm = time_ms(|| {
            let sub = dcbench::report::subset_exhibit(&bench, 4, dcbench::stats::Linkage::Complete);
            let _ = sub.to_json(window_name, bench.seed());
        });
        assert_eq!(
            cache::sim_invocations(),
            sims_before,
            "a warm memo cache must regenerate the subset without simulating"
        );
        push("subset_warm", warm, sample_uops, jobs);
    }

    // Daemon request throughput: an in-process `dc-server` on an
    // ephemeral TCP port, four concurrent clients each pushing warm
    // submit+stream rounds end to end (accept → parse → queue →
    // executor → memo-cache hit → event replay → final response). A
    // cold warm-up submission first, so the timed rounds simulate
    // nothing and the number is pure protocol + scheduling cost.
    if want("server_throughput") {
        eprintln!("dc-bench: dc-server request throughput (warm submit+stream over TCP)");
        let server = dc_server::Server::start(dc_server::ServerConfig {
            workers: jobs,
            queue_cap: 256,
            recorder: Recorder::disabled(),
            ..dc_server::ServerConfig::default()
        });
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("bound address");
        {
            let server = server.clone();
            std::thread::spawn(move || server.serve_listener(&listener));
        }
        server_client(addr, 0, 1); // cold warm-up: the one simulated round
        const SERVER_CLIENTS: usize = 4;
        const SERVER_ROUNDS: usize = 8;
        let served = time_ms(|| {
            let handles: Vec<_> = (1..=SERVER_CLIENTS)
                .map(|c| std::thread::spawn(move || server_client(addr, c, SERVER_ROUNDS)))
                .collect();
            for h in handles {
                h.join().expect("bench client thread");
            }
        });
        push(
            "server_throughput",
            served,
            (SERVER_CLIENTS * SERVER_ROUNDS) as f64,
            SERVER_CLIENTS,
        );
        server.begin_shutdown();
        server.wait();
    }

    entries
}

/// One `server_throughput` client: `rounds` identical warm submissions
/// over a single connection, each followed to completion with `stream`
/// (blocks until the job is done — no sleep-polling in the timed path).
fn server_client(addr: std::net::SocketAddr, client: usize, rounds: usize) {
    use std::io::{BufRead, BufReader, Write as _};
    let stream = std::net::TcpStream::connect(addr).expect("connect dc-server");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    let recv = |reader: &mut BufReader<std::net::TcpStream>| -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("daemon response");
        line
    };
    for round in 0..rounds {
        let submit = format!(
            "{{\"id\":\"bench-c{client}-r{round}\",\"verb\":\"submit\",\
             \"job\":{{\"entries\":[\"Sort\",\"Grep\"],\"window\":\"quick\",\"seed\":704}}}}\n"
        );
        stream.write_all(submit.as_bytes()).expect("send submit");
        stream.flush().expect("flush submit");
        let accepted = recv(&mut reader);
        assert!(
            accepted.contains("\"ok\":true"),
            "submit rejected: {accepted}"
        );
        let job = {
            let pat = "\"job\":\"";
            let start = accepted.find(pat).expect("job name in response") + pat.len();
            let end = accepted[start..].find('"').expect("terminated job name");
            accepted[start..start + end].to_string()
        };
        let follow = format!(
            "{{\"id\":\"bench-c{client}-r{round}-f\",\"verb\":\"stream\",\"job\":\"{job}\"}}\n"
        );
        stream.write_all(follow.as_bytes()).expect("send stream");
        stream.flush().expect("flush stream");
        loop {
            let line = recv(&mut reader);
            assert!(!line.is_empty(), "daemon dropped the connection");
            if line.contains("\"ok\":") {
                assert!(
                    line.contains("\"done\""),
                    "job did not finish cleanly: {line}"
                );
                break;
            }
        }
    }
}

/// Mirror the run into `BENCH_<label>.events.jsonl` as `dc-obs` events,
/// so the bench harness itself exercises (and CI validates) the
/// documented event schema. Timestamps are entry indices: the wall
/// clock is already in the fields, and index timestamps keep the
/// artifact deterministic in shape.
fn write_events_jsonl(path: &str, opts: &Options, entries: &[BenchEntry]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let recorder = Recorder::jsonl(std::io::BufWriter::new(file));
    recorder.emit(
        0,
        "bench_run_start",
        vec![
            ("label", Value::str(opts.label.as_str())),
            (
                "window",
                Value::str(if opts.quick { "quick" } else { "full" }),
            ),
            ("jobs", Value::U64(pool::jobs() as u64)),
        ],
    );
    for (i, e) in entries.iter().enumerate() {
        recorder.emit(
            i as u64 + 1,
            "bench_entry",
            vec![
                ("name", Value::str(e.name)),
                ("wall_ms", Value::F64(e.wall_ms)),
                ("uops_per_s", Value::F64(e.uops_per_s)),
                ("threads", Value::U64(e.threads as u64)),
            ],
        );
    }
    recorder.emit(
        entries.len() as u64 + 1,
        "bench_run_end",
        vec![("entries", Value::U64(entries.len() as u64))],
    );
    recorder.flush();
    Ok(())
}

fn render_json(label: &str, quick: bool, entries: &[BenchEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(
        out,
        "  \"window\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(out, "  \"jobs\": {},", pool::jobs());
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"uops_per_s\": {:.1}, \"threads\": {}}}{comma}",
            e.name, e.wall_ms, e.uops_per_s, e.threads
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Pull `"key": "<string>"` out of one JSON line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Pull `"key": <number>` out of one JSON line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the (name, wall_ms) pairs from a `BENCH_*.json` emitted by
/// this harness (one entry object per line).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| {
            let name = json_str(line, "name")?;
            let wall = json_num(line, "wall_ms")?;
            Some((name.to_string(), wall))
        })
        .collect()
}

/// Absolute grace on top of the ratio gate, so sub-millisecond entries
/// (the warm-cache pass) cannot trip on scheduler noise.
const GATE_SLACK_MS: f64 = 50.0;

/// Compare the full-matrix, chip, sweep, server, recorder-disabled and
/// metrics-disabled entries against the baseline; returns the list of
/// human-readable regression descriptions. `obs_recorder_*` and
/// `metrics_enabled_*` entries are informational only — the contract
/// is that the *disabled* paths stay free, not that instrumentation is.
fn regressions(current: &[BenchEntry], baseline: &[(String, f64)], tolerance: f64) -> Vec<String> {
    let mut bad = Vec::new();
    for e in current.iter().filter(|e| {
        e.name.starts_with("full_matrix")
            || e.name.starts_with("chip_")
            || e.name.starts_with("sweep_")
            || e.name.starts_with("subset_")
            || e.name.starts_with("server_")
            || e.name.starts_with("obs_disabled")
            || e.name.starts_with("metrics_disabled")
    }) {
        let Some((_, base_ms)) = baseline.iter().find(|(n, _)| n == e.name) else {
            eprintln!(
                "dc-bench: note: baseline has no entry '{}' — skipped",
                e.name
            );
            continue;
        };
        let limit = base_ms * (1.0 + tolerance) + GATE_SLACK_MS;
        if e.wall_ms > limit {
            bad.push(format!(
                "{}: {:.1} ms vs baseline {:.1} ms (> {:.0}% over)",
                e.name,
                e.wall_ms,
                base_ms,
                tolerance * 100.0
            ));
        }
    }
    bad
}

fn main() -> ExitCode {
    let opts = parse_args();
    let entries = run_entries(opts.quick, opts.only.as_deref());
    if entries.is_empty() {
        eprintln!(
            "dc-bench: --only '{}' matched no entries",
            opts.only.as_deref().unwrap_or("")
        );
        return ExitCode::from(2);
    }
    let json = render_json(&opts.label, opts.quick, &entries);

    let path = format!("{}/BENCH_{}.json", opts.out_dir, opts.label);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("dc-bench: cannot write {path}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("dc-bench: wrote {path}");

    let events_path = format!("{}/BENCH_{}.events.jsonl", opts.out_dir, opts.label);
    if let Err(e) = write_events_jsonl(&events_path, &opts, &entries) {
        eprintln!("dc-bench: cannot write {events_path}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("dc-bench: wrote {events_path}");

    let seq = entries.iter().find(|e| e.name == "full_matrix_sequential");
    let par = entries.iter().find(|e| e.name == "full_matrix_parallel");
    if let (Some(seq), Some(par)) = (seq, par) {
        if par.wall_ms > 0.0 {
            eprintln!(
                "dc-bench: parallel speedup {:.2}x on {} worker(s)",
                seq.wall_ms / par.wall_ms,
                par.threads
            );
        }
    }

    if let Some(baseline_path) = &opts.baseline {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dc-bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            eprintln!("dc-bench: baseline {baseline_path} has no parsable entries");
            return ExitCode::from(2);
        }
        let bad = regressions(&entries, &baseline, opts.tolerance);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("dc-bench: REGRESSION {b}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "dc-bench: no full-matrix regression vs {baseline_path} (tolerance {:.0}%)",
            opts.tolerance * 100.0
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let entries = vec![
            BenchEntry {
                name: "full_matrix_sequential",
                wall_ms: 1234.5,
                uops_per_s: 2.5e6,
                threads: 1,
            },
            BenchEntry {
                name: "full_matrix_parallel",
                wall_ms: 321.0,
                uops_per_s: 9.6e6,
                threads: 4,
            },
        ];
        let json = render_json("test", true, &entries);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "full_matrix_sequential");
        assert!((parsed[0].1 - 1234.5).abs() < 1e-9);
        assert!((parsed[1].1 - 321.0).abs() < 1e-9);
    }

    #[test]
    fn regression_gate_trips_only_past_tolerance() {
        let current = vec![BenchEntry {
            name: "full_matrix_parallel",
            wall_ms: 1400.0,
            uops_per_s: 0.0,
            threads: 4,
        }];
        let baseline = vec![("full_matrix_parallel".to_string(), 1000.0)];
        assert_eq!(regressions(&current, &baseline, 0.25).len(), 1);
        assert!(regressions(&current, &baseline, 0.5).is_empty());
        // Sub-slack entries (the warm-cache pass) never trip on noise.
        let tiny = vec![BenchEntry {
            name: "full_matrix_cached",
            wall_ms: 3.0,
            uops_per_s: 0.0,
            threads: 4,
        }];
        let tiny_base = vec![("full_matrix_cached".to_string(), 0.2)];
        assert!(regressions(&tiny, &tiny_base, 0.25).is_empty());
        // Non-matrix entries never gate.
        let engine = vec![BenchEntry {
            name: "engine_wordcount_256k",
            wall_ms: 900.0,
            uops_per_s: 0.0,
            threads: 4,
        }];
        let engine_base = vec![("engine_wordcount_256k".to_string(), 1.0)];
        assert!(regressions(&engine, &engine_base, 0.25).is_empty());
        // Chip co-run entries gate like the matrix ones.
        let chip = vec![BenchEntry {
            name: "chip_corun_sort_x4",
            wall_ms: 2000.0,
            uops_per_s: 0.0,
            threads: 1,
        }];
        let chip_base = vec![("chip_corun_sort_x4".to_string(), 1000.0)];
        assert_eq!(regressions(&chip, &chip_base, 0.25).len(), 1);
        assert!(regressions(&chip, &chip_base, 1.5).is_empty());
        // Sweep entries gate like the matrix ones.
        let swept = vec![BenchEntry {
            name: "sweep_l3_axis",
            wall_ms: 3000.0,
            uops_per_s: 0.0,
            threads: 4,
        }];
        let swept_base = vec![("sweep_l3_axis".to_string(), 1000.0)];
        assert_eq!(regressions(&swept, &swept_base, 0.25).len(), 1);
        assert!(regressions(&swept, &swept_base, 2.5).is_empty());
        // Subsetting entries gate like the matrix ones.
        let subsetting = vec![BenchEntry {
            name: "subset_cold",
            wall_ms: 3000.0,
            uops_per_s: 0.0,
            threads: 4,
        }];
        let subsetting_base = vec![("subset_cold".to_string(), 1000.0)];
        assert_eq!(regressions(&subsetting, &subsetting_base, 0.25).len(), 1);
        assert!(regressions(&subsetting, &subsetting_base, 2.5).is_empty());
        // Daemon throughput gates like the matrix ones.
        let daemon = vec![BenchEntry {
            name: "server_throughput",
            wall_ms: 2000.0,
            uops_per_s: 0.0,
            threads: 4,
        }];
        let daemon_base = vec![("server_throughput".to_string(), 1000.0)];
        assert_eq!(regressions(&daemon, &daemon_base, 0.25).len(), 1);
        assert!(regressions(&daemon, &daemon_base, 1.5).is_empty());
        // The recorder-disabled path gates; the recording path is
        // informational only.
        let obs = vec![
            BenchEntry {
                name: "obs_disabled_sampled_matrix",
                wall_ms: 2000.0,
                uops_per_s: 0.0,
                threads: 1,
            },
            BenchEntry {
                name: "obs_recorder_sampled_matrix",
                wall_ms: 9000.0,
                uops_per_s: 0.0,
                threads: 1,
            },
        ];
        let obs_base = vec![
            ("obs_disabled_sampled_matrix".to_string(), 1000.0),
            ("obs_recorder_sampled_matrix".to_string(), 1000.0),
        ];
        let bad = regressions(&obs, &obs_base, 0.25);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("obs_disabled_sampled_matrix"));
        // Same split for the metrics registry: the disabled path gates,
        // the enabled path is informational.
        let metrics = vec![
            BenchEntry {
                name: "metrics_disabled",
                wall_ms: 2000.0,
                uops_per_s: 0.0,
                threads: 4,
            },
            BenchEntry {
                name: "metrics_enabled_matrix",
                wall_ms: 9000.0,
                uops_per_s: 0.0,
                threads: 4,
            },
        ];
        let metrics_base = vec![
            ("metrics_disabled".to_string(), 1000.0),
            ("metrics_enabled_matrix".to_string(), 1000.0),
        ];
        let bad = regressions(&metrics, &metrics_base, 0.25);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("metrics_disabled"));
    }

    #[test]
    fn run_metadata_events_satisfy_the_documented_schema() {
        let dir = std::env::temp_dir().join("dc_bench_events_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let opts = Options {
            label: "schema-test".to_string(),
            quick: true,
            baseline: None,
            tolerance: 0.25,
            out_dir: dir.to_string_lossy().into_owned(),
            only: None,
        };
        let entries = vec![BenchEntry {
            name: "full_matrix_sequential",
            wall_ms: 12.5,
            uops_per_s: 1e6,
            threads: 1,
        }];
        let path = format!("{}/BENCH_{}.events.jsonl", opts.out_dir, opts.label);
        write_events_jsonl(&path, &opts, &entries).expect("write events");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(dc_benches::schema::validate_stream(&text), Ok(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn only_prefix_filter_selects_by_name_prefix() {
        // No filter: everything runs.
        assert!(selected("full_matrix_sequential", None));
        assert!(selected("server_throughput", None));
        // Exact name and shared prefixes both match.
        assert!(selected(
            "full_matrix_sequential",
            Some("full_matrix_sequential")
        ));
        assert!(selected("full_matrix_sequential", Some("full_matrix")));
        assert!(selected("full_matrix_parallel", Some("full_matrix")));
        assert!(selected("sweep_l3_store_warm", Some("sweep_")));
        // Non-matching prefixes exclude.
        assert!(!selected("server_throughput", Some("full_matrix")));
        assert!(!selected("full_matrix_cached", Some("full_matrix_seq")));
        // The empty prefix matches everything (same as no filter).
        assert!(selected("chip_corun_sort_x4", Some("")));
    }

    #[test]
    fn field_extractors() {
        let line = r#"    {"name": "x", "wall_ms": 12.5, "uops_per_s": 1e3, "threads": 2},"#;
        assert_eq!(json_str(line, "name"), Some("x"));
        assert_eq!(json_num(line, "wall_ms"), Some(12.5));
        assert_eq!(json_num(line, "threads"), Some(2.0));
        assert_eq!(json_num(line, "missing"), None);
    }
}
