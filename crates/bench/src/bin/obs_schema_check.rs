//! `obs-schema-check` — validate `dc-obs` observability artifacts
//! against their documented schemas.
//!
//! ```text
//! obs-schema-check <file.jsonl> [more.jsonl ...]
//! obs-schema-check --lines <file.jsonl> ...   # per-line only, no seq check
//! obs-schema-check --metrics <metrics.txt> ... # text exposition files
//! ```
//!
//! Default mode treats each file as one single-recorder artifact
//! (`seq` must be gapless from zero); `--lines` relaxes that for files
//! that concatenate several recorders' output (e.g. the engine and
//! cluster rings that `job_timeline --jsonl` chains into one file).
//! `--metrics` switches schemas entirely: each file must be a
//! Prometheus-style text exposition as produced by the metrics
//! registry (`dc-top --text` captures one from a live daemon), checked
//! for sorted `# TYPE` families, cumulative histogram buckets and
//! matching `_count` tails. Exit 0 when every file validates, 1 on the
//! first schema violation, 2 on usage or I/O errors.

use dc_benches::{metrics_text, schema};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Stream,
    Lines,
    Metrics,
}

fn main() -> ExitCode {
    let mut mode = Mode::Stream;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--lines" => mode = Mode::Lines,
            "--metrics" => mode = Mode::Metrics,
            other if other.starts_with('-') => {
                eprintln!("obs-schema-check: unknown flag {other}");
                eprintln!("usage: obs-schema-check [--lines | --metrics] <file> ...");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: obs-schema-check [--lines | --metrics] <file> ...");
        return ExitCode::from(2);
    }

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-schema-check: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let (result, unit) = match mode {
            Mode::Stream => (schema::validate_stream(&text), "event"),
            Mode::Lines => {
                let mut n = 0usize;
                let mut err = None;
                for (i, line) in text.lines().enumerate() {
                    if let Err(e) = schema::validate_line(line) {
                        err = Some(format!("line {}: {e}", i + 1));
                        break;
                    }
                    n += 1;
                }
                (
                    match err {
                        Some(e) => Err(e),
                        None => Ok(n),
                    },
                    "event",
                )
            }
            Mode::Metrics => (metrics_text::validate_metrics_text(&text), "sample"),
        };
        match result {
            Ok(n) => eprintln!("obs-schema-check: {path}: {n} {unit}(s) OK"),
            Err(e) => {
                eprintln!("obs-schema-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
