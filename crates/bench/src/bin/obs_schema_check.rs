//! `obs-schema-check` — validate `dc-obs` JSONL artifacts against the
//! documented event schema.
//!
//! ```text
//! obs-schema-check <file.jsonl> [more.jsonl ...]
//! obs-schema-check --lines <file.jsonl> ...   # per-line only, no seq check
//! ```
//!
//! Default mode treats each file as one single-recorder artifact
//! (`seq` must be gapless from zero); `--lines` relaxes that for files
//! that concatenate several recorders' output (e.g. the engine and
//! cluster rings that `job_timeline --jsonl` chains into one file).
//! Exit 0 when every file validates, 1 on the first schema violation,
//! 2 on usage or I/O errors.

use dc_benches::schema;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut per_line_only = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--lines" => per_line_only = true,
            other if other.starts_with('-') => {
                eprintln!("obs-schema-check: unknown flag {other}");
                eprintln!("usage: obs-schema-check [--lines] <file.jsonl> ...");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: obs-schema-check [--lines] <file.jsonl> ...");
        return ExitCode::from(2);
    }

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-schema-check: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let result = if per_line_only {
            let mut n = 0usize;
            let mut err = None;
            for (i, line) in text.lines().enumerate() {
                if let Err(e) = schema::validate_line(line) {
                    err = Some(format!("line {}: {e}", i + 1));
                    break;
                }
                n += 1;
            }
            match err {
                Some(e) => Err(e),
                None => Ok(n),
            }
        } else {
            schema::validate_stream(&text)
        };
        match result {
            Ok(n) => eprintln!("obs-schema-check: {path}: {n} event(s) OK"),
            Err(e) => {
                eprintln!("obs-schema-check: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
