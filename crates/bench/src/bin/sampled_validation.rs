//! `sampled-validation` — hold SMARTS sampled simulation to its
//! documented error bounds.
//!
//! Runs the data-analysis matrix twice — exact and sampled under
//! [`dc_cpu::SamplePlan::DEFAULT`] — and compares the derived metrics
//! per workload:
//!
//! ```text
//! cargo run --release -p dc-benches --bin sampled-validation -- \
//!     --out sampled_validation.md
//! ```
//!
//! At the full windows (the default) every workload must land within
//! ≤ 3% relative IPC error and ≤ 5% relative L2/L3 MPKI error — the
//! bounds DESIGN.md §13 documents and CI enforces. `--quick` runs the
//! quick windows instead, where only ~5 detailed bursts fit and the
//! extrapolation variance loosens the documented IPC bound to 8%
//! (MPKI, an event-count ratio, keeps its 5% bound everywhere).
//!
//! The per-workload comparison table is written to `--out` as
//! markdown (the CI artifact) and echoed to stdout; any bound
//! violation is reported on stderr and fails the run (exit 1).

use dcbench::{BenchmarkId, Characterizer};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Per-metric relative-error bounds for one validation profile.
struct Bounds {
    window: &'static str,
    ipc: f64,
    mpki: f64,
}

/// The documented full-window bounds (≥ ~12 bursts of the default
/// plan: variance averages out).
const FULL: Bounds = Bounds {
    window: "full",
    ipc: 0.03,
    mpki: 0.05,
};

/// The documented quick-window bounds (~5 bursts: the extrapolated
/// IPC is variance-limited; MPKI is an event count and stays tight).
const QUICK: Bounds = Bounds {
    window: "quick",
    ipc: 0.08,
    mpki: 0.05,
};

/// One workload's exact-vs-sampled comparison.
struct Row {
    name: &'static str,
    ipc_exact: f64,
    ipc_sampled: f64,
    ipc_err: f64,
    l2_err: f64,
    l3_err: f64,
}

/// Relative error with a small absolute floor so near-zero exact
/// values don't manufacture huge ratios.
fn rel_err(sampled: f64, exact: f64) -> f64 {
    (sampled - exact).abs() / exact.abs().max(0.1)
}

fn compare(exact: &Characterizer, sampled: &Characterizer) -> Vec<Row> {
    BenchmarkId::data_analysis()
        .iter()
        .map(|&id| {
            let e = exact.run(id);
            let s = sampled.run(id);
            Row {
                name: id.name(),
                ipc_exact: e.ipc,
                ipc_sampled: s.ipc,
                ipc_err: rel_err(s.ipc, e.ipc),
                l2_err: rel_err(s.l2_mpki, e.l2_mpki),
                l3_err: rel_err(s.l3_mpki, e.l3_mpki),
            }
        })
        .collect()
}

/// Bound violations as human-readable lines (empty ⇒ pass).
fn violations(rows: &[Row], bounds: &Bounds) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if r.ipc_err > bounds.ipc {
            out.push(format!(
                "{}: IPC error {:.4} exceeds the {:.0}% {} bound",
                r.name,
                r.ipc_err,
                bounds.ipc * 100.0,
                bounds.window
            ));
        }
        for (metric, err) in [("L2 MPKI", r.l2_err), ("L3 MPKI", r.l3_err)] {
            if err > bounds.mpki {
                out.push(format!(
                    "{}: {metric} error {err:.4} exceeds the {:.0}% {} bound",
                    r.name,
                    bounds.mpki * 100.0,
                    bounds.window
                ));
            }
        }
    }
    out
}

/// Render the comparison as a markdown table (the CI artifact).
fn render(rows: &[Row], bounds: &Bounds, plan: dc_cpu::SamplePlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Sampled-simulation validation ({} windows, plan {}k/{}k)\n",
        bounds.window,
        plan.detail_ops / 1000,
        plan.ffwd_ops / 1000
    );
    let _ = writeln!(
        out,
        "Bounds: IPC ≤ {:.0}%, L2/L3 MPKI ≤ {:.0}% relative error.\n",
        bounds.ipc * 100.0,
        bounds.mpki * 100.0
    );
    let _ = writeln!(
        out,
        "| workload | exact IPC | sampled IPC | IPC err | L2 MPKI err | L3 MPKI err |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.4} | {:.4} | {:.2}% | {:.2}% | {:.2}% |",
            r.name,
            r.ipc_exact,
            r.ipc_sampled,
            r.ipc_err * 100.0,
            r.l2_err * 100.0,
            r.l3_err * 100.0
        );
    }
    let worst = |f: fn(&Row) -> f64| rows.iter().map(f).fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "\nWorst: IPC {:.2}%, L2 MPKI {:.2}%, L3 MPKI {:.2}%.",
        worst(|r| r.ipc_err) * 100.0,
        worst(|r| r.l2_err) * 100.0,
        worst(|r| r.l3_err) * 100.0
    );
    out
}

fn usage() -> ! {
    eprintln!("usage: sampled-validation [--quick] [--out <path.md>]");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let (exact, sampled, bounds) = if quick {
        (
            Characterizer::quick(),
            Characterizer::quick_sampled(),
            QUICK,
        )
    } else {
        (Characterizer::full(), Characterizer::full_sampled(), FULL)
    };
    let plan = dc_cpu::SamplePlan::DEFAULT;
    eprintln!(
        "sampled-validation: {} windows, {} workloads, plan {}/{}",
        bounds.window,
        BenchmarkId::data_analysis().len(),
        plan.detail_ops,
        plan.ffwd_ops
    );

    let rows = compare(&exact, &sampled);
    let table = render(&rows, &bounds, plan);
    print!("{table}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &table) {
            eprintln!("sampled-validation: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let bad = violations(&rows, &bounds);
    if bad.is_empty() {
        eprintln!(
            "sampled-validation: all {} workloads within bounds",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for line in &bad {
            eprintln!("sampled-validation: FAIL {line}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ipc_err: f64, l2_err: f64, l3_err: f64) -> Row {
        Row {
            name: "Sort",
            ipc_exact: 1.0,
            ipc_sampled: 1.0 + ipc_err,
            ipc_err,
            l2_err,
            l3_err,
        }
    }

    #[test]
    fn bounds_trip_per_metric() {
        assert!(violations(&[row(0.02, 0.01, 0.01)], &FULL).is_empty());
        assert_eq!(violations(&[row(0.04, 0.01, 0.01)], &FULL).len(), 1);
        assert_eq!(violations(&[row(0.01, 0.06, 0.06)], &FULL).len(), 2);
        // The quick profile loosens only the IPC bound.
        assert!(violations(&[row(0.07, 0.01, 0.01)], &QUICK).is_empty());
        assert_eq!(violations(&[row(0.07, 0.06, 0.01)], &QUICK).len(), 1);
    }

    #[test]
    fn rel_err_floors_tiny_denominators() {
        assert!((rel_err(1.03, 1.0) - 0.03).abs() < 1e-12);
        // Near-zero exact values use the 0.1 floor instead of blowing
        // up the ratio.
        assert!((rel_err(0.001, 0.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn table_renders_one_row_per_workload() {
        let rows = [row(0.01, 0.0, 0.0), row(0.02, 0.0, 0.0)];
        let md = render(&rows, &FULL, dc_cpu::SamplePlan::DEFAULT);
        assert_eq!(md.matches("| Sort |").count(), 2);
        assert!(md.contains("plan 25k/75k"));
        assert!(md.contains("IPC ≤ 3%"));
        assert!(md.contains("Worst: IPC 2.00%"));
    }
}
