//! Validator for the Prometheus-style text exposition produced by
//! [`dc_obs::metrics::MetricsSnapshot::render_text`].
//!
//! The exposition is one of the three public surfaces of the metrics
//! subsystem (JSON `stats`, text exposition, `dc-top`), and CI gates
//! the daemon's live output through this checker
//! (`obs-schema-check --metrics`). The rules mirror what the renderer
//! promises:
//!
//! - every sample belongs to a family announced by a `# TYPE name kind`
//!   header, `kind` one of `counter` | `gauge` | `histogram`;
//! - family names are strictly ascending (snapshots are sorted, one
//!   header per family);
//! - scalar samples are named exactly after their family; histogram
//!   samples are `name_bucket` / `name_sum` / `name_count`;
//! - every histogram series has ascending `le` edges with cumulative
//!   non-decreasing counts, ends in `le="+Inf"`, and its `_count`
//!   equals the `+Inf` bucket;
//! - all values are integers (the registry is integer arithmetic end
//!   to end — a float anywhere means corruption), and only gauges may
//!   go negative.

/// Metric family kinds the exposition may announce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// One parsed sample line: base name, label pairs, value. The value is
/// signed because gauges may legitimately go negative; every other use
/// re-checks the sign.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: i64,
}

impl Sample {
    fn unsigned(&self) -> Result<u64, String> {
        u64::try_from(self.value)
            .map_err(|_| format!("negative value {} on a non-gauge sample", self.value))
    }
}

/// Split `name{k="v",…} 42` into its parts. Label values are quoted
/// strings without embedded quotes (the renderer never escapes because
/// the registry never needs to).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (key, value) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < brace {
                return Err("mismatched braces".into());
            }
            let mut labels = Vec::new();
            let body = &line[brace + 1..close];
            for pair in body.split(',') {
                let (k, v) = pair.split_once('=').ok_or("label without '='")?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or("label value not quoted")?;
                if k.is_empty() || !is_ident(k) {
                    return Err(format!("bad label name {k:?}"));
                }
                labels.push((k.to_string(), v.to_string()));
            }
            let rest = line[close + 1..]
                .strip_prefix(' ')
                .ok_or("missing space before value")?;
            (
                Sample {
                    name: line[..brace].to_string(),
                    labels,
                    value: 0,
                },
                rest,
            )
        }
        None => {
            let (name, rest) = line.split_once(' ').ok_or("sample without value")?;
            (
                Sample {
                    name: name.to_string(),
                    labels: Vec::new(),
                    value: 0,
                },
                rest,
            )
        }
    };
    if key.name.is_empty() || !is_ident(&key.name) {
        return Err(format!("bad metric name {:?}", key.name));
    }
    let value: i64 = value
        .parse()
        .map_err(|_| format!("value {value:?} is not an integer"))?;
    Ok(Sample { value, ..key })
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// In-flight histogram series state: one `(base labels)` block of
/// `_bucket` lines awaiting its `_sum` and `_count`.
struct HistSeries {
    base_labels: Vec<(String, String)>,
    last_edge: Option<u64>,
    last_cum: u64,
    inf_count: Option<u64>,
    sum_seen: bool,
}

/// Validate a full text exposition. Returns the number of sample lines
/// on success; the first violation (with its 1-based line number)
/// otherwise.
pub fn validate_metrics_text(text: &str) -> Result<usize, String> {
    let mut family: Option<(String, Kind)> = None;
    let mut series: Option<HistSeries> = None;
    let mut samples = 0usize;

    let close_series = |series: &mut Option<HistSeries>| -> Result<(), String> {
        if let Some(s) = series.take() {
            if !s.sum_seen || s.inf_count.is_none() {
                return Err("histogram series is missing its _sum/_count tail".into());
            }
        }
        Ok(())
    };

    for (i, line) in text.lines().enumerate() {
        let at = |e: String| format!("line {}: {e}", i + 1);
        if let Some(header) = line.strip_prefix("# TYPE ") {
            close_series(&mut series).map_err(at)?;
            let (name, kind) = header
                .split_once(' ')
                .ok_or_else(|| at("malformed TYPE header".into()))?;
            if !is_ident(name) {
                return Err(at(format!("bad family name {name:?}")));
            }
            let kind = match kind {
                "counter" => Kind::Counter,
                "gauge" => Kind::Gauge,
                "histogram" => Kind::Histogram,
                other => return Err(at(format!("unknown family kind {other:?}"))),
            };
            if let Some((prev, _)) = &family {
                if name <= prev.as_str() {
                    return Err(at(format!(
                        "family {name:?} is not strictly after {prev:?} (snapshots are sorted)"
                    )));
                }
            }
            family = Some((name.to_string(), kind));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment: tolerated, never required.
        }
        if line.is_empty() {
            return Err(at("blank line inside exposition".into()));
        }

        let sample = parse_sample(line).map_err(at)?;
        samples += 1;
        let Some((fam_name, kind)) = &family else {
            return Err(at(format!(
                "sample {:?} before any TYPE header",
                sample.name
            )));
        };
        match kind {
            Kind::Counter | Kind::Gauge => {
                if &sample.name != fam_name {
                    return Err(at(format!(
                        "sample {:?} does not belong to family {fam_name:?}",
                        sample.name
                    )));
                }
                if *kind == Kind::Counter {
                    sample.unsigned().map_err(at)?;
                }
            }
            Kind::Histogram => {
                let value = sample.unsigned().map_err(at)?;
                let suffix = sample.name.strip_prefix(fam_name.as_str()).ok_or_else(|| {
                    at(format!(
                        "sample {:?} does not belong to family {fam_name:?}",
                        sample.name
                    ))
                })?;
                match suffix {
                    "_bucket" => {
                        let mut base = sample.labels.clone();
                        let le = match base.pop() {
                            Some((k, v)) if k == "le" => v,
                            _ => return Err(at("bucket line without trailing le label".into())),
                        };
                        let s = series.get_or_insert_with(|| HistSeries {
                            base_labels: base.clone(),
                            last_edge: None,
                            last_cum: 0,
                            inf_count: None,
                            sum_seen: false,
                        });
                        if s.base_labels != base {
                            return Err(
                                at("bucket labels changed before the series closed".into()),
                            );
                        }
                        if s.inf_count.is_some() {
                            return Err(at("bucket after le=\"+Inf\"".into()));
                        }
                        if value < s.last_cum {
                            return Err(at(format!(
                                "cumulative bucket count went backwards ({} -> {})",
                                s.last_cum, value
                            )));
                        }
                        s.last_cum = value;
                        if le == "+Inf" {
                            s.inf_count = Some(value);
                        } else {
                            let edge: u64 =
                                le.parse().map_err(|_| at(format!("bad le edge {le:?}")))?;
                            if s.last_edge.is_some_and(|prev| edge <= prev) {
                                return Err(at(format!("le edges not ascending at {edge}")));
                            }
                            s.last_edge = Some(edge);
                        }
                    }
                    "_sum" => {
                        let s = series
                            .as_mut()
                            .ok_or_else(|| at("_sum before any bucket".into()))?;
                        if s.inf_count.is_none() {
                            return Err(at("_sum before the le=\"+Inf\" bucket".into()));
                        }
                        if s.base_labels != sample.labels {
                            return Err(at("_sum labels do not match the series".into()));
                        }
                        s.sum_seen = true;
                    }
                    "_count" => {
                        let s = series
                            .as_mut()
                            .ok_or_else(|| at("_count before any bucket".into()))?;
                        if !s.sum_seen {
                            return Err(at("_count before _sum".into()));
                        }
                        if s.base_labels != sample.labels {
                            return Err(at("_count labels do not match the series".into()));
                        }
                        if Some(value) != s.inf_count {
                            return Err(at(format!(
                                "_count {} disagrees with the +Inf bucket {:?}",
                                value, s.inf_count
                            )));
                        }
                        series = None;
                    }
                    other => return Err(at(format!("unknown histogram sample suffix {other:?}"))),
                }
            }
        }
    }
    close_series(&mut series).map_err(|e| format!("end of input: {e}"))?;
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_obs::metrics::Registry;

    fn real_exposition() -> String {
        let reg = Registry::new();
        reg.counter("dc_requests_total", &[("verb", "submit")])
            .add(4);
        reg.counter("dc_requests_total", &[("verb", "stats")]).inc();
        reg.gauge("dc_queue_depth", &[]).set(2);
        let h = reg.histogram("dc_wait_us", &[]);
        for v in [0u64, 0, 3, 900] {
            h.observe(v);
        }
        reg.snapshot().render_text()
    }

    #[test]
    fn accepts_the_real_renderer_output() {
        let text = real_exposition();
        let n = validate_metrics_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        // 1 gauge + 2 counters + (3 finite buckets + Inf + sum + count).
        assert_eq!(n, 9);
        assert_eq!(validate_metrics_text(""), Ok(0));
    }

    #[test]
    fn rejects_unsorted_families_and_bad_kinds() {
        let text = "# TYPE b counter\nb 1\n# TYPE a counter\na 1\n";
        assert!(validate_metrics_text(text).unwrap_err().contains("sorted"));
        let text = "# TYPE a summary\na 1\n";
        assert!(validate_metrics_text(text).unwrap_err().contains("kind"));
        let text = "orphan 3\n";
        assert!(validate_metrics_text(text)
            .unwrap_err()
            .contains("before any TYPE"));
    }

    #[test]
    fn rejects_broken_histograms() {
        // Cumulative counts must not go backwards.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 4\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate_metrics_text(text)
            .unwrap_err()
            .contains("backwards"));
        // _count must equal the +Inf bucket.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 6\n";
        assert!(validate_metrics_text(text)
            .unwrap_err()
            .contains("disagrees"));
        // A series must close before the file ends.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n";
        assert!(validate_metrics_text(text)
            .unwrap_err()
            .contains("_sum/_count"));
        // Non-integer values are corruption.
        let text = "# TYPE g gauge\ng 1.5\n";
        assert!(validate_metrics_text(text).unwrap_err().contains("integer"));
    }
}
