//! Text corpora: Zipf-worded documents, labeled documents, HTML pages.

use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated vocabulary: `word(rank)` strings with Zipf popularity.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    cdf: Vec<f64>,
}

impl Vocabulary {
    /// Build a vocabulary of `size` words with Zipf exponent `theta`.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize, theta: f64) -> Self {
        assert!(size > 0, "vocabulary must be non-empty");
        let words = (0..size).map(|i| format!("w{i:06}")).collect();
        let mut cdf = Vec::with_capacity(size);
        let mut acc = 0.0;
        for k in 1..=size {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Vocabulary { words, cdf }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Sample one word.
    pub fn sample<'a>(&'a self, rng: &mut StdRng) -> &'a str {
        let u: f64 = rng.gen();
        let idx = match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.words.len() - 1),
        };
        &self.words[idx]
    }
}

/// Generate a document corpus totalling roughly `scale.bytes` bytes,
/// split into documents of ~`doc_words` words.
pub fn documents(seed: u64, scale: Scale, doc_words: usize) -> Vec<String> {
    let vocab = Vocabulary::new(20_000, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::new();
    let mut bytes: u64 = 0;
    while bytes < scale.bytes {
        let mut doc = String::with_capacity(doc_words * 8);
        for i in 0..doc_words.max(1) {
            if i > 0 {
                doc.push(' ');
            }
            doc.push_str(vocab.sample(&mut rng));
        }
        bytes += doc.len() as u64 + 1;
        docs.push(doc);
    }
    docs
}

/// A labeled document for classifier training/testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledDoc {
    /// Class label (e.g. spam / ham, category id).
    pub label: u32,
    /// Document text.
    pub text: String,
}

impl dc_mapreduce::ByteSize for LabeledDoc {
    fn byte_size(&self) -> usize {
        4 + self.text.len() + 4
    }
}

/// Generate labeled documents over `classes` classes, where each class
/// has its own skewed sub-vocabulary (so classifiers have signal).
pub fn labeled_documents(
    seed: u64,
    scale: Scale,
    classes: u32,
    doc_words: usize,
) -> Vec<LabeledDoc> {
    assert!(classes > 0, "need at least one class");
    let mut rng = StdRng::seed_from_u64(seed);
    // Shared background vocabulary plus a per-class topical one.
    let background = Vocabulary::new(8_000, 1.0);
    let topical: Vec<Vocabulary> = (0..classes).map(|_| Vocabulary::new(500, 0.8)).collect();
    let mut docs = Vec::new();
    let mut bytes: u64 = 0;
    while bytes < scale.bytes {
        let label = rng.gen_range(0..classes);
        let mut text = String::with_capacity(doc_words * 8);
        for i in 0..doc_words.max(1) {
            if i > 0 {
                text.push(' ');
            }
            if rng.gen_bool(0.4) {
                // Topical words are disambiguated per class by prefixing.
                text.push_str(&format!(
                    "c{label}{}",
                    topical[label as usize].sample(&mut rng)
                ));
            } else {
                text.push_str(background.sample(&mut rng));
            }
        }
        bytes += text.len() as u64 + 1;
        docs.push(LabeledDoc { label, text });
    }
    docs
}

/// Generate synthetic HTML pages (SVM / HMM inputs in Table I are "html
/// file"): title, paragraphs of Zipf text, and anchor tags.
pub fn html_pages(seed: u64, scale: Scale) -> Vec<String> {
    let vocab = Vocabulary::new(15_000, 1.05);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pages = Vec::new();
    let mut bytes: u64 = 0;
    let mut id = 0u64;
    while bytes < scale.bytes {
        let mut page = String::from("<html><head><title>");
        for _ in 0..4 {
            page.push_str(vocab.sample(&mut rng));
            page.push(' ');
        }
        page.push_str("</title></head><body>");
        let paragraphs = rng.gen_range(2..6);
        for _ in 0..paragraphs {
            page.push_str("<p>");
            for _ in 0..rng.gen_range(20..80) {
                page.push_str(vocab.sample(&mut rng));
                page.push(' ');
            }
            page.push_str("</p>");
        }
        let links = rng.gen_range(1..8);
        for _ in 0..links {
            page.push_str(&format!(
                "<a href=\"http://site{}.example/p{}\">{}</a>",
                rng.gen_range(0..1000u32),
                rng.gen_range(0..100_000u32),
                vocab.sample(&mut rng)
            ));
        }
        page.push_str("</body></html>");
        bytes += page.len() as u64;
        id += 1;
        let _ = id;
        pages.push(page);
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_hit_byte_target() {
        let docs = documents(1, Scale::bytes(64 << 10), 100);
        // Separators count toward the byte target, so allow one byte per doc.
        let total: usize = docs.iter().map(|d| d.len() + 1).sum();
        assert!(total >= 64 << 10);
        assert!(total < (64 << 10) * 2, "should not wildly overshoot");
    }

    #[test]
    fn documents_are_deterministic() {
        let a = documents(7, Scale::bytes(8 << 10), 50);
        let b = documents(7, Scale::bytes(8 << 10), 50);
        assert_eq!(a, b);
        let c = documents(8, Scale::bytes(8 << 10), 50);
        assert_ne!(a, c);
    }

    #[test]
    fn vocabulary_is_zipfian() {
        let vocab = Vocabulary::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            let w = vocab.sample(&mut rng);
            let rank: usize = w[1..].parse().unwrap();
            counts[rank] += 1;
        }
        assert!(counts[0] > counts[100] && counts[100] > 0);
    }

    #[test]
    fn labeled_docs_have_class_signal() {
        let docs = labeled_documents(5, Scale::bytes(32 << 10), 3, 60);
        assert!(docs.iter().any(|d| d.label == 0));
        assert!(docs.iter().any(|d| d.label == 2));
        // Class-0 docs contain c0-prefixed topical words.
        let d0 = docs.iter().find(|d| d.label == 0).unwrap();
        assert!(d0.text.split(' ').any(|w| w.starts_with("c0")));
    }

    #[test]
    #[should_panic]
    fn labeled_docs_require_classes() {
        labeled_documents(1, Scale::tiny(), 0, 10);
    }

    #[test]
    fn html_pages_are_html() {
        let pages = html_pages(2, Scale::bytes(16 << 10));
        assert!(!pages.is_empty());
        for p in &pages {
            assert!(p.starts_with("<html>"));
            assert!(p.ends_with("</body></html>"));
        }
        assert!(pages.iter().any(|p| p.contains("<a href=")));
    }
}
