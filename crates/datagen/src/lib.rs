//! # dc-datagen — deterministic workload-input generators
//!
//! The paper runs its eleven data-analysis workloads on 147-187 GB
//! production-scale inputs (Table I). This crate generates scaled-down
//! synthetic equivalents with the same statistical structure, so the
//! algorithms in `dc-analytics` exercise the same code paths:
//!
//! * [`text`] — Zipf-distributed word corpora (Sort/WordCount/Grep
//!   documents, Naive Bayes labeled text) and HTML pages (SVM/HMM
//!   inputs);
//! * [`vectors`] — Gaussian-mixture feature vectors (K-means /
//!   Fuzzy K-means);
//! * [`ratings`] — user-item rating triples (IBCF);
//! * [`graph`] — preferential-attachment web graphs (PageRank);
//! * [`tables`] — `rankings` / `uservisits` relational tables
//!   (Hive-bench).
//!
//! Every generator takes a seed and a [`Scale`] so experiments are
//! reproducible and the input-size knob is explicit (EXPERIMENTS.md
//! records the scale used for each reproduced figure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod ratings;
pub mod tables;
pub mod text;
pub mod vectors;

/// Input-size knob, expressed as a fraction of the paper's inputs.
///
/// `Scale::tiny()` (test-sized) through `Scale::paper()` (the 147-187 GB
/// originals, not materializable here but representable for
/// bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Target bytes of generated input.
    pub bytes: u64,
}

impl Scale {
    /// Test-sized inputs (~256 KiB).
    pub fn tiny() -> Self {
        Scale { bytes: 256 << 10 }
    }

    /// Example/bench-sized inputs (~8 MiB).
    pub fn small() -> Self {
        Scale { bytes: 8 << 20 }
    }

    /// Larger experiment inputs (~64 MiB).
    pub fn medium() -> Self {
        Scale { bytes: 64 << 20 }
    }

    /// The paper's input size for a given Table I row (GB → bytes);
    /// used for bookkeeping/reporting, not for materialization.
    pub fn paper_gb(gb: u64) -> Self {
        Scale { bytes: gb << 30 }
    }

    /// A custom byte size.
    pub fn bytes(bytes: u64) -> Self {
        Scale { bytes }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().bytes < Scale::small().bytes);
        assert!(Scale::small().bytes < Scale::medium().bytes);
        assert_eq!(Scale::paper_gb(150).bytes, 150 << 30);
        assert_eq!(Scale::bytes(42).bytes, 42);
    }
}
