//! Feature vectors for clustering: Gaussian mixtures with known centers.

use crate::Scale;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated clustering dataset.
#[derive(Debug, Clone)]
pub struct VectorSet {
    /// The points, row-major.
    pub points: Vec<Vec<f64>>,
    /// The true generating centers (for quality checks).
    pub true_centers: Vec<Vec<f64>>,
    /// Ground-truth cluster assignment per point.
    pub assignments: Vec<usize>,
}

/// Generate ~`scale.bytes` worth of `dim`-dimensional points drawn from
/// `k` well-separated Gaussians.
///
/// # Panics
/// Panics if `k == 0` or `dim == 0`.
pub fn gaussian_mixture(seed: u64, scale: Scale, k: usize, dim: usize) -> VectorSet {
    assert!(k > 0 && dim > 0, "need positive k and dim");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (scale.bytes / (dim as u64 * 8)).max(k as u64) as usize;

    // Well-separated centers on a coarse grid, jittered.
    let mut true_centers = Vec::with_capacity(k);
    for c in 0..k {
        let center: Vec<f64> = (0..dim)
            .map(|d| (c as f64 * 10.0) + (d as f64 * 0.1) + rng.gen_range(-0.5..0.5))
            .collect();
        true_centers.push(center);
    }

    let normal = rand::distributions::Uniform::new(-1.0, 1.0);
    let mut points = Vec::with_capacity(n);
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..k);
        let point: Vec<f64> = true_centers[c]
            .iter()
            .map(|&m| {
                // Sum of three uniforms ≈ bell-shaped noise, σ≈1.
                let noise: f64 = (0..3).map(|_| normal.sample(&mut rng)).sum::<f64>() / 1.5;
                m + noise
            })
            .collect();
        points.push(point);
        assignments.push(c);
    }
    VectorSet {
        points,
        true_centers,
        assignments,
    }
}

/// Generate labeled feature vectors for binary classification (SVM):
/// two classes separated by a known hyperplane with margin noise.
pub fn linearly_separable(
    seed: u64,
    scale: Scale,
    dim: usize,
    noise: f64,
) -> (Vec<(Vec<f64>, f64)>, Vec<f64>) {
    assert!(dim > 0, "need positive dim");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (scale.bytes / (dim as u64 * 8)).max(8) as usize;
    // True weight vector.
    let w: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let score: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        let flip = rng.gen_bool(noise.clamp(0.0, 0.49));
        let y = if (score >= 0.0) != flip { 1.0 } else { -1.0 };
        data.push((x, y));
    }
    (data, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_shape() {
        let set = gaussian_mixture(1, Scale::bytes(64 << 10), 4, 8);
        assert_eq!(set.true_centers.len(), 4);
        assert_eq!(set.points.len(), set.assignments.len());
        assert!(set.points.len() >= 1000);
        assert!(set.points.iter().all(|p| p.len() == 8));
    }

    #[test]
    fn mixture_clusters_are_separated() {
        let set = gaussian_mixture(2, Scale::bytes(64 << 10), 3, 4);
        // A point should be closer to its own center than to others,
        // overwhelmingly.
        let dist =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum() };
        let mut correct = 0;
        for (p, &a) in set.points.iter().zip(&set.assignments) {
            let own = dist(p, &set.true_centers[a]);
            if set
                .true_centers
                .iter()
                .enumerate()
                .all(|(i, c)| i == a || dist(p, c) >= own)
            {
                correct += 1;
            }
        }
        let frac = correct as f64 / set.points.len() as f64;
        assert!(frac > 0.95, "separation too weak: {frac}");
    }

    #[test]
    fn mixture_is_deterministic() {
        let a = gaussian_mixture(9, Scale::tiny(), 2, 4);
        let b = gaussian_mixture(9, Scale::tiny(), 2, 4);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn separable_labels_match_plane() {
        let (data, w) = linearly_separable(3, Scale::bytes(32 << 10), 6, 0.0);
        for (x, y) in &data {
            let score: f64 = w.iter().zip(x).map(|(a, b)| a * b).sum();
            assert_eq!(*y > 0.0, score >= 0.0);
        }
    }

    #[test]
    fn separable_noise_flips_some() {
        let (data, w) = linearly_separable(3, Scale::bytes(32 << 10), 6, 0.2);
        let flipped = data
            .iter()
            .filter(|(x, y)| {
                let score: f64 = w.iter().zip(x).map(|(a, b)| a * b).sum();
                (*y > 0.0) != (score >= 0.0)
            })
            .count();
        let frac = flipped as f64 / data.len() as f64;
        assert!((frac - 0.2).abs() < 0.06, "flip fraction {frac}");
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        gaussian_mixture(1, Scale::tiny(), 0, 4);
    }
}
