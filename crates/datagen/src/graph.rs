//! Web-graph generation for PageRank: preferential attachment.
//!
//! Real web graphs have heavy-tailed in-degree; preferential attachment
//! (Barabási–Albert style) reproduces that, which is what makes
//! PageRank's mass concentrate the way the paper's "web page" input
//! would.

use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph in adjacency-list form.
#[derive(Debug, Clone)]
pub struct WebGraph {
    /// `out_links[u]` = pages that `u` links to.
    pub out_links: Vec<Vec<u32>>,
}

impl WebGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out_links.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.out_links.iter().map(|l| l.len()).sum()
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes()];
        for links in &self.out_links {
            for &v in links {
                deg[v as usize] += 1;
            }
        }
        deg
    }
}

/// Generate a preferential-attachment web graph sized to `scale`
/// (~16 bytes per edge), with `links_per_page` out-links per new page.
pub fn web_graph(seed: u64, scale: Scale, links_per_page: usize) -> WebGraph {
    assert!(links_per_page > 0, "pages must link somewhere");
    let mut rng = StdRng::seed_from_u64(seed);
    let edges_target = (scale.bytes / 16).max(8) as usize;
    let n = (edges_target / links_per_page).max(links_per_page + 2);

    let mut out_links: Vec<Vec<u32>> = Vec::with_capacity(n);
    // Target pool: endpoints repeated by in-degree (preferential
    // attachment by sampling the pool).
    let mut pool: Vec<u32> = Vec::with_capacity(edges_target * 2);

    // Seed clique.
    let seed_nodes = links_per_page + 1;
    for u in 0..seed_nodes {
        let links: Vec<u32> = (0..seed_nodes)
            .filter(|&v| v != u)
            .map(|v| v as u32)
            .collect();
        for &v in &links {
            pool.push(v);
        }
        out_links.push(links);
    }

    for u in seed_nodes..n {
        let mut links = Vec::with_capacity(links_per_page);
        for _ in 0..links_per_page {
            // 85 % preferential, 15 % uniform (mirrors random surfing).
            let v = if rng.gen_bool(0.85) && !pool.is_empty() {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..u) as u32
            };
            links.push(v);
            pool.push(v);
        }
        out_links.push(links);
        let _ = u;
    }
    WebGraph { out_links }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_size_tracks_scale() {
        let g = web_graph(1, Scale::bytes(64 << 10), 8);
        assert!(g.num_edges() >= 3000, "edges={}", g.num_edges());
        assert!(g.num_nodes() > 100);
    }

    #[test]
    fn edges_point_to_valid_nodes() {
        let g = web_graph(2, Scale::bytes(16 << 10), 5);
        let n = g.num_nodes() as u32;
        for links in &g.out_links {
            for &v in links {
                assert!(v < n);
            }
        }
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = web_graph(3, Scale::bytes(256 << 10), 6);
        let mut deg = g.in_degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: u32 = deg.iter().take(deg.len() / 100 + 1).sum();
        let total: u32 = deg.iter().sum();
        assert!(
            f64::from(top_share) / f64::from(total) > 0.05,
            "top 1% of pages should hold a disproportionate share of links"
        );
        assert!(deg[0] > deg[deg.len() / 2] * 10, "hub pages should exist");
    }

    #[test]
    fn deterministic() {
        let a = web_graph(4, Scale::tiny(), 4);
        let b = web_graph(4, Scale::tiny(), 4);
        assert_eq!(a.out_links, b.out_links);
    }
}
