//! User-item rating data for collaborative filtering (IBCF).
//!
//! Ratings follow the structure CF algorithms rely on: users belong to
//! latent taste groups, items belong to latent genres, and a user's
//! rating is high when tastes match genres — so item-item similarity is
//! recoverable by the algorithm.

use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One rating triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User id.
    pub user: u32,
    /// Item id.
    pub item: u32,
    /// Rating value in `[1, 5]`.
    pub value: f32,
}

impl dc_mapreduce::ByteSize for Rating {
    fn byte_size(&self) -> usize {
        12
    }
}

/// A generated ratings dataset.
#[derive(Debug, Clone)]
pub struct RatingSet {
    /// All rating triples.
    pub ratings: Vec<Rating>,
    /// Number of distinct users.
    pub num_users: u32,
    /// Number of distinct items.
    pub num_items: u32,
    /// Latent genre of each item (for quality checks).
    pub item_genre: Vec<u8>,
}

/// Generate roughly `scale.bytes / 12` ratings over a latent-factor
/// structure with `genres` taste groups.
pub fn ratings(seed: u64, scale: Scale, genres: u8) -> RatingSet {
    assert!(genres > 0, "need at least one genre");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (scale.bytes / 12).max(16) as usize;
    let num_users = ((n as f64).sqrt() as u32).max(4);
    let num_items = (num_users / 2).max(4);

    let item_genre: Vec<u8> = (0..num_items).map(|_| rng.gen_range(0..genres)).collect();
    let user_taste: Vec<u8> = (0..num_users).map(|_| rng.gen_range(0..genres)).collect();

    let mut ratings = Vec::with_capacity(n);
    for _ in 0..n {
        let user = rng.gen_range(0..num_users);
        let item = rng.gen_range(0..num_items);
        let base = if user_taste[user as usize] == item_genre[item as usize] {
            4.2
        } else {
            2.2
        };
        let value = (base + rng.gen_range(-0.8..0.8f32)).clamp(1.0, 5.0);
        ratings.push(Rating { user, item, value });
    }
    RatingSet {
        ratings,
        num_users,
        num_items,
        item_genre,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_ranges() {
        let set = ratings(1, Scale::bytes(64 << 10), 4);
        assert!(!set.ratings.is_empty());
        for r in &set.ratings {
            assert!(r.user < set.num_users);
            assert!(r.item < set.num_items);
            assert!((1.0..=5.0).contains(&r.value));
        }
        assert_eq!(set.item_genre.len(), set.num_items as usize);
    }

    #[test]
    fn same_genre_items_rated_similarly() {
        let set = ratings(2, Scale::bytes(256 << 10), 3);
        // Average rating of matching-taste pairs should exceed mismatches.
        let mut hi = (0.0, 0u32);
        let mut lo = (0.0, 0u32);
        for r in &set.ratings {
            if r.value >= 3.5 {
                hi = (hi.0 + f64::from(r.value), hi.1 + 1);
            } else {
                lo = (lo.0 + f64::from(r.value), lo.1 + 1);
            }
        }
        assert!(hi.1 > 0 && lo.1 > 0, "both rating modes should appear");
        assert!(hi.0 / f64::from(hi.1) > lo.0 / f64::from(lo.1) + 1.0);
    }

    #[test]
    fn deterministic() {
        let a = ratings(5, Scale::tiny(), 4);
        let b = ratings(5, Scale::tiny(), 4);
        assert_eq!(a.ratings, b.ratings);
    }

    #[test]
    #[should_panic]
    fn zero_genres_panics() {
        ratings(1, Scale::tiny(), 0);
    }
}
