//! Relational tables for the data-warehouse workload (Hive-bench).
//!
//! Hive-bench (HIVE-396) queries two tables: `rankings` (pageURL,
//! pageRank, avgDuration) and `uservisits` (sourceIP, destURL, visitDate,
//! adRevenue, …). These generators produce both with realistic skew so
//! the benchmark's scan / aggregation / join queries behave like the
//! original.

use crate::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of the `rankings` table.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingRow {
    /// Page URL (join key with `uservisits.dest_url`).
    pub page_url: String,
    /// Integer page rank.
    pub page_rank: u32,
    /// Average visit duration in seconds.
    pub avg_duration: u32,
}

impl dc_mapreduce::ByteSize for RankingRow {
    fn byte_size(&self) -> usize {
        self.page_url.len() + 4 + 8
    }
}

/// One row of the `uservisits` table.
#[derive(Debug, Clone, PartialEq)]
pub struct UserVisitRow {
    /// Visitor source IP.
    pub source_ip: String,
    /// Visited URL (join key with `rankings.page_url`).
    pub dest_url: String,
    /// Visit date as days since epoch.
    pub visit_date: u32,
    /// Ad revenue attributed to the visit.
    pub ad_revenue: f64,
    /// Browser user agent id.
    pub user_agent: u16,
    /// Country code id.
    pub country: u16,
}

impl dc_mapreduce::ByteSize for UserVisitRow {
    fn byte_size(&self) -> usize {
        self.source_ip.len() + self.dest_url.len() + 8 + 4 + 8 + 2 + 2
    }
}

/// The generated warehouse.
#[derive(Debug, Clone)]
pub struct Warehouse {
    /// `rankings` table.
    pub rankings: Vec<RankingRow>,
    /// `uservisits` table.
    pub uservisits: Vec<UserVisitRow>,
}

/// Generate both tables at the given scale (~100 bytes/visit row;
/// rankings sized at ~1/10 of visits).
pub fn warehouse(seed: u64, scale: Scale) -> Warehouse {
    let mut rng = StdRng::seed_from_u64(seed);
    let visits = (scale.bytes / 100).max(16) as usize;
    let pages = (visits / 10).max(4);

    let rankings: Vec<RankingRow> = (0..pages)
        .map(|i| RankingRow {
            page_url: format!("url{i:08}"),
            // Zipf-flavoured page rank: early pages rank high.
            page_rank: (1_000_000 / (i as u32 + 1)).max(1),
            avg_duration: rng.gen_range(1..120),
        })
        .collect();

    let uservisits: Vec<UserVisitRow> = (0..visits)
        .map(|_| {
            // Visits skew toward popular (low-index) pages.
            let r: f64 = rng.gen::<f64>();
            let page = ((r * r) * pages as f64) as usize % pages;
            UserVisitRow {
                source_ip: format!(
                    "{}.{}.{}.{}",
                    rng.gen_range(1..255u8),
                    rng.gen_range(0..255u8),
                    rng.gen_range(0..255u8),
                    rng.gen_range(1..255u8)
                ),
                dest_url: format!("url{page:08}"),
                visit_date: rng.gen_range(14_000..15_000),
                ad_revenue: rng.gen_range(0.01..3.0),
                user_agent: rng.gen_range(0..64),
                country: rng.gen_range(0..200),
            }
        })
        .collect();

    Warehouse {
        rankings,
        uservisits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tables_are_sized_and_linked() {
        let w = warehouse(1, Scale::bytes(64 << 10));
        assert!(w.uservisits.len() >= 500);
        assert!(w.rankings.len() >= w.uservisits.len() / 20);
        let urls: HashSet<&str> = w.rankings.iter().map(|r| r.page_url.as_str()).collect();
        // Every visit's destination exists in rankings (foreign key).
        for v in &w.uservisits {
            assert!(urls.contains(v.dest_url.as_str()), "{}", v.dest_url);
        }
    }

    #[test]
    fn visits_skew_to_popular_pages() {
        let w = warehouse(2, Scale::bytes(128 << 10));
        let top_url = "url00000000";
        let top_visits = w
            .uservisits
            .iter()
            .filter(|v| v.dest_url == top_url)
            .count();
        let expected_uniform = w.uservisits.len() / w.rankings.len();
        assert!(
            top_visits > expected_uniform,
            "popular pages should get more than a uniform share"
        );
    }

    #[test]
    fn revenue_and_dates_in_range() {
        let w = warehouse(3, Scale::tiny());
        for v in &w.uservisits {
            assert!((0.01..3.0).contains(&v.ad_revenue));
            assert!((14_000..15_000).contains(&v.visit_date));
        }
    }

    #[test]
    fn deterministic() {
        let a = warehouse(4, Scale::tiny());
        let b = warehouse(4, Scale::tiny());
        assert_eq!(a.rankings, b.rankings);
        assert_eq!(a.uservisits, b.uservisits);
    }
}
