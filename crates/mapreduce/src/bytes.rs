//! Byte-size estimation for I/O accounting.
//!
//! Hadoop's counters (map output bytes, shuffle bytes, …) are central to
//! the paper's Figure 5 and to scaling the cluster model; [`ByteSize`]
//! lets the engine estimate serialized record sizes without actually
//! serializing.

/// Estimated serialized size of a record, in bytes.
pub trait ByteSize {
    /// Serialized size estimate.
    fn byte_size(&self) -> usize;
}

macro_rules! impl_fixed {
    ($($t:ty),*) => {
        $(impl ByteSize for $t {
            fn byte_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_fixed!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl ByteSize for String {
    fn byte_size(&self) -> usize {
        self.len() + 4 // length prefix
    }
}

impl ByteSize for &str {
    fn byte_size(&self) -> usize {
        self.len() + 4
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<A: ByteSize, B: ByteSize> ByteSize for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: ByteSize, B: ByteSize, C: ByteSize> ByteSize for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(1u8.byte_size(), 1);
        assert_eq!(1u64.byte_size(), 8);
        assert_eq!(1.0f64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
    }

    #[test]
    fn strings_count_length_prefix() {
        assert_eq!("abc".byte_size(), 7);
        assert_eq!(String::from("abcd").byte_size(), 8);
    }

    #[test]
    fn collections_sum() {
        assert_eq!(vec![1u32, 2, 3].byte_size(), 4 + 12);
        assert_eq!((1u32, "ab").byte_size(), 4 + 6);
        assert_eq!((1u8, 2u8, 3u8).byte_size(), 3);
        assert_eq!(Some(5u64).byte_size(), 9);
        assert_eq!(None::<u64>.byte_size(), 1);
    }
}
