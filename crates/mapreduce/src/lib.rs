//! # dc-mapreduce — the MapReduce substrate
//!
//! The paper's eleven data-analysis workloads run on Hadoop 1.0.2 over a
//! 5-node cluster (one master, four slaves; 24 map and 12 reduce slots
//! per slave; 1 GbE). This crate provides both halves of that substrate:
//!
//! * [`engine`] — a real multi-threaded local MapReduce engine:
//!   input splits → map tasks → partition/sort/combine/spill → shuffle →
//!   merge → reduce tasks, with byte-accurate I/O accounting
//!   ([`engine::JobStats`]). The algorithms in `dc-analytics` execute on
//!   this engine for real.
//! * [`cluster`] — a discrete-event model of the multi-node Hadoop
//!   cluster (slot waves, disk and NIC bandwidth sharing, job setup
//!   overhead, shuffle/compute overlap, node failure and recovery).
//!   Per-task costs are derived from *measured* local-engine statistics
//!   via [`cluster::JobModel::scaled_from`], and the model regenerates
//!   the paper's Figure 2 (speed-up on 1/4/8 slaves) and Figure 5 (disk
//!   writes per second).
//! * [`faults`] — seeded, deterministic fault injection (task panics,
//!   stragglers, transient I/O errors) exercising the engine's
//!   Hadoop-style task-attempt recovery: retries with backoff,
//!   speculative execution, and exactly-once output commit.
//! * [`pool`] — the std-only scoped worker-pool primitives underneath
//!   the engine (closeable SPMC queue + deterministic `parallel_map`),
//!   shared with the `dcbench` characterization pipeline.
//!
//! Both halves are observable through `dc-obs`: [`engine::run_job_observed`]
//! emits a live task-attempt timeline (wall-clock millisecond
//! timestamps), and [`cluster::simulate_with_failures_observed`] emits
//! the deterministic phase/failure timeline of the cluster replay
//! (simulated-millisecond timestamps).
//!
//! ```
//! use dc_mapreduce::engine::{run_job, JobConfig};
//!
//! // Word count over two lines.
//! let inputs = vec!["a b a".to_string(), "b b".to_string()];
//! let (mut out, stats) = run_job(
//!     inputs,
//!     &JobConfig::default(),
//!     |line, emit| {
//!         for w in line.split(' ') {
//!             emit(w.to_string(), 1u64);
//!         }
//!     },
//!     Some(&|_k: &String, vs: &[u64]| vec![vs.iter().sum::<u64>()]),
//!     |k, vs| vec![(k.clone(), vs.iter().sum::<u64>())],
//! )
//! .expect("no task exhausted its attempts");
//! out.sort();
//! assert_eq!(out, vec![("a".into(), 2), ("b".into(), 3)]);
//! assert!(stats.map_output_records >= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod cluster;
pub mod engine;
pub mod faults;
pub mod pool;

pub use bytes::ByteSize;
pub use cluster::{
    simulate_with_failures_observed, ClusterConfig, ClusterRun, FailureModel, JobModel, NodeFailure,
};
pub use engine::{run_job, run_job_observed, run_job_with_faults, JobConfig, JobError, JobStats};
pub use faults::{ChaosSpec, Fault, FaultPlan, TaskKind};
pub use pool::{parallel_map, SpmcQueue};
