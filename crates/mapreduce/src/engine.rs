//! The local multi-threaded MapReduce engine.
//!
//! Executes real jobs through the full Hadoop-shaped dataflow:
//!
//! ```text
//! inputs → splits → [map task attempts] → partition → sort → combine → spill
//!        → shuffle → [reduce task attempts: merge → group → reduce] → output
//! ```
//!
//! Map and reduce tasks run on bounded worker pools (the paper's nodes
//! are configured with 24 map and 12 reduce slots), and every stage
//! accounts records and bytes into [`JobStats`] — those measured counters
//! are what the cluster model scales up from.
//!
//! # Fault tolerance
//!
//! Like the Hadoop 1.0.2 runtime the paper measured, execution is
//! organised around **task attempts**:
//!
//! * every attempt runs under [`std::panic::catch_unwind`], so a
//!   panicking mapper or reducer is contained to that attempt;
//! * failed attempts are retried with capped exponential backoff, up to
//!   [`JobConfig::max_attempts`] per task (Hadoop's
//!   `mapred.map.max.attempts`); an exhausted task fails the job with a
//!   [`JobError`] instead of panicking the process;
//! * straggler tasks trigger **speculative execution**: a duplicate
//!   attempt is launched, the first finisher's output is committed
//!   exactly once, and the loser is condemned and counted
//!   ([`JobStats::killed_attempts`]);
//! * a seeded [`FaultPlan`](crate::faults::FaultPlan) can inject panics,
//!   slowdowns, and transient I/O errors per attempt —
//!   deterministically, for reproducible chaos runs (see
//!   [`run_job_with_faults`]).
//!
//! Attempt outputs are buffered privately and merged into the job in
//! task order only on first commit, so retries and speculation never
//! duplicate or reorder data: results are byte-identical to a
//! fault-free run.

use crate::bytes::ByteSize;
use crate::faults::{Fault, FaultPlan, TaskKind};
use crate::pool::SpmcQueue;
use dc_obs::{Recorder, Value};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Engine configuration (slot counts mirror Hadoop task slots).
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// Concurrent map tasks (Hadoop map slots).
    pub map_slots: usize,
    /// Concurrent reduce tasks (Hadoop reduce slots).
    pub reduce_slots: usize,
    /// Number of map tasks (input splits); 0 = `4 × map_slots`.
    pub map_tasks: usize,
    /// Number of reduce tasks (partitions); 0 = `reduce_slots`.
    pub reduce_tasks: usize,
    /// In-memory sort buffer per map task; output beyond this spills in
    /// additional passes (Hadoop's `io.sort.mb`).
    pub sort_buffer_bytes: usize,
    /// Attempts per task before the job fails (Hadoop's
    /// `mapred.map.max.attempts` / `mapred.reduce.max.attempts`).
    pub max_attempts: u32,
    /// Base delay before re-dispatching a failed attempt; doubles per
    /// failure of the same task.
    pub retry_backoff_ms: u64,
    /// Ceiling on the per-task retry backoff.
    pub retry_backoff_cap_ms: u64,
    /// Enable speculative execution of stragglers (Hadoop's
    /// `mapred.map.tasks.speculative.execution`).
    pub speculative: bool,
    /// A running attempt becomes a speculation candidate only after
    /// this long *and* after exceeding twice the mean committed-attempt
    /// duration. The default is far above local-test task times, so
    /// speculation engages only on genuine stragglers.
    pub speculative_lag_ms: u64,
    /// Deterministic fault-injection plan applied to every job run with
    /// this config. [`run_job_with_faults`]'s explicit plan, when given,
    /// takes precedence.
    pub faults: Option<FaultPlan>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            map_slots: 4,
            reduce_slots: 2,
            map_tasks: 0,
            reduce_tasks: 0,
            sort_buffer_bytes: 4 << 20,
            max_attempts: 4,
            retry_backoff_ms: 1,
            retry_backoff_cap_ms: 50,
            speculative: true,
            speculative_lag_ms: 400,
            faults: None,
        }
    }
}

impl JobConfig {
    /// The per-node slot configuration from the paper's Section III
    /// (24 map slots, 12 reduce slots), scaled down by `divisor` so it
    /// is runnable on a workstation.
    pub fn hadoop_node(divisor: usize) -> Self {
        let d = divisor.max(1);
        JobConfig {
            map_slots: (24 / d).max(1),
            reduce_slots: (12 / d).max(1),
            ..JobConfig::default()
        }
    }

    fn effective_map_tasks(&self, inputs: usize) -> usize {
        let t = if self.map_tasks == 0 {
            self.map_slots.max(1) * 4
        } else {
            self.map_tasks
        };
        t.clamp(1, inputs.max(1))
    }

    fn effective_reduce_tasks(&self) -> usize {
        if self.reduce_tasks == 0 {
            self.reduce_slots.max(1)
        } else {
            self.reduce_tasks
        }
    }

    fn backoff_for(&self, failures: u32) -> Duration {
        let shift = failures.saturating_sub(1).min(16);
        let ms = self
            .retry_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.retry_backoff_cap_ms);
        Duration::from_millis(ms)
    }
}

/// A job-fatal failure: some task exhausted all its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// One task failed `attempts` times and the job gave up on it.
    TaskExhausted {
        /// Phase of the failing task.
        kind: TaskKind,
        /// Task index within the phase.
        task: usize,
        /// Attempts consumed (== `JobConfig::max_attempts`).
        attempts: u32,
        /// Error text of the final failed attempt.
        last_error: String,
    },
    /// The engine lost its workers mid-phase (should not happen; kept
    /// so the scheduler never has to panic).
    Internal(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::TaskExhausted {
                kind,
                task,
                attempts,
                last_error,
            } => write!(
                f,
                "{kind} task {task} failed {attempts} attempts; last error: {last_error}"
            ),
            JobError::Internal(msg) => write!(f, "engine internal error: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Measured counters for one job run (the Hadoop counter set the paper's
/// methodology relies on).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobStats {
    /// Input records consumed by map tasks.
    pub map_input_records: u64,
    /// Input bytes consumed by map tasks.
    pub map_input_bytes: u64,
    /// Records emitted by map functions.
    pub map_output_records: u64,
    /// Bytes emitted by map functions.
    pub map_output_bytes: u64,
    /// Records after the combiner (equals map output when no combiner).
    pub combine_output_records: u64,
    /// Bytes spilled to local disk by map tasks (post-combine).
    pub spilled_bytes: u64,
    /// Bytes moved in the shuffle.
    pub shuffle_bytes: u64,
    /// Records consumed by reduce tasks after the merge (Hadoop's
    /// "Reduce input records"): every shuffled record, counted once.
    pub reduce_input_records: u64,
    /// Bytes consumed by reduce tasks: key + value size of every merged
    /// record (keys of a group counted per record, unlike the grouped
    /// output accounting).
    pub reduce_input_bytes: u64,
    /// Records produced by reduce tasks.
    pub reduce_output_records: u64,
    /// Bytes produced by reduce tasks.
    pub reduce_output_bytes: u64,
    /// Wall-clock milliseconds in the map phase.
    pub map_ms: u64,
    /// Wall-clock milliseconds in the reduce phase (incl. shuffle).
    pub reduce_ms: u64,
    /// Map tasks executed.
    pub map_tasks: u64,
    /// Reduce tasks executed.
    pub reduce_tasks: u64,
    /// Task attempts that failed (panic or transient error) and were
    /// retried or exhausted.
    pub failed_attempts: u64,
    /// Duplicate attempts launched against stragglers.
    pub speculative_attempts: u64,
    /// Attempts condemned because another attempt of the same task
    /// committed first.
    pub killed_attempts: u64,
    /// Input bytes of work whose attempt output was discarded (failed
    /// or killed attempts): the re-execution cost of fault tolerance.
    pub reexecuted_bytes: u64,
}

impl JobStats {
    /// Total wall-clock milliseconds.
    pub fn total_ms(&self) -> u64 {
        self.map_ms + self.reduce_ms
    }

    /// Total bytes written to local disk (spills + final output): the
    /// quantity behind Figure 5.
    pub fn disk_write_bytes(&self) -> u64 {
        self.spilled_bytes + self.reduce_output_bytes
    }

    /// This stats block with wall-clock timings zeroed: every counter
    /// that is a deterministic function of (inputs, config, fault
    /// plan). Two runs with the same seed compare equal on this.
    pub fn without_timings(&self) -> JobStats {
        JobStats {
            map_ms: 0,
            reduce_ms: 0,
            ..*self
        }
    }

    /// This stats block reduced to pure dataflow counters: timings and
    /// fault-recovery counters zeroed. A fault-injected run whose
    /// failures stay under `max_attempts` matches the fault-free run on
    /// this — the engine's exactly-once guarantee.
    pub fn data_counters(&self) -> JobStats {
        JobStats {
            map_ms: 0,
            reduce_ms: 0,
            failed_attempts: 0,
            speculative_attempts: 0,
            killed_attempts: 0,
            reexecuted_bytes: 0,
            ..*self
        }
    }

    /// Merge counters from consecutive jobs of an iterative algorithm.
    pub fn accumulate(&mut self, other: &JobStats) {
        self.map_input_records += other.map_input_records;
        self.map_input_bytes += other.map_input_bytes;
        self.map_output_records += other.map_output_records;
        self.map_output_bytes += other.map_output_bytes;
        self.combine_output_records += other.combine_output_records;
        self.spilled_bytes += other.spilled_bytes;
        self.shuffle_bytes += other.shuffle_bytes;
        self.reduce_input_records += other.reduce_input_records;
        self.reduce_input_bytes += other.reduce_input_bytes;
        self.reduce_output_records += other.reduce_output_records;
        self.reduce_output_bytes += other.reduce_output_bytes;
        self.map_ms += other.map_ms;
        self.reduce_ms += other.reduce_ms;
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
        self.failed_attempts += other.failed_attempts;
        self.speculative_attempts += other.speculative_attempts;
        self.killed_attempts += other.killed_attempts;
        self.reexecuted_bytes += other.reexecuted_bytes;
    }
}

/// Map-side combiner signature: fold a key's values into fewer values.
pub type Combiner<'a, K, V> = &'a (dyn Fn(&K, &[V]) -> Vec<V> + Sync);

fn partition_of<K: Hash>(key: &K, parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// One dispatched execution of one task.
#[derive(Debug, Clone, Copy)]
struct AttemptSpec {
    task: usize,
    attempt: u32,
}

/// What a worker reports back to the scheduler.
struct AttemptReport<T> {
    task: usize,
    attempt: u32,
    outcome: Result<T, String>,
}

/// Fault-recovery counters accumulated by one phase's scheduler.
#[derive(Debug, Clone, Copy, Default)]
struct FaultCounters {
    failed_attempts: u64,
    speculative_attempts: u64,
    killed_attempts: u64,
    reexecuted_bytes: u64,
}

/// Per-task scheduler bookkeeping.
struct TaskState {
    committed: bool,
    failures: u32,
    /// Attempt numbers currently dispatched and not yet reported.
    in_flight: Vec<u32>,
    next_attempt: u32,
    speculated: bool,
    dispatched_at: Instant,
    last_error: String,
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked with a non-string payload".to_string()
    }
}

/// Run one attempt: consult the fault plan, contain panics.
fn execute_attempt<T, W>(
    kind: TaskKind,
    spec: AttemptSpec,
    faults: Option<&FaultPlan>,
    work: &W,
) -> Result<T, String>
where
    W: Fn(usize) -> T + Sync,
{
    let injected = faults.and_then(|plan| plan.fault_for(kind, spec.task, spec.attempt));
    if let Some(Fault::IoError) = injected {
        // A transient error path (failed spill / shuffle fetch): the
        // attempt fails cleanly, without unwinding.
        return Err(format!(
            "injected transient I/O error ({kind} task {} attempt {})",
            spec.task, spec.attempt
        ));
    }
    catch_unwind(AssertUnwindSafe(|| {
        match injected {
            Some(Fault::Panic) => panic!(
                "injected fault: {kind} task {} attempt {} panicked",
                spec.task, spec.attempt
            ),
            Some(Fault::SlowdownMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
        work(spec.task)
    }))
    .map_err(|payload| panic_text(payload.as_ref()))
}

/// Execute `num_tasks` tasks of one phase on `slots` workers with
/// retries, backoff, and speculative execution. Returns committed
/// outputs in task order — exactly one per task.
///
/// Every attempt transition is emitted through `recorder` as a span
/// event (`attempt_start` / `attempt_end` with an `outcome` field, plus
/// `attempt_retry` and `speculative_launch` markers). Timestamps are
/// milliseconds since `epoch` — job-relative wall-clock time, the one
/// explicitly non-deterministic domain in the stack.
#[allow(clippy::too_many_arguments)]
fn run_phase<T, W>(
    kind: TaskKind,
    num_tasks: usize,
    slots: usize,
    cfg: &JobConfig,
    faults: Option<&FaultPlan>,
    task_bytes: &[u64],
    recorder: &Recorder,
    epoch: Instant,
    work: W,
) -> Result<(Vec<T>, FaultCounters), JobError>
where
    T: Send,
    W: Fn(usize) -> T + Sync,
{
    if num_tasks == 0 {
        return Ok((Vec::new(), FaultCounters::default()));
    }

    let phase_name = match kind {
        TaskKind::Map => "map",
        TaskKind::Reduce => "reduce",
    };
    let now_ms = move || epoch.elapsed().as_millis() as u64;
    let attempt_event =
        |event_kind: &'static str, task: usize, attempt: u32, outcome: Option<&'static str>| {
            if !recorder.is_enabled() {
                return;
            }
            let mut fields = vec![
                ("phase", Value::str(phase_name)),
                ("task", Value::U64(task as u64)),
                ("attempt", Value::U64(u64::from(attempt))),
            ];
            if let Some(o) = outcome {
                fields.push(("outcome", Value::str(o)));
            }
            recorder.emit(now_ms(), event_kind, fields);
        };

    let queue = SpmcQueue::new();
    let (report_tx, report_rx) = mpsc::channel::<AttemptReport<T>>();

    let scope_result = std::thread::scope(|scope| {
        for _ in 0..slots.max(1).min(num_tasks) {
            let queue = &queue;
            let work = &work;
            let tx = report_tx.clone();
            scope.spawn(move || {
                while let Some(spec) = queue.pop() {
                    let outcome = execute_attempt(kind, spec, faults, work);
                    // The scheduler may have finished (e.g. a condemned
                    // speculative loser arriving late): drop silently.
                    if tx
                        .send(AttemptReport {
                            task: spec.task,
                            attempt: spec.attempt,
                            outcome,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(report_tx);

        // ---- Scheduler (runs on the caller thread) ----
        let mut tasks: Vec<TaskState> = (0..num_tasks)
            .map(|_| TaskState {
                committed: false,
                failures: 0,
                in_flight: Vec::new(),
                next_attempt: 0,
                speculated: false,
                dispatched_at: Instant::now(),
                last_error: String::new(),
            })
            .collect();
        let mut results: Vec<Option<T>> = (0..num_tasks).map(|_| None).collect();
        let mut counters = FaultCounters::default();
        let mut committed = 0usize;
        let mut retries: Vec<(Instant, AttemptSpec)> = Vec::new();
        let mut committed_ms: Vec<u64> = Vec::new();

        for (t, st) in tasks.iter_mut().enumerate() {
            st.dispatched_at = Instant::now();
            st.next_attempt = 1;
            st.in_flight.push(0);
            attempt_event("attempt_start", t, 0, None);
            queue.push(AttemptSpec {
                task: t,
                attempt: 0,
            });
        }

        let verdict = loop {
            if committed == num_tasks {
                break Ok(());
            }

            match report_rx.recv_timeout(Duration::from_millis(2)) {
                Ok(report) => {
                    let bytes = task_bytes.get(report.task).copied().unwrap_or(0);
                    let st = &mut tasks[report.task];
                    if let Some(p) = st.in_flight.iter().position(|a| *a == report.attempt) {
                        st.in_flight.swap_remove(p);
                    }
                    if st.committed {
                        // A condemned attempt finishing late; its kill
                        // was already accounted at commit time.
                        continue;
                    }
                    match report.outcome {
                        Ok(value) => {
                            results[report.task] = Some(value);
                            st.committed = true;
                            committed += 1;
                            committed_ms.push(st.dispatched_at.elapsed().as_millis() as u64);
                            attempt_event("attempt_end", report.task, report.attempt, Some("ok"));
                            // Condemn any attempt still in flight: its
                            // output will be discarded on arrival.
                            let condemned = std::mem::take(&mut st.in_flight);
                            counters.killed_attempts += condemned.len() as u64;
                            counters.reexecuted_bytes += bytes * condemned.len() as u64;
                            for a in condemned {
                                attempt_event("attempt_end", report.task, a, Some("killed"));
                            }
                        }
                        Err(message) => {
                            st.failures += 1;
                            st.last_error = message;
                            counters.failed_attempts += 1;
                            counters.reexecuted_bytes += bytes;
                            attempt_event(
                                "attempt_end",
                                report.task,
                                report.attempt,
                                Some("failed"),
                            );
                            if st.failures >= cfg.max_attempts {
                                break Err(JobError::TaskExhausted {
                                    kind,
                                    task: report.task,
                                    attempts: st.failures,
                                    last_error: std::mem::take(&mut st.last_error),
                                });
                            }
                            let backoff = cfg.backoff_for(st.failures);
                            let ready_at = Instant::now() + backoff;
                            let attempt = st.next_attempt;
                            st.next_attempt += 1;
                            if recorder.is_enabled() {
                                recorder.emit(
                                    now_ms(),
                                    "attempt_retry",
                                    vec![
                                        ("phase", Value::str(phase_name)),
                                        ("task", Value::U64(report.task as u64)),
                                        ("attempt", Value::U64(u64::from(attempt))),
                                        ("backoff_ms", Value::U64(backoff.as_millis() as u64)),
                                    ],
                                );
                            }
                            retries.push((
                                ready_at,
                                AttemptSpec {
                                    task: report.task,
                                    attempt,
                                },
                            ));
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break Err(JobError::Internal(
                        "all workers exited before the phase completed".into(),
                    ));
                }
            }

            // Dispatch retries whose backoff has elapsed.
            let now = Instant::now();
            let mut i = 0;
            while i < retries.len() {
                if retries[i].0 <= now {
                    let (_, spec) = retries.swap_remove(i);
                    let st = &mut tasks[spec.task];
                    st.in_flight.push(spec.attempt);
                    st.dispatched_at = now;
                    attempt_event("attempt_start", spec.task, spec.attempt, None);
                    queue.push(spec);
                } else {
                    i += 1;
                }
            }

            // Hadoop-style speculation: duplicate a straggler when it
            // has run well past the mean committed-attempt duration.
            if cfg.speculative && !committed_ms.is_empty() {
                let mean_ms = committed_ms.iter().sum::<u64>() / committed_ms.len() as u64;
                for (t, st) in tasks.iter_mut().enumerate() {
                    if st.committed || st.speculated || st.in_flight.len() != 1 {
                        continue;
                    }
                    let elapsed = st.dispatched_at.elapsed().as_millis() as u64;
                    if elapsed >= cfg.speculative_lag_ms && elapsed > 2 * mean_ms {
                        let attempt = st.next_attempt;
                        st.next_attempt += 1;
                        st.in_flight.push(attempt);
                        st.speculated = true;
                        counters.speculative_attempts += 1;
                        attempt_event("speculative_launch", t, attempt, None);
                        attempt_event("attempt_start", t, attempt, None);
                        queue.push(AttemptSpec { task: t, attempt });
                    }
                }
            }
        };

        queue.close();
        verdict.map(|()| (results, counters))
    });

    let (results, counters) = scope_result?;
    let mut out = Vec::with_capacity(num_tasks);
    for slot in results {
        match slot {
            Some(v) => out.push(v),
            None => {
                return Err(JobError::Internal(
                    "phase completed with an uncommitted task".into(),
                ))
            }
        }
    }
    Ok((out, counters))
}

/// Private per-attempt output of one map task.
struct MapTaskOut<K, V> {
    runs: Vec<Vec<(K, V)>>,
    records_in: u64,
    bytes_in: u64,
    records_out: u64,
    bytes_out: u64,
    combine_records: u64,
    spill_bytes: u64,
}

/// Private per-attempt output of one reduce task.
struct ReduceTaskOut<O> {
    out: Vec<O>,
    records_in: u64,
    bytes_in: u64,
    records_out: u64,
    bytes_out: u64,
}

/// Run one MapReduce job on the local engine. See the crate docs for an
/// end-to-end example.
///
/// * `mapper` is called once per input record with an `emit` sink;
/// * `combiner`, when present, runs per map task on each sorted
///   key-group before the shuffle (Hadoop's map-side combine);
/// * `reducer` is called once per key with all its values.
///
/// Returns the reduce outputs (ordered by reduce partition, stable
/// across retries and speculation) and the job's measured [`JobStats`],
/// or a [`JobError`] if some task failed [`JobConfig::max_attempts`]
/// times.
pub fn run_job<I, K, V, O, M, R>(
    inputs: Vec<I>,
    cfg: &JobConfig,
    mapper: M,
    combiner: Option<Combiner<K, V>>,
    reducer: R,
) -> Result<(Vec<O>, JobStats), JobError>
where
    I: Clone + Send + Sync + ByteSize,
    K: Ord + Hash + Clone + Send + Sync + ByteSize,
    V: Clone + Send + Sync + ByteSize,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &[V]) -> Vec<O> + Sync,
{
    run_job_with_faults(inputs, cfg, None, mapper, combiner, reducer)
}

/// [`run_job`] with deterministic fault injection: the engine consults
/// `faults` before every task attempt and applies the injected panic,
/// slowdown, or transient error. With `None` the plan falls back to
/// [`JobConfig::faults`]; with neither set the behaviour is identical
/// to `run_job`.
pub fn run_job_with_faults<I, K, V, O, M, R>(
    inputs: Vec<I>,
    cfg: &JobConfig,
    faults: Option<&FaultPlan>,
    mapper: M,
    combiner: Option<Combiner<K, V>>,
    reducer: R,
) -> Result<(Vec<O>, JobStats), JobError>
where
    I: Clone + Send + Sync + ByteSize,
    K: Ord + Hash + Clone + Send + Sync + ByteSize,
    V: Clone + Send + Sync + ByteSize,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &[V]) -> Vec<O> + Sync,
{
    run_job_observed(
        inputs,
        cfg,
        faults,
        &Recorder::disabled(),
        mapper,
        combiner,
        reducer,
    )
}

/// [`run_job_with_faults`] with a structured job timeline attached.
///
/// When `recorder` is enabled, the engine emits:
///
/// * `job_start` / `job_summary` (or `job_failed`) bracketing the run —
///   the summary carries the full counter set of the returned
///   [`JobStats`];
/// * `attempt_start` / `attempt_end` span pairs per task attempt, with
///   lane fields `phase`/`task`/`attempt` and an `outcome` on the end
///   event (`"ok"`, `"failed"`, `"killed"`) — exactly the shape
///   `dc_obs::gantt` renders by default;
/// * `attempt_retry` and `speculative_launch` markers for the
///   fault-tolerance machinery.
///
/// Event timestamps are **job-relative wall-clock milliseconds**: real
/// scheduling time of a real multi-threaded run, and therefore the one
/// event stream in the stack that is *not* deterministic across runs
/// (event kinds and counts are; timestamps and interleavings are not).
/// A disabled recorder costs one branch per would-be event and leaves
/// behaviour identical to [`run_job_with_faults`].
pub fn run_job_observed<I, K, V, O, M, R>(
    inputs: Vec<I>,
    cfg: &JobConfig,
    faults: Option<&FaultPlan>,
    recorder: &Recorder,
    mapper: M,
    combiner: Option<Combiner<K, V>>,
    reducer: R,
) -> Result<(Vec<O>, JobStats), JobError>
where
    I: Clone + Send + Sync + ByteSize,
    K: Ord + Hash + Clone + Send + Sync + ByteSize,
    V: Clone + Send + Sync + ByteSize,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &[V]) -> Vec<O> + Sync,
{
    let epoch = Instant::now();
    let result = run_job_inner(
        inputs, cfg, faults, recorder, epoch, mapper, combiner, reducer,
    );
    if let Err(e) = &result {
        if recorder.is_enabled() {
            recorder.emit(
                epoch.elapsed().as_millis() as u64,
                "job_failed",
                vec![("error", Value::str(e.to_string()))],
            );
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn run_job_inner<I, K, V, O, M, R>(
    inputs: Vec<I>,
    cfg: &JobConfig,
    faults: Option<&FaultPlan>,
    recorder: &Recorder,
    epoch: Instant,
    mapper: M,
    combiner: Option<Combiner<K, V>>,
    reducer: R,
) -> Result<(Vec<O>, JobStats), JobError>
where
    I: Clone + Send + Sync + ByteSize,
    K: Ord + Hash + Clone + Send + Sync + ByteSize,
    V: Clone + Send + Sync + ByteSize,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &[V]) -> Vec<O> + Sync,
{
    // The explicit plan wins; otherwise any plan carried by the config.
    let faults = faults.or(cfg.faults.as_ref());
    let num_map_tasks = cfg.effective_map_tasks(inputs.len());
    let num_reduce_tasks = cfg.effective_reduce_tasks();

    // ---- Split ----
    let mut splits: Vec<Vec<I>> = (0..num_map_tasks).map(|_| Vec::new()).collect();
    for (i, item) in inputs.into_iter().enumerate() {
        splits[i % num_map_tasks].push(item);
    }
    let map_bytes: Vec<u64> = splits
        .iter()
        .map(|s| s.iter().map(|i| i.byte_size() as u64).sum())
        .collect();

    if recorder.is_enabled() {
        recorder.emit(
            0,
            "job_start",
            vec![
                ("map_tasks", Value::U64(num_map_tasks as u64)),
                ("reduce_tasks", Value::U64(num_reduce_tasks as u64)),
                (
                    "input_bytes",
                    Value::U64(map_bytes.iter().copied().sum::<u64>()),
                ),
                ("speculative", Value::Bool(cfg.speculative)),
            ],
        );
    }

    // ---- Map phase (attempts, retries, speculation) ----
    let map_start = Instant::now();
    let splits_ref = &splits;
    let mapper_ref = &mapper;
    let (map_outs, map_faults) = run_phase(
        TaskKind::Map,
        num_map_tasks,
        cfg.map_slots.max(1),
        cfg,
        faults,
        &map_bytes,
        recorder,
        epoch,
        move |t| {
            let mut parts: Vec<Vec<(K, V)>> = (0..num_reduce_tasks).map(|_| Vec::new()).collect();
            let mut records_in = 0u64;
            let mut bytes_in = 0u64;
            let mut records_out = 0u64;
            let mut bytes_out = 0u64;
            for item in splits_ref[t].iter().cloned() {
                records_in += 1;
                bytes_in += item.byte_size() as u64;
                let mut emit = |k: K, v: V| {
                    records_out += 1;
                    bytes_out += (k.byte_size() + v.byte_size()) as u64;
                    parts[partition_of(&k, num_reduce_tasks)].push((k, v));
                };
                mapper_ref(item, &mut emit);
            }
            // Sort, combine, spill each partition run.
            let mut combine_records = 0u64;
            let mut spill_bytes = 0u64;
            let mut runs: Vec<Vec<(K, V)>> = Vec::with_capacity(num_reduce_tasks);
            for mut run in parts {
                if !run.is_empty() {
                    run.sort_by(|a, b| a.0.cmp(&b.0));
                    if let Some(comb) = combiner {
                        run = combine_sorted(run, comb);
                    }
                    combine_records += run.len() as u64;
                    spill_bytes += run.iter().map(|kv| kv.byte_size() as u64).sum::<u64>();
                }
                runs.push(run);
            }
            MapTaskOut {
                runs,
                records_in,
                bytes_in,
                records_out,
                bytes_out,
                combine_records,
                spill_bytes,
            }
        },
    )?;
    let map_ms = map_start.elapsed().as_millis() as u64;

    // ---- Commit map outputs (exactly once, in task order) ----
    let mut stats = JobStats {
        map_tasks: num_map_tasks as u64,
        reduce_tasks: num_reduce_tasks as u64,
        map_ms,
        ..JobStats::default()
    };
    let mut staged: Vec<Vec<Vec<(K, V)>>> = (0..num_reduce_tasks).map(|_| Vec::new()).collect();
    for task_out in map_outs {
        stats.map_input_records += task_out.records_in;
        stats.map_input_bytes += task_out.bytes_in;
        stats.map_output_records += task_out.records_out;
        stats.map_output_bytes += task_out.bytes_out;
        stats.combine_output_records += task_out.combine_records;
        stats.spilled_bytes += task_out.spill_bytes;
        for (r, run) in task_out.runs.into_iter().enumerate() {
            if !run.is_empty() {
                staged[r].push(run);
            }
        }
    }
    stats.shuffle_bytes = stats.spilled_bytes;

    // ---- Shuffle + reduce phase ----
    let reduce_start = Instant::now();
    let reduce_bytes: Vec<u64> = staged
        .iter()
        .map(|runs| runs.iter().flatten().map(|kv| kv.byte_size() as u64).sum())
        .collect();
    let staged_ref = &staged;
    let reducer_ref = &reducer;
    let (reduce_outs, reduce_faults) = run_phase(
        TaskKind::Reduce,
        num_reduce_tasks,
        cfg.reduce_slots.max(1),
        cfg,
        faults,
        &reduce_bytes,
        recorder,
        epoch,
        move |r| {
            // Merge: concatenate sorted runs and re-sort (k-way merge is
            // equivalent here; the engine is not the bottleneck we study).
            let mut all: Vec<(K, V)> = staged_ref[r].iter().flatten().cloned().collect();
            all.sort_by(|a, b| a.0.cmp(&b.0));
            // Reduce input: every merged record, key counted per record.
            let records_in = all.len() as u64;
            let bytes_in = all.iter().map(|kv| kv.byte_size() as u64).sum::<u64>();
            let mut out = Vec::new();
            let mut records_out = 0u64;
            let mut bytes_out = 0u64;
            let mut i = 0;
            while i < all.len() {
                let mut j = i + 1;
                while j < all.len() && all[j].0 == all[i].0 {
                    j += 1;
                }
                let values: Vec<V> = all[i..j].iter().map(|kv| kv.1.clone()).collect();
                for o in reducer_ref(&all[i].0, &values) {
                    records_out += 1;
                    out.push(o);
                }
                // Output bytes: values consumed plus one key per group
                // (the engine's proxy for emitted volume; `O` carries no
                // byte-size bound).
                bytes_out += all[i..j]
                    .iter()
                    .map(|kv| kv.1.byte_size() as u64)
                    .sum::<u64>()
                    + all[i].0.byte_size() as u64;
                i = j;
            }
            ReduceTaskOut {
                out,
                records_in,
                bytes_in,
                records_out,
                bytes_out,
            }
        },
    )?;
    stats.reduce_ms = reduce_start.elapsed().as_millis() as u64;

    // ---- Commit reduce outputs (partition order) ----
    let mut outputs = Vec::new();
    for task_out in reduce_outs {
        stats.reduce_input_records += task_out.records_in;
        stats.reduce_input_bytes += task_out.bytes_in;
        stats.reduce_output_records += task_out.records_out;
        stats.reduce_output_bytes += task_out.bytes_out;
        outputs.extend(task_out.out);
    }

    stats.failed_attempts = map_faults.failed_attempts + reduce_faults.failed_attempts;
    stats.speculative_attempts =
        map_faults.speculative_attempts + reduce_faults.speculative_attempts;
    stats.killed_attempts = map_faults.killed_attempts + reduce_faults.killed_attempts;
    stats.reexecuted_bytes = map_faults.reexecuted_bytes + reduce_faults.reexecuted_bytes;

    if recorder.is_enabled() {
        recorder.emit(
            epoch.elapsed().as_millis() as u64,
            "job_summary",
            vec![
                ("map_input_records", Value::U64(stats.map_input_records)),
                ("map_output_records", Value::U64(stats.map_output_records)),
                ("shuffle_bytes", Value::U64(stats.shuffle_bytes)),
                (
                    "reduce_input_records",
                    Value::U64(stats.reduce_input_records),
                ),
                ("reduce_input_bytes", Value::U64(stats.reduce_input_bytes)),
                (
                    "reduce_output_records",
                    Value::U64(stats.reduce_output_records),
                ),
                ("failed_attempts", Value::U64(stats.failed_attempts)),
                (
                    "speculative_attempts",
                    Value::U64(stats.speculative_attempts),
                ),
                ("killed_attempts", Value::U64(stats.killed_attempts)),
                ("reexecuted_bytes", Value::U64(stats.reexecuted_bytes)),
                ("map_ms", Value::U64(stats.map_ms)),
                ("reduce_ms", Value::U64(stats.reduce_ms)),
            ],
        );
    }

    Ok((outputs, stats))
}

/// Apply a combiner over a key-sorted run.
fn combine_sorted<K: Ord + Clone, V: Clone>(
    run: Vec<(K, V)>,
    comb: &(dyn Fn(&K, &[V]) -> Vec<V> + Sync),
) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(run.len() / 2 + 1);
    let mut i = 0;
    while i < run.len() {
        let mut j = i + 1;
        while j < run.len() && run[j].0 == run[i].0 {
            j += 1;
        }
        let values: Vec<V> = run[i..j].iter().map(|kv| kv.1.clone()).collect();
        for v in comb(&run[i].0, &values) {
            out.push((run[i].0.clone(), v));
        }
        i = j;
    }
    out
}

#[cfg(test)]
// Tests tweak one or two fields of a default `JobConfig`; sequential
// mutation reads better than struct-update syntax at eleven sites.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::faults::{ChaosSpec, Fault, FaultPlan, TaskKind};

    fn wordcount(
        lines: Vec<String>,
        cfg: &JobConfig,
        with_combiner: bool,
    ) -> (Vec<(String, u64)>, JobStats) {
        wordcount_with_faults(lines, cfg, with_combiner, None).expect("job succeeds")
    }

    fn wordcount_with_faults(
        lines: Vec<String>,
        cfg: &JobConfig,
        with_combiner: bool,
        faults: Option<&FaultPlan>,
    ) -> Result<(Vec<(String, u64)>, JobStats), JobError> {
        let comb: &(dyn Fn(&String, &[u64]) -> Vec<u64> + Sync) =
            &|_k, vs| vec![vs.iter().sum::<u64>()];
        run_job_with_faults(
            lines,
            cfg,
            faults,
            |line: String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            with_combiner.then_some(comb),
            |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
        )
    }

    #[test]
    fn wordcount_is_correct() {
        let lines = vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ];
        let (mut out, stats) = wordcount(lines, &JobConfig::default(), true);
        out.sort();
        let the = out.iter().find(|(w, _)| w == "the").expect("word");
        assert_eq!(the.1, 3);
        let quick = out.iter().find(|(w, _)| w == "quick").expect("word");
        assert_eq!(quick.1, 2);
        assert_eq!(stats.map_input_records, 3);
        assert_eq!(stats.map_output_records, 10);
        assert_eq!(stats.reduce_output_records, out.len() as u64);
        assert_eq!(stats.failed_attempts, 0);
        assert_eq!(stats.reexecuted_bytes, 0);
    }

    #[test]
    fn combiner_shrinks_shuffle() {
        let lines: Vec<String> = (0..200)
            .map(|i| format!("w{} w{} common", i % 5, i % 7))
            .collect();
        let (_, with) = wordcount(lines.clone(), &JobConfig::default(), true);
        let (_, without) = wordcount(lines, &JobConfig::default(), false);
        assert!(with.shuffle_bytes < without.shuffle_bytes / 2);
        assert!(with.combine_output_records < without.combine_output_records);
    }

    #[test]
    fn results_stable_across_slot_counts() {
        let lines: Vec<String> = (0..500).map(|i| format!("k{} v", i % 37)).collect();
        let mut cfg1 = JobConfig::default();
        cfg1.map_slots = 1;
        cfg1.reduce_slots = 1;
        let mut cfg8 = JobConfig::default();
        cfg8.map_slots = 8;
        cfg8.reduce_slots = 4;
        let (mut a, _) = wordcount(lines.clone(), &cfg1, true);
        let (mut b, _) = wordcount(lines, &cfg8, true);
        a.sort();
        b.sort();
        assert_eq!(a, b, "parallelism must not change results");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, stats) = wordcount(Vec::new(), &JobConfig::default(), true);
        assert!(out.is_empty());
        assert_eq!(stats.map_input_records, 0);
        assert_eq!(stats.reduce_output_records, 0);
    }

    #[test]
    fn sort_job_orders_within_partition() {
        // Identity map with a single reduce task = total ordering.
        let mut cfg = JobConfig::default();
        cfg.reduce_tasks = 1;
        let nums: Vec<u64> = vec![5, 3, 9, 1, 7, 1];
        let (out, _) = run_job(
            nums,
            &cfg,
            |n: u64, emit: &mut dyn FnMut(u64, u64)| emit(n, n),
            None,
            |k: &u64, vs: &[u64]| vs.iter().map(|_| *k).collect(),
        )
        .expect("job succeeds");
        assert_eq!(out, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn stats_accumulate_for_iterative_jobs() {
        let mut total = JobStats::default();
        let (_, s1) = wordcount(vec!["a b".into()], &JobConfig::default(), false);
        let (_, s2) = wordcount(vec!["c d e".into()], &JobConfig::default(), false);
        total.accumulate(&s1);
        total.accumulate(&s2);
        assert_eq!(total.map_input_records, 2);
        assert_eq!(total.map_output_records, 5);
        assert_eq!(total.map_tasks, s1.map_tasks + s2.map_tasks);
    }

    /// Every field of `JobStats`, written as a full literal so this test
    /// fails to compile when a field is added, then checked against
    /// `accumulate` — a field forgotten there would halve silently.
    #[test]
    fn accumulate_sums_every_field() {
        let unit = JobStats {
            map_input_records: 1,
            map_input_bytes: 2,
            map_output_records: 3,
            map_output_bytes: 4,
            combine_output_records: 5,
            spilled_bytes: 6,
            shuffle_bytes: 7,
            reduce_input_records: 8,
            reduce_input_bytes: 9,
            reduce_output_records: 10,
            reduce_output_bytes: 11,
            map_ms: 12,
            reduce_ms: 13,
            map_tasks: 14,
            reduce_tasks: 15,
            failed_attempts: 16,
            speculative_attempts: 17,
            killed_attempts: 18,
            reexecuted_bytes: 19,
        };
        let mut doubled = unit;
        doubled.accumulate(&unit);
        let expected = JobStats {
            map_input_records: 2,
            map_input_bytes: 4,
            map_output_records: 6,
            map_output_bytes: 8,
            combine_output_records: 10,
            spilled_bytes: 12,
            shuffle_bytes: 14,
            reduce_input_records: 16,
            reduce_input_bytes: 18,
            reduce_output_records: 20,
            reduce_output_bytes: 22,
            map_ms: 24,
            reduce_ms: 26,
            map_tasks: 28,
            reduce_tasks: 30,
            failed_attempts: 32,
            speculative_attempts: 34,
            killed_attempts: 36,
            reexecuted_bytes: 38,
        };
        assert_eq!(doubled, expected);
    }

    #[test]
    fn hadoop_node_config_scales() {
        let full = JobConfig::hadoop_node(1);
        assert_eq!(full.map_slots, 24);
        assert_eq!(full.reduce_slots, 12);
        let quarter = JobConfig::hadoop_node(4);
        assert_eq!(quarter.map_slots, 6);
        assert_eq!(quarter.reduce_slots, 3);
    }

    #[test]
    fn disk_write_bytes_counts_spills_and_output() {
        let (_, s) = wordcount(vec!["x y z".into()], &JobConfig::default(), false);
        assert_eq!(
            s.disk_write_bytes(),
            s.spilled_bytes + s.reduce_output_bytes
        );
        assert!(s.disk_write_bytes() > 0);
    }

    /// Reduce-side input accounting: without a combiner every map
    /// output record crosses the shuffle and is consumed exactly once;
    /// with a combiner the reducers consume the combined records, and
    /// the consumed bytes equal the shuffled bytes either way.
    #[test]
    fn reduce_input_counts_the_merged_shuffle() {
        let lines: Vec<String> = (0..120)
            .map(|i| format!("w{} w{} tok", i % 3, i % 9))
            .collect();
        let (_, plain) = wordcount(lines.clone(), &JobConfig::default(), false);
        assert_eq!(plain.reduce_input_records, plain.map_output_records);
        assert_eq!(plain.reduce_input_bytes, plain.shuffle_bytes);
        assert!(plain.reduce_input_records > plain.reduce_output_records);

        let (_, combined) = wordcount(lines, &JobConfig::default(), true);
        assert_eq!(
            combined.reduce_input_records,
            combined.combine_output_records
        );
        assert_eq!(combined.reduce_input_bytes, combined.shuffle_bytes);
        assert!(combined.reduce_input_records < plain.reduce_input_records);
    }

    // ---- Fault tolerance ----

    fn acceptance_lines() -> Vec<String> {
        (0..64)
            .map(|i| format!("alpha beta w{} w{}", i % 7, i % 11))
            .collect()
    }

    /// The issue's acceptance scenario: first-attempt panics in two map
    /// tasks and one reduce task. The job completes, output matches the
    /// fault-free run, `failed_attempts == 3`, and the same seed gives
    /// identical (timing-free) stats across runs.
    #[test]
    fn injected_panics_recover_with_identical_output() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 4;
        cfg.reduce_tasks = 2;
        let plan = FaultPlan::new(0xFA17)
            .with_fault(TaskKind::Map, 0, 0, Fault::Panic)
            .with_fault(TaskKind::Map, 1, 0, Fault::Panic)
            .with_fault(TaskKind::Reduce, 0, 0, Fault::Panic);

        let (mut clean_out, clean_stats) = wordcount(acceptance_lines(), &cfg, true);
        let (mut out_a, stats_a) =
            wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
                .expect("job recovers from injected panics");
        let (mut out_b, stats_b) =
            wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
                .expect("job recovers from injected panics");

        clean_out.sort();
        out_a.sort();
        out_b.sort();
        assert_eq!(out_a, clean_out, "recovered output must match fault-free");
        assert_eq!(out_b, clean_out);
        assert_eq!(stats_a.failed_attempts, 3);
        assert!(stats_a.reexecuted_bytes > 0);
        assert_eq!(
            stats_a.without_timings(),
            stats_b.without_timings(),
            "same seed must reproduce identical stats"
        );
        assert_eq!(
            stats_a.data_counters(),
            clean_stats.data_counters(),
            "exactly-once: dataflow counters unchanged by faults"
        );
    }

    #[test]
    fn exhausted_attempts_fail_the_job_cleanly() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 2;
        let mut plan = FaultPlan::new(1);
        for attempt in 0..cfg.max_attempts {
            plan = plan.with_fault(TaskKind::Map, 1, attempt, Fault::Panic);
        }
        let err = wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
            .expect_err("task must exhaust its attempts");
        match err {
            JobError::TaskExhausted {
                kind,
                task,
                attempts,
                ..
            } => {
                assert_eq!(kind, TaskKind::Map);
                assert_eq!(task, 1);
                assert_eq!(attempts, cfg.max_attempts);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn transient_io_errors_retry_without_unwinding() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 3;
        cfg.reduce_tasks = 2;
        let plan = FaultPlan::new(2)
            .with_fault(TaskKind::Map, 2, 0, Fault::IoError)
            .with_fault(TaskKind::Reduce, 1, 0, Fault::IoError);
        let (mut out, stats) = wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
            .expect("transient errors must be retried");
        let (mut clean, _) = wordcount(acceptance_lines(), &cfg, true);
        out.sort();
        clean.sort();
        assert_eq!(out, clean);
        assert_eq!(stats.failed_attempts, 2);
    }

    #[test]
    fn speculation_duplicates_stragglers_and_kills_losers() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 4;
        cfg.reduce_tasks = 1;
        cfg.map_slots = 4;
        cfg.speculative_lag_ms = 20;
        // Task 0's first attempt stalls for 2s; the other tasks finish
        // in microseconds, so the mean-based straggler detector fires
        // and the duplicate attempt (no injected fault) wins.
        let plan = FaultPlan::new(3).with_fault(TaskKind::Map, 0, 0, Fault::SlowdownMs(2_000));
        let (mut out, stats) = wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
            .expect("speculation must recover the straggler");
        let (mut clean, _) = wordcount(acceptance_lines(), &cfg, true);
        out.sort();
        clean.sort();
        assert_eq!(out, clean, "speculative winner must commit exactly once");
        assert_eq!(stats.speculative_attempts, 1);
        assert_eq!(stats.killed_attempts, 1);
        assert_eq!(stats.failed_attempts, 0);
        assert!(stats.reexecuted_bytes > 0);
    }

    #[test]
    fn speculation_can_be_disabled() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 4;
        cfg.speculative = false;
        cfg.speculative_lag_ms = 1;
        let plan = FaultPlan::new(4).with_fault(TaskKind::Map, 0, 0, Fault::SlowdownMs(60));
        let (_, stats) = wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
            .expect("slowdown alone must not fail the job");
        assert_eq!(stats.speculative_attempts, 0);
        assert_eq!(stats.killed_attempts, 0);
    }

    #[test]
    fn chaos_run_is_reproducible_and_exactly_once() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 6;
        cfg.reduce_tasks = 3;
        let spec = ChaosSpec {
            fault_prob: 0.5,
            max_faulted_attempt: 2,
            slowdown_ms: 1,
        };
        let plan = FaultPlan::chaos(0xC4A0, spec);
        let (mut out_a, stats_a) =
            wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
                .expect("chaos under max_attempts must complete");
        let (mut out_b, stats_b) =
            wordcount_with_faults(acceptance_lines(), &cfg, true, Some(&plan))
                .expect("chaos under max_attempts must complete");
        let (mut clean, clean_stats) = wordcount(acceptance_lines(), &cfg, true);
        out_a.sort();
        out_b.sort();
        clean.sort();
        assert_eq!(out_a, clean);
        assert_eq!(out_b, clean);
        assert_eq!(stats_a.without_timings(), stats_b.without_timings());
        assert_eq!(stats_a.data_counters(), clean_stats.data_counters());
    }

    // ---- Degenerate configurations ----

    #[test]
    fn zero_map_slots_still_completes() {
        let mut cfg = JobConfig::default();
        cfg.map_slots = 0;
        cfg.reduce_slots = 0;
        let (mut out, stats) = wordcount(vec!["a b a".into(), "c".into()], &cfg, true);
        out.sort();
        assert_eq!(
            out,
            vec![("a".into(), 2u64), ("b".into(), 1), ("c".into(), 1)]
        );
        assert!(stats.map_tasks >= 1);
    }

    #[test]
    fn more_reduce_tasks_than_keys_completes() {
        let mut cfg = JobConfig::default();
        cfg.reduce_tasks = 16;
        let (mut out, stats) = wordcount(vec!["a b a".into()], &cfg, true);
        out.sort();
        assert_eq!(out, vec![("a".into(), 2u64), ("b".into(), 1)]);
        assert_eq!(stats.reduce_tasks, 16);
        assert_eq!(stats.reduce_output_records, 2);
    }

    #[test]
    fn zero_byte_records_are_counted_not_crashed() {
        let lines: Vec<String> = vec![String::new(); 8];
        let (out, stats) = wordcount(lines, &JobConfig::default(), true);
        assert!(out.is_empty());
        assert_eq!(stats.map_input_records, 8);
        // Each empty record still costs its 4-byte length prefix.
        assert_eq!(stats.map_input_bytes, 8 * String::new().byte_size() as u64);
        assert_eq!(stats.map_output_records, 0);
        assert_eq!(stats.disk_write_bytes(), 0);
    }

    #[test]
    fn empty_input_with_faults_still_recovers() {
        let plan = FaultPlan::new(5).with_fault(TaskKind::Map, 0, 0, Fault::Panic);
        let (out, stats) =
            wordcount_with_faults(Vec::new(), &JobConfig::default(), true, Some(&plan))
                .expect("empty job with a faulted attempt must still finish");
        assert!(out.is_empty());
        assert_eq!(stats.failed_attempts, 1);
    }

    // ---- Job timelines (dc-obs) ----

    fn observed_wordcount(
        cfg: &JobConfig,
        plan: Option<&FaultPlan>,
        recorder: &Recorder,
    ) -> Result<(Vec<(String, u64)>, JobStats), JobError> {
        run_job_observed(
            acceptance_lines(),
            cfg,
            plan,
            recorder,
            |line: String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            None,
            |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
        )
    }

    /// The attempt timeline mirrors the stats block: one `ok` end per
    /// task, one `failed` end and one retry per failed attempt, and the
    /// summary event carries the full counter set.
    #[test]
    fn observed_job_emits_a_complete_attempt_timeline() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 4;
        cfg.reduce_tasks = 2;
        let plan = FaultPlan::new(0x0B5)
            .with_fault(TaskKind::Map, 1, 0, Fault::Panic)
            .with_fault(TaskKind::Reduce, 0, 0, Fault::IoError);
        let (recorder, ring) = Recorder::ring(4096);
        let (_, stats) =
            observed_wordcount(&cfg, Some(&plan), &recorder).expect("job recovers from faults");
        let events = ring.snapshot();

        assert_eq!(ring.count_kind("job_start"), 1);
        assert_eq!(ring.count_kind("job_summary"), 1);
        assert_eq!(ring.count_kind("job_failed"), 0);
        let total_tasks = stats.map_tasks + stats.reduce_tasks;
        let ends_with = |outcome: &str| {
            events
                .iter()
                .filter(|e| {
                    e.kind == "attempt_end"
                        && e.field("outcome").and_then(Value::as_str) == Some(outcome)
                })
                .count() as u64
        };
        assert_eq!(ends_with("ok"), total_tasks, "one committed end per task");
        assert_eq!(ends_with("failed"), stats.failed_attempts);
        assert_eq!(ends_with("killed"), stats.killed_attempts);
        assert_eq!(
            ring.count_kind("attempt_retry") as u64,
            stats.failed_attempts
        );
        assert_eq!(
            ring.count_kind("speculative_launch") as u64,
            stats.speculative_attempts
        );
        assert_eq!(
            ring.count_kind("attempt_start") as u64,
            total_tasks + stats.failed_attempts + stats.speculative_attempts,
            "every dispatched attempt opened a span"
        );

        let summary = events
            .iter()
            .find(|e| e.kind == "job_summary")
            .expect("summary event");
        assert_eq!(
            summary
                .field("reduce_input_records")
                .and_then(Value::as_u64),
            Some(stats.reduce_input_records)
        );
        assert_eq!(
            summary.field("failed_attempts").and_then(Value::as_u64),
            Some(stats.failed_attempts)
        );

        // The default Gantt config renders this stream directly.
        let chart = dc_obs::gantt::render(&events, &dc_obs::gantt::GanttConfig::default());
        assert!(chart.contains("map/1/0"), "faulted lane present:\n{chart}");
        assert!(chart.contains("failed"), "outcome labelled:\n{chart}");
    }

    #[test]
    fn exhausted_job_emits_job_failed() {
        let mut cfg = JobConfig::default();
        cfg.map_tasks = 2;
        let mut plan = FaultPlan::new(6);
        for attempt in 0..cfg.max_attempts {
            plan = plan.with_fault(TaskKind::Map, 0, attempt, Fault::Panic);
        }
        let (recorder, ring) = Recorder::ring(1024);
        let err = observed_wordcount(&cfg, Some(&plan), &recorder)
            .expect_err("task must exhaust its attempts");
        assert!(matches!(err, JobError::TaskExhausted { .. }));
        assert_eq!(ring.count_kind("job_failed"), 1);
        assert_eq!(ring.count_kind("job_summary"), 0);
    }

    /// A disabled recorder must leave results and counters untouched —
    /// `run_job_with_faults` is literally the disabled-recorder path.
    #[test]
    fn disabled_recorder_changes_nothing() {
        let cfg = JobConfig::default();
        let (mut via_observed, obs_stats) =
            observed_wordcount(&cfg, None, &Recorder::disabled()).expect("job succeeds");
        let (mut plain, plain_stats) = wordcount(acceptance_lines(), &cfg, false);
        via_observed.sort();
        plain.sort();
        assert_eq!(via_observed, plain);
        assert_eq!(obs_stats.data_counters(), plain_stats.data_counters());
    }
}
