//! The local multi-threaded MapReduce engine.
//!
//! Executes real jobs through the full Hadoop-shaped dataflow:
//!
//! ```text
//! inputs → splits → [map tasks] → partition → sort → combine → spill
//!        → shuffle → [reduce tasks: merge → group → reduce] → output
//! ```
//!
//! Map and reduce tasks run on bounded worker pools (the paper's nodes
//! are configured with 24 map and 12 reduce slots), and every stage
//! accounts records and bytes into [`JobStats`] — those measured counters
//! are what the cluster model scales up from.

use crate::bytes::ByteSize;
use crossbeam::channel;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Engine configuration (slot counts mirror Hadoop task slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Concurrent map tasks (Hadoop map slots).
    pub map_slots: usize,
    /// Concurrent reduce tasks (Hadoop reduce slots).
    pub reduce_slots: usize,
    /// Number of map tasks (input splits); 0 = `4 × map_slots`.
    pub map_tasks: usize,
    /// Number of reduce tasks (partitions); 0 = `reduce_slots`.
    pub reduce_tasks: usize,
    /// In-memory sort buffer per map task; output beyond this spills in
    /// additional passes (Hadoop's `io.sort.mb`).
    pub sort_buffer_bytes: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            map_slots: 4,
            reduce_slots: 2,
            map_tasks: 0,
            reduce_tasks: 0,
            sort_buffer_bytes: 4 << 20,
        }
    }
}

impl JobConfig {
    /// The per-node slot configuration from the paper's Section III
    /// (24 map slots, 12 reduce slots), scaled down by `divisor` so it
    /// is runnable on a workstation.
    pub fn hadoop_node(divisor: usize) -> Self {
        let d = divisor.max(1);
        JobConfig {
            map_slots: (24 / d).max(1),
            reduce_slots: (12 / d).max(1),
            ..JobConfig::default()
        }
    }

    fn effective_map_tasks(&self, inputs: usize) -> usize {
        let t = if self.map_tasks == 0 { self.map_slots * 4 } else { self.map_tasks };
        t.clamp(1, inputs.max(1))
    }

    fn effective_reduce_tasks(&self) -> usize {
        if self.reduce_tasks == 0 {
            self.reduce_slots.max(1)
        } else {
            self.reduce_tasks
        }
    }
}

/// Measured counters for one job run (the Hadoop counter set the paper's
/// methodology relies on).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobStats {
    /// Input records consumed by map tasks.
    pub map_input_records: u64,
    /// Input bytes consumed by map tasks.
    pub map_input_bytes: u64,
    /// Records emitted by map functions.
    pub map_output_records: u64,
    /// Bytes emitted by map functions.
    pub map_output_bytes: u64,
    /// Records after the combiner (equals map output when no combiner).
    pub combine_output_records: u64,
    /// Bytes spilled to local disk by map tasks (post-combine).
    pub spilled_bytes: u64,
    /// Bytes moved in the shuffle.
    pub shuffle_bytes: u64,
    /// Records produced by reduce tasks.
    pub reduce_output_records: u64,
    /// Bytes produced by reduce tasks.
    pub reduce_output_bytes: u64,
    /// Wall-clock milliseconds in the map phase.
    pub map_ms: u64,
    /// Wall-clock milliseconds in the reduce phase (incl. shuffle).
    pub reduce_ms: u64,
    /// Map tasks executed.
    pub map_tasks: u64,
    /// Reduce tasks executed.
    pub reduce_tasks: u64,
}

impl JobStats {
    /// Total wall-clock milliseconds.
    pub fn total_ms(&self) -> u64 {
        self.map_ms + self.reduce_ms
    }

    /// Total bytes written to local disk (spills + final output): the
    /// quantity behind Figure 5.
    pub fn disk_write_bytes(&self) -> u64 {
        self.spilled_bytes + self.reduce_output_bytes
    }

    /// Merge counters from consecutive jobs of an iterative algorithm.
    pub fn accumulate(&mut self, other: &JobStats) {
        self.map_input_records += other.map_input_records;
        self.map_input_bytes += other.map_input_bytes;
        self.map_output_records += other.map_output_records;
        self.map_output_bytes += other.map_output_bytes;
        self.combine_output_records += other.combine_output_records;
        self.spilled_bytes += other.spilled_bytes;
        self.shuffle_bytes += other.shuffle_bytes;
        self.reduce_output_records += other.reduce_output_records;
        self.reduce_output_bytes += other.reduce_output_bytes;
        self.map_ms += other.map_ms;
        self.reduce_ms += other.reduce_ms;
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
    }
}

/// Map-side combiner signature: fold a key's values into fewer values.
pub type Combiner<'a, K, V> = &'a (dyn Fn(&K, &[V]) -> Vec<V> + Sync);

/// Sorted spill runs staged per reduce partition.
type Staged<K, V> = Vec<Mutex<Vec<Vec<(K, V)>>>>;

fn partition_of<K: Hash>(key: &K, parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// Run one MapReduce job on the local engine. See the crate docs for an
/// end-to-end example.
///
/// * `mapper` is called once per input record with an `emit` sink;
/// * `combiner`, when present, runs per map task on each sorted
///   key-group before the shuffle (Hadoop's map-side combine);
/// * `reducer` is called once per key with all its values.
///
/// Returns the reduce outputs (unordered across partitions) and the
/// job's measured [`JobStats`].
pub fn run_job<I, K, V, O, M, R>(
    inputs: Vec<I>,
    cfg: &JobConfig,
    mapper: M,
    combiner: Option<Combiner<K, V>>,
    reducer: R,
) -> (Vec<O>, JobStats)
where
    I: Send + ByteSize,
    K: Ord + Hash + Clone + Send + ByteSize,
    V: Clone + Send + ByteSize,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, &[V]) -> Vec<O> + Sync,
{
    let num_map_tasks = cfg.effective_map_tasks(inputs.len());
    let num_reduce_tasks = cfg.effective_reduce_tasks();

    // Counters shared across workers.
    let map_input_records = AtomicU64::new(0);
    let map_input_bytes = AtomicU64::new(0);
    let map_output_records = AtomicU64::new(0);
    let map_output_bytes = AtomicU64::new(0);
    let combine_output_records = AtomicU64::new(0);
    let spilled_bytes = AtomicU64::new(0);

    // ---- Split ----
    let mut splits: Vec<Vec<I>> = (0..num_map_tasks).map(|_| Vec::new()).collect();
    for (i, item) in inputs.into_iter().enumerate() {
        splits[i % num_map_tasks].push(item);
    }

    // Shuffle staging: per reduce partition, a list of sorted runs.
    let staged: Staged<K, V> =
        (0..num_reduce_tasks).map(|_| Mutex::new(Vec::new())).collect();

    // ---- Map phase ----
    let map_start = Instant::now();
    {
        let (tx, rx) = channel::unbounded::<Vec<I>>();
        for split in splits {
            tx.send(split).expect("queue send");
        }
        drop(tx);
        std::thread::scope(|scope| {
            for _ in 0..cfg.map_slots.max(1) {
                let rx = rx.clone();
                let mapper = &mapper;
                let staged = &staged;
                let map_input_records = &map_input_records;
                let map_input_bytes = &map_input_bytes;
                let map_output_records = &map_output_records;
                let map_output_bytes = &map_output_bytes;
                let combine_output_records = &combine_output_records;
                let spilled_bytes = &spilled_bytes;
                scope.spawn(move || {
                    while let Ok(split) = rx.recv() {
                        let mut parts: Vec<Vec<(K, V)>> =
                            (0..num_reduce_tasks).map(|_| Vec::new()).collect();
                        let mut emitted_bytes = 0usize;
                        for item in split {
                            map_input_records.fetch_add(1, Ordering::Relaxed);
                            map_input_bytes
                                .fetch_add(item.byte_size() as u64, Ordering::Relaxed);
                            let mut emit = |k: K, v: V| {
                                map_output_records.fetch_add(1, Ordering::Relaxed);
                                let sz = k.byte_size() + v.byte_size();
                                emitted_bytes += sz;
                                map_output_bytes
                                    .fetch_add(sz as u64, Ordering::Relaxed);
                                parts[partition_of(&k, num_reduce_tasks)]
                                    .push((k, v));
                            };
                            mapper(item, &mut emit);
                        }
                        // Sort, combine, spill each partition run.
                        for (r, mut run) in parts.into_iter().enumerate() {
                            if run.is_empty() {
                                continue;
                            }
                            run.sort_by(|a, b| a.0.cmp(&b.0));
                            if let Some(comb) = combiner {
                                run = combine_sorted(run, comb);
                            }
                            combine_output_records
                                .fetch_add(run.len() as u64, Ordering::Relaxed);
                            let run_bytes: usize =
                                run.iter().map(|kv| kv.byte_size()).sum();
                            spilled_bytes
                                .fetch_add(run_bytes as u64, Ordering::Relaxed);
                            staged[r].lock().push(run);
                        }
                        let _ = emitted_bytes;
                    }
                });
            }
        });
    }
    let map_ms = map_start.elapsed().as_millis() as u64;

    // ---- Shuffle + reduce phase ----
    let reduce_start = Instant::now();
    let shuffle_bytes: u64 = spilled_bytes.load(Ordering::Relaxed);
    let reduce_output_records = AtomicU64::new(0);
    let reduce_output_bytes = AtomicU64::new(0);
    let outputs: Mutex<Vec<O>> = Mutex::new(Vec::new());
    {
        let (tx, rx) = channel::unbounded::<Vec<Vec<(K, V)>>>();
        for part in staged {
            tx.send(part.into_inner()).expect("queue send");
        }
        drop(tx);
        std::thread::scope(|scope| {
            for _ in 0..cfg.reduce_slots.max(1) {
                let rx = rx.clone();
                let reducer = &reducer;
                let outputs = &outputs;
                let reduce_output_records = &reduce_output_records;
                let reduce_output_bytes = &reduce_output_bytes;
                scope.spawn(move || {
                    while let Ok(runs) = rx.recv() {
                        // Merge: concatenate sorted runs and re-sort
                        // (k-way merge is equivalent here; the engine is
                        // not the bottleneck we study).
                        let mut all: Vec<(K, V)> =
                            runs.into_iter().flatten().collect();
                        all.sort_by(|a, b| a.0.cmp(&b.0));
                        let mut local_out = Vec::new();
                        let mut i = 0;
                        while i < all.len() {
                            let mut j = i + 1;
                            while j < all.len() && all[j].0 == all[i].0 {
                                j += 1;
                            }
                            let values: Vec<V> =
                                all[i..j].iter().map(|kv| kv.1.clone()).collect();
                            let outs = reducer(&all[i].0, &values);
                            for o in outs {
                                reduce_output_records
                                    .fetch_add(1, Ordering::Relaxed);
                                local_out.push(o);
                            }
                            // Output bytes: keys + values consumed.
                            let sz: usize = all[i..j]
                                .iter()
                                .map(|kv| kv.1.byte_size())
                                .sum::<usize>()
                                + all[i].0.byte_size();
                            reduce_output_bytes
                                .fetch_add(sz as u64, Ordering::Relaxed);
                            i = j;
                        }
                        outputs.lock().extend(local_out);
                    }
                });
            }
        });
    }
    let reduce_ms = reduce_start.elapsed().as_millis() as u64;

    let stats = JobStats {
        map_input_records: map_input_records.into_inner(),
        map_input_bytes: map_input_bytes.into_inner(),
        map_output_records: map_output_records.into_inner(),
        map_output_bytes: map_output_bytes.into_inner(),
        combine_output_records: combine_output_records.into_inner(),
        spilled_bytes: shuffle_bytes,
        shuffle_bytes,
        reduce_output_records: reduce_output_records.into_inner(),
        reduce_output_bytes: reduce_output_bytes.into_inner(),
        map_ms,
        reduce_ms,
        map_tasks: num_map_tasks as u64,
        reduce_tasks: num_reduce_tasks as u64,
    };
    (outputs.into_inner(), stats)
}

/// Apply a combiner over a key-sorted run.
fn combine_sorted<K: Ord + Clone, V: Clone>(
    run: Vec<(K, V)>,
    comb: &(dyn Fn(&K, &[V]) -> Vec<V> + Sync),
) -> Vec<(K, V)> {
    let mut out = Vec::with_capacity(run.len() / 2 + 1);
    let mut i = 0;
    while i < run.len() {
        let mut j = i + 1;
        while j < run.len() && run[j].0 == run[i].0 {
            j += 1;
        }
        let values: Vec<V> = run[i..j].iter().map(|kv| kv.1.clone()).collect();
        for v in comb(&run[i].0, &values) {
            out.push((run[i].0.clone(), v));
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wordcount(
        lines: Vec<String>,
        cfg: &JobConfig,
        with_combiner: bool,
    ) -> (Vec<(String, u64)>, JobStats) {
        let comb: &(dyn Fn(&String, &[u64]) -> Vec<u64> + Sync) =
            &|_k, vs| vec![vs.iter().sum::<u64>()];
        run_job(
            lines,
            cfg,
            |line: String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            with_combiner.then_some(comb),
            |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
        )
    }

    #[test]
    fn wordcount_is_correct() {
        let lines = vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ];
        let (mut out, stats) = wordcount(lines, &JobConfig::default(), true);
        out.sort();
        let the = out.iter().find(|(w, _)| w == "the").unwrap();
        assert_eq!(the.1, 3);
        let quick = out.iter().find(|(w, _)| w == "quick").unwrap();
        assert_eq!(quick.1, 2);
        assert_eq!(stats.map_input_records, 3);
        assert_eq!(stats.map_output_records, 10);
        assert_eq!(stats.reduce_output_records, out.len() as u64);
    }

    #[test]
    fn combiner_shrinks_shuffle() {
        let lines: Vec<String> =
            (0..200).map(|i| format!("w{} w{} common", i % 5, i % 7)).collect();
        let (_, with) = wordcount(lines.clone(), &JobConfig::default(), true);
        let (_, without) = wordcount(lines, &JobConfig::default(), false);
        assert!(with.shuffle_bytes < without.shuffle_bytes / 2);
        assert!(with.combine_output_records < without.combine_output_records);
    }

    #[test]
    fn results_stable_across_slot_counts() {
        let lines: Vec<String> =
            (0..500).map(|i| format!("k{} v", i % 37)).collect();
        let mut cfg1 = JobConfig::default();
        cfg1.map_slots = 1;
        cfg1.reduce_slots = 1;
        let mut cfg8 = JobConfig::default();
        cfg8.map_slots = 8;
        cfg8.reduce_slots = 4;
        let (mut a, _) = wordcount(lines.clone(), &cfg1, true);
        let (mut b, _) = wordcount(lines, &cfg8, true);
        a.sort();
        b.sort();
        assert_eq!(a, b, "parallelism must not change results");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, stats) = wordcount(Vec::new(), &JobConfig::default(), true);
        assert!(out.is_empty());
        assert_eq!(stats.map_input_records, 0);
        assert_eq!(stats.reduce_output_records, 0);
    }

    #[test]
    fn sort_job_orders_within_partition() {
        // Identity map with a single reduce task = total ordering.
        let mut cfg = JobConfig::default();
        cfg.reduce_tasks = 1;
        let nums: Vec<u64> = vec![5, 3, 9, 1, 7, 1];
        let (out, _) = run_job(
            nums,
            &cfg,
            |n: u64, emit: &mut dyn FnMut(u64, u64)| emit(n, n),
            None,
            |k: &u64, vs: &[u64]| vs.iter().map(|_| *k).collect(),
        );
        assert_eq!(out, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn stats_accumulate_for_iterative_jobs() {
        let mut total = JobStats::default();
        let (_, s1) = wordcount(vec!["a b".into()], &JobConfig::default(), false);
        let (_, s2) = wordcount(vec!["c d e".into()], &JobConfig::default(), false);
        total.accumulate(&s1);
        total.accumulate(&s2);
        assert_eq!(total.map_input_records, 2);
        assert_eq!(total.map_output_records, 5);
        assert_eq!(total.map_tasks, s1.map_tasks + s2.map_tasks);
    }

    #[test]
    fn hadoop_node_config_scales() {
        let full = JobConfig::hadoop_node(1);
        assert_eq!(full.map_slots, 24);
        assert_eq!(full.reduce_slots, 12);
        let quarter = JobConfig::hadoop_node(4);
        assert_eq!(quarter.map_slots, 6);
        assert_eq!(quarter.reduce_slots, 3);
    }

    #[test]
    fn disk_write_bytes_counts_spills_and_output() {
        let (_, s) = wordcount(vec!["x y z".into()], &JobConfig::default(), false);
        assert_eq!(s.disk_write_bytes(), s.spilled_bytes + s.reduce_output_bytes);
        assert!(s.disk_write_bytes() > 0);
    }
}
