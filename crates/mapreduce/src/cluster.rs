//! Discrete cluster model: the paper's 9-node Hadoop deployment.
//!
//! Figures 2 and 5 need a multi-node cluster (1-8 slaves, 24 map / 12
//! reduce slots each, 1 GbE, Hadoop 1.0.2). We model the cluster's
//! first-order behaviour analytically per phase — slot waves, per-node
//! core and disk throughput, shared network fabric with switch
//! oversubscription, HDFS write replication, and Hadoop 1.x job setup
//! overhead — and drive it with per-job cost coefficients measured from
//! *real* local-engine runs ([`JobModel::scaled_from`]).
//!
//! The model intentionally captures the effects that produce the paper's
//! speed-up spread (3.3×-8.2× on 8 slaves): CPU-bound jobs scale almost
//! linearly, while shuffle- and output-heavy jobs (Sort) are capped by
//! the network fabric and replicated writes that do not exist in the
//! 1-slave configuration.
//!
//! A [`FailureModel`] extends the simulation with Hadoop's behaviour
//! under slave loss ([`simulate_with_failures`]): capacity drops to the
//! surviving nodes, map work completed on lost nodes is re-executed
//! (map outputs are node-local in Hadoop 1.x), and HDFS re-replicates
//! the lost blocks over the shared fabric. Failed runs complete with a
//! degraded — never undefined — makespan, so Figure 2 under failure
//! shows lower speed-ups rather than simulation error.

use crate::engine::JobStats;
use dc_obs::{Recorder, Value};

/// Cluster hardware/configuration parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of slave (worker) nodes.
    pub slaves: u32,
    /// Map slots per slave (paper: 24).
    pub map_slots_per_slave: u32,
    /// Reduce slots per slave (paper: 12).
    pub reduce_slots_per_slave: u32,
    /// Physical cores per slave (paper: 2 × 6).
    pub cores_per_slave: u32,
    /// Sequential disk bandwidth per slave, MB/s.
    pub disk_mb_per_sec: f64,
    /// NIC line rate per node, MB/s (1 GbE ≈ 125).
    pub net_mb_per_sec: f64,
    /// Switch oversubscription factor for multi-node traffic.
    pub fabric_oversubscription: f64,
    /// HDFS output replication factor (1 on a single node).
    pub replication: u32,
    /// Fixed job setup/teardown overhead, seconds (Hadoop 1.x JobTracker).
    pub job_setup_secs: f64,
    /// Scheduling overhead per task wave, seconds.
    pub wave_overhead_secs: f64,
}

impl ClusterConfig {
    /// The paper's cluster with `slaves` slave nodes.
    pub fn paper(slaves: u32) -> Self {
        ClusterConfig {
            slaves: slaves.max(1),
            map_slots_per_slave: 24,
            reduce_slots_per_slave: 12,
            cores_per_slave: 12,
            disk_mb_per_sec: 90.0,
            net_mb_per_sec: 125.0,
            fabric_oversubscription: 3.0,
            replication: if slaves >= 3 { 3 } else { slaves.max(1) },
            job_setup_secs: 18.0,
            wave_overhead_secs: 2.5,
        }
    }

    /// Usable cross-node fabric bandwidth, MB/s.
    fn fabric_mb_per_sec(&self) -> f64 {
        if self.slaves <= 1 {
            f64::INFINITY // no cross-node traffic exists
        } else {
            f64::from(self.slaves) * self.net_mb_per_sec / self.fabric_oversubscription
        }
    }
}

/// Per-job cost coefficients, normalised per input byte so they can be
/// measured at laptop scale and applied at paper scale.
#[derive(Debug, Clone, PartialEq)]
pub struct JobModel {
    /// Workload name.
    pub name: String,
    /// Input size in GB (Table I).
    pub input_gb: f64,
    /// Single-core CPU-seconds of map work per input GB.
    pub map_cpu_secs_per_gb: f64,
    /// Shuffle bytes per input byte (post-combine).
    pub shuffle_ratio: f64,
    /// Single-core CPU-seconds of reduce work per shuffle GB.
    pub reduce_cpu_secs_per_gb: f64,
    /// Final output bytes per input byte.
    pub output_ratio: f64,
    /// Number of chained MapReduce jobs (iterative algorithms).
    pub iterations: u32,
}

impl JobModel {
    /// Derive a model from a measured local run.
    ///
    /// `engine_threads` is the number of worker threads the measurement
    /// used (to convert wall time into CPU-seconds), and `input_gb`
    /// rescales to the paper's input size.
    pub fn scaled_from(
        name: impl Into<String>,
        stats: &JobStats,
        engine_threads: usize,
        input_gb: f64,
    ) -> JobModel {
        let input_bytes = stats.map_input_bytes.max(1) as f64;
        let gb = input_bytes / (1 << 30) as f64;
        let threads = engine_threads.max(1) as f64;
        let map_cpu = stats.map_ms as f64 / 1000.0 * threads;
        let shuffle_gb = stats.shuffle_bytes as f64 / (1 << 30) as f64;
        let reduce_cpu = stats.reduce_ms as f64 / 1000.0 * threads;
        JobModel {
            name: name.into(),
            input_gb,
            map_cpu_secs_per_gb: map_cpu / gb.max(1e-9),
            shuffle_ratio: stats.shuffle_bytes as f64 / input_bytes,
            reduce_cpu_secs_per_gb: reduce_cpu / shuffle_gb.max(1e-9),
            output_ratio: stats.reduce_output_bytes as f64 / input_bytes,
            iterations: 1,
        }
    }

    /// Mark the job as an `n`-iteration chain (K-means, PageRank, …).
    pub fn with_iterations(mut self, n: u32) -> Self {
        self.iterations = n.max(1);
        self
    }
}

/// The simulated outcome of running a job on a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterRun {
    /// End-to-end job time, seconds.
    pub makespan_secs: f64,
    /// Map-phase seconds.
    pub map_secs: f64,
    /// Shuffle tail beyond map overlap, seconds.
    pub shuffle_secs: f64,
    /// Reduce-phase seconds.
    pub reduce_secs: f64,
    /// Total bytes written to disk across the cluster (spills +
    /// replicated output).
    pub disk_write_bytes: f64,
    /// Disk write operations per second per node (Figure 5's metric,
    /// assuming 64 KiB writes).
    pub disk_writes_per_sec_per_node: f64,
    /// Slave-seconds of work re-executed after node loss (0 in a
    /// failure-free run).
    pub reexecuted_work_secs: f64,
    /// Megabytes re-replicated by HDFS after node loss (0 in a
    /// failure-free run).
    pub rereplicated_mb: f64,
}

/// Simulate `job` on `cluster`.
pub fn simulate(cluster: &ClusterConfig, job: &JobModel) -> ClusterRun {
    let s = f64::from(cluster.slaves);
    let cores = f64::from(cluster.cores_per_slave) * s;
    let disk = cluster.disk_mb_per_sec * s; // MB/s aggregate
    let fabric = cluster.fabric_mb_per_sec();

    let input_mb = job.input_gb * 1024.0;
    let shuffle_mb = input_mb * job.shuffle_ratio;
    let output_mb = input_mb * job.output_ratio;

    // ---- Map phase ----
    // 64 MB splits, as in the paper's Hadoop defaults.
    let map_tasks = (input_mb / 64.0).ceil().max(1.0);
    let map_wave_capacity = f64::from(cluster.map_slots_per_slave) * s;
    let map_waves = (map_tasks / map_wave_capacity).ceil();
    let map_cpu_secs = job.input_gb * job.map_cpu_secs_per_gb;
    // Disk traffic during map: read input + spill map output.
    let map_disk_mb = input_mb + shuffle_mb;
    let map_secs =
        (map_cpu_secs / cores).max(map_disk_mb / disk) + map_waves * cluster.wave_overhead_secs;

    // ---- Shuffle ----
    // Cross-node fraction of the shuffle, over the shared fabric,
    // overlapped with the map phase (Hadoop starts fetching early).
    let cross_mb = shuffle_mb * (s - 1.0).max(0.0) / s;
    let shuffle_total_secs = if fabric.is_finite() {
        cross_mb / fabric
    } else {
        0.0
    };
    let shuffle_secs = (shuffle_total_secs - 0.7 * map_secs).max(0.0);

    // ---- Reduce phase ----
    let reduce_cpu_secs = (shuffle_mb / 1024.0) * job.reduce_cpu_secs_per_gb;
    let repl = f64::from(cluster.replication.max(1));
    // Disk: read the shuffled runs, write replicated output.
    let reduce_disk_mb = shuffle_mb + output_mb * repl;
    // Network: (replication - 1) remote copies of the output.
    let repl_net_secs = if fabric.is_finite() {
        output_mb * (repl - 1.0) / fabric
    } else {
        0.0
    };
    let reduce_secs = (reduce_cpu_secs / cores)
        .max(reduce_disk_mb / disk)
        .max(repl_net_secs)
        + cluster.wave_overhead_secs;

    let per_iter = map_secs + shuffle_secs + reduce_secs;
    let iters = f64::from(job.iterations.max(1));
    let makespan = cluster.job_setup_secs * iters + per_iter * iters;

    let disk_write_bytes = (shuffle_mb + output_mb * repl) * 1e6 * iters;
    let writes = disk_write_bytes / (64.0 * 1024.0);
    ClusterRun {
        makespan_secs: makespan,
        map_secs,
        shuffle_secs,
        reduce_secs,
        disk_write_bytes,
        disk_writes_per_sec_per_node: writes / makespan / s,
        reexecuted_work_secs: 0.0,
        rereplicated_mb: 0.0,
    }
}

/// Speed-up of `job` on `slaves` relative to one slave (Figure 2).
pub fn speedup(job: &JobModel, slaves: u32) -> f64 {
    let t1 = simulate(&ClusterConfig::paper(1), job).makespan_secs;
    let tn = simulate(&ClusterConfig::paper(slaves), job).makespan_secs;
    t1 / tn
}

/// One scheduled node-loss event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// When the nodes fail, seconds after job submission.
    pub at_secs: f64,
    /// How many slaves fail at once.
    pub nodes: u32,
    /// When the nodes rejoin the cluster (seconds after the failure),
    /// or `None` for a permanent loss.
    pub recover_after_secs: Option<f64>,
}

/// A schedule of slave failures and recoveries applied to a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureModel {
    /// The failure events, in any order.
    pub events: Vec<NodeFailure>,
}

impl FailureModel {
    /// The failure-free schedule.
    pub fn none() -> Self {
        FailureModel { events: Vec::new() }
    }

    /// One slave lost permanently at `at_secs`.
    pub fn single_loss(at_secs: f64) -> Self {
        FailureModel {
            events: vec![NodeFailure {
                at_secs,
                nodes: 1,
                recover_after_secs: None,
            }],
        }
    }

    /// One slave lost at `at_secs`, rejoining `recover_after_secs`
    /// later (a rebooted node).
    pub fn single_loss_with_recovery(at_secs: f64, recover_after_secs: f64) -> Self {
        FailureModel {
            events: vec![NodeFailure {
                at_secs,
                nodes: 1,
                recover_after_secs: Some(recover_after_secs),
            }],
        }
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Simulate `job` on `cluster` under a failure schedule.
///
/// The healthy per-phase times from [`simulate`] are re-played as a
/// piecewise timeline — fixed wall segments (job setup, fabric-bound
/// shuffle) and work segments (map/reduce slave-seconds drained at the
/// current surviving capacity). A node loss:
///
/// * drops capacity to the survivors (never below one slave),
/// * re-queues the lost nodes' share of this iteration's completed map
///   work (Hadoop 1.x re-executes completed maps whose node-local
///   output is gone),
/// * stalls the fabric while HDFS re-replicates the lost blocks.
///
/// With an empty schedule this is exactly [`simulate`].
pub fn simulate_with_failures(
    cluster: &ClusterConfig,
    job: &JobModel,
    failures: &FailureModel,
) -> ClusterRun {
    if failures.is_empty() {
        return simulate(cluster, job);
    }
    replay_with_failures(cluster, job, failures, &Recorder::disabled())
}

/// [`simulate_with_failures`] with the piecewise timeline emitted as
/// structured events.
///
/// When `recorder` is enabled, the replay emits:
///
/// * `phase_start` / `phase_end` span pairs per iteration segment, with
///   lane fields `phase` (`"setup"`/`"map"`/`"shuffle"`/`"reduce"`) and
///   `iteration`;
/// * `node_loss` / `node_recover` markers at each capacity change,
///   carrying the surviving capacity, the re-queued map work and the
///   HDFS re-replication volume.
///
/// Event timestamps are **simulated milliseconds** since job
/// submission — a pure function of the inputs, so two calls with the
/// same arguments produce byte-identical event streams. The returned
/// [`ClusterRun`] is exactly [`simulate_with_failures`]'s.
pub fn simulate_with_failures_observed(
    cluster: &ClusterConfig,
    job: &JobModel,
    failures: &FailureModel,
    recorder: &Recorder,
) -> ClusterRun {
    let run = replay_with_failures(cluster, job, failures, recorder);
    if failures.is_empty() {
        // Keep the exactness guarantee of the empty schedule (the
        // replay matches `simulate` only up to float associativity).
        simulate(cluster, job)
    } else {
        run
    }
}

fn replay_with_failures(
    cluster: &ClusterConfig,
    job: &JobModel,
    failures: &FailureModel,
    recorder: &Recorder,
) -> ClusterRun {
    let base = simulate(cluster, job);
    let sim_ms = |t: f64| (t * 1000.0).round() as u64;

    let s = f64::from(cluster.slaves);
    let fabric = cluster.fabric_mb_per_sec();
    let input_mb = job.input_gb * 1024.0;
    let shuffle_mb = input_mb * job.shuffle_ratio;

    // Capacity deltas on a sorted timeline (loss > 0, recovery < 0).
    let mut deltas: Vec<(f64, f64)> = Vec::new();
    for ev in &failures.events {
        let k = f64::from(ev.nodes.min(cluster.slaves));
        if k <= 0.0 || !ev.at_secs.is_finite() {
            continue;
        }
        let at = ev.at_secs.max(0.0);
        deltas.push((at, k));
        if let Some(after) = ev.recover_after_secs {
            deltas.push((at + after.max(0.0), -k));
        }
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut t = 0.0f64;
    let mut alive = s;
    let mut next = 0usize;
    let mut extra_work = 0.0f64; // re-executed slave-seconds
    let mut rerepl_mb = 0.0f64;
    let mut debt = 0.0f64; // rework queued for the next work segment
    let mut map_done: f64; // map slave-seconds banked this iteration
    let mut phase_wall = [0.0f64; 3];

    // Applies the delta at `deltas[next]`; returns the new `alive`.
    let apply = |t: &mut f64,
                 alive: f64,
                 lost: f64,
                 map_done: &mut f64,
                 debt: &mut f64,
                 extra_work: &mut f64,
                 rerepl_mb: &mut f64|
     -> f64 {
        if lost > 0.0 {
            let at_ms = sim_ms(*t);
            // Keep at least one slave so the job always completes.
            let k = lost.min(alive - 1.0).max(0.0);
            let frac = k / s;
            // Completed map work on the lost nodes is gone.
            let rework = *map_done * frac;
            *map_done -= rework;
            *debt += rework;
            *extra_work += rework;
            // HDFS restores one fresh copy of every lost block.
            let lost_mb = input_mb * frac;
            let mut stall_secs = 0.0;
            if fabric.is_finite() && lost_mb > 0.0 {
                stall_secs = lost_mb / fabric;
                *t += stall_secs;
                *rerepl_mb += lost_mb;
            }
            if recorder.is_enabled() {
                recorder.emit(
                    at_ms,
                    "node_loss",
                    vec![
                        ("lost", Value::F64(k)),
                        ("alive", Value::F64(alive - k)),
                        ("requeued_map_secs", Value::F64(rework)),
                        ("rereplicated_mb", Value::F64(lost_mb)),
                        ("rereplication_stall_secs", Value::F64(stall_secs)),
                    ],
                );
            }
            alive - k
        } else {
            let restored = (alive - lost).min(s);
            if recorder.is_enabled() {
                recorder.emit(
                    sim_ms(*t),
                    "node_recover",
                    vec![
                        ("recovered", Value::F64(-lost)),
                        ("alive", Value::F64(restored)),
                    ],
                );
            }
            restored
        }
    };

    let iters = job.iterations.max(1);
    for iter in 0..iters {
        map_done = 0.0;
        // (name, wall secs, work slave-secs, phase index) per segment.
        struct Segment {
            name: &'static str,
            wall: Option<f64>,
            work: Option<f64>,
            phase: Option<usize>,
        }
        let segments = [
            Segment {
                name: "setup",
                wall: Some(cluster.job_setup_secs),
                work: None,
                phase: None,
            },
            Segment {
                name: "map",
                wall: None,
                work: Some(base.map_secs * s),
                phase: Some(0),
            },
            Segment {
                name: "shuffle",
                wall: Some(base.shuffle_secs),
                work: None,
                phase: Some(1),
            },
            Segment {
                name: "reduce",
                wall: None,
                work: Some(base.reduce_secs * s),
                phase: Some(2),
            },
        ];
        for Segment {
            name,
            wall,
            work,
            phase,
        } in segments
        {
            let seg_start = t;
            if recorder.is_enabled() {
                recorder.emit(
                    sim_ms(t),
                    "phase_start",
                    vec![
                        ("phase", Value::str(name)),
                        ("iteration", Value::U64(u64::from(iter))),
                    ],
                );
            }
            if let Some(d) = wall {
                let mut remaining = d;
                loop {
                    let finish = t + remaining;
                    if next < deltas.len() && deltas[next].0 < finish {
                        remaining -= (deltas[next].0 - t).max(0.0);
                        t = deltas[next].0;
                        alive = apply(
                            &mut t,
                            alive,
                            deltas[next].1,
                            &mut map_done,
                            &mut debt,
                            &mut extra_work,
                            &mut rerepl_mb,
                        );
                        next += 1;
                    } else {
                        t = finish;
                        break;
                    }
                }
                if let Some(p) = phase {
                    phase_wall[p] += d;
                }
            } else if let Some(w0) = work {
                let mut w = w0 + debt;
                debt = 0.0;
                let is_map = phase == Some(0);
                loop {
                    w += debt;
                    debt = 0.0;
                    let cap = alive.max(1.0);
                    let finish = t + w / cap;
                    if next < deltas.len() && deltas[next].0 < finish {
                        let done = (deltas[next].0 - t).max(0.0) * cap;
                        w -= done;
                        if is_map {
                            map_done += done;
                        }
                        t = deltas[next].0;
                        alive = apply(
                            &mut t,
                            alive,
                            deltas[next].1,
                            &mut map_done,
                            &mut debt,
                            &mut extra_work,
                            &mut rerepl_mb,
                        );
                        next += 1;
                    } else {
                        if is_map {
                            map_done += w;
                        }
                        t = finish;
                        break;
                    }
                }
                if let Some(p) = phase {
                    phase_wall[p] += t - seg_start;
                }
            }
            if recorder.is_enabled() {
                recorder.emit(
                    sim_ms(t),
                    "phase_end",
                    vec![
                        ("phase", Value::str(name)),
                        ("iteration", Value::U64(u64::from(iter))),
                        ("secs", Value::F64(t - seg_start)),
                    ],
                );
            }
        }
    }

    // Re-executed map work re-spills its share of the shuffle, and the
    // re-replicated blocks land on the survivors' disks.
    let map_work_total = base.map_secs * s * f64::from(iters);
    let rework_spill_mb = if map_work_total > 0.0 {
        shuffle_mb * (extra_work / map_work_total)
    } else {
        0.0
    };
    let disk_write_bytes = base.disk_write_bytes + (rerepl_mb + rework_spill_mb) * 1e6;
    let writes = disk_write_bytes / (64.0 * 1024.0);
    let fi = f64::from(iters);
    ClusterRun {
        makespan_secs: t,
        map_secs: phase_wall[0] / fi,
        shuffle_secs: phase_wall[1] / fi,
        reduce_secs: phase_wall[2] / fi,
        disk_write_bytes,
        disk_writes_per_sec_per_node: writes / t.max(1e-9) / s,
        reexecuted_work_secs: extra_work,
        rereplicated_mb: rerepl_mb,
    }
}

/// Speed-up of `job` on `slaves` under a failure schedule, relative to
/// a *healthy* single slave — the degraded Figure 2 series.
pub fn speedup_with_failures(job: &JobModel, slaves: u32, failures: &FailureModel) -> f64 {
    let t1 = simulate(&ClusterConfig::paper(1), job).makespan_secs;
    let tn = simulate_with_failures(&ClusterConfig::paper(slaves), job, failures).makespan_secs;
    t1 / tn
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A CPU-heavy job: lots of compute per byte (Bayes-like).
    fn cpu_job() -> JobModel {
        JobModel {
            name: "cpu-heavy".into(),
            input_gb: 147.0,
            map_cpu_secs_per_gb: 260.0,
            shuffle_ratio: 0.05,
            reduce_cpu_secs_per_gb: 30.0,
            output_ratio: 0.01,
            iterations: 1,
        }
    }

    /// An I/O-heavy job: output = input (Sort-like).
    fn io_job() -> JobModel {
        JobModel {
            name: "io-heavy".into(),
            input_gb: 150.0,
            map_cpu_secs_per_gb: 6.0,
            shuffle_ratio: 1.0,
            reduce_cpu_secs_per_gb: 6.0,
            output_ratio: 1.0,
            iterations: 1,
        }
    }

    #[test]
    fn cpu_jobs_scale_nearly_linearly() {
        let s8 = speedup(&cpu_job(), 8);
        assert!(s8 > 6.5, "cpu-bound speedup at 8 slaves: {s8}");
        assert!(s8 <= 8.5);
    }

    #[test]
    fn io_jobs_scale_sublinearly() {
        let s8 = speedup(&io_job(), 8);
        assert!(s8 > 2.0 && s8 < 6.0, "io-bound speedup at 8 slaves: {s8}");
        assert!(
            s8 < speedup(&cpu_job(), 8),
            "sort-like jobs must scale worse than cpu-bound jobs"
        );
    }

    #[test]
    fn speedup_monotone_in_slaves() {
        for job in [cpu_job(), io_job()] {
            let s1 = speedup(&job, 1);
            let s4 = speedup(&job, 4);
            let s8 = speedup(&job, 8);
            assert!((s1 - 1.0).abs() < 1e-9);
            assert!(s4 > 1.5, "{}: s4={s4}", job.name);
            assert!(s8 > s4, "{}: s8={s8} s4={s4}", job.name);
        }
    }

    #[test]
    fn io_jobs_write_more_disk_per_second() {
        let cluster = ClusterConfig::paper(4);
        let io = simulate(&cluster, &io_job());
        let cpu = simulate(&cluster, &cpu_job());
        assert!(
            io.disk_writes_per_sec_per_node > 3.0 * cpu.disk_writes_per_sec_per_node,
            "sort-like jobs dominate disk writes: io={} cpu={}",
            io.disk_writes_per_sec_per_node,
            cpu.disk_writes_per_sec_per_node
        );
    }

    #[test]
    fn iterations_multiply_time_and_io() {
        let once = simulate(&ClusterConfig::paper(4), &cpu_job());
        let thrice = simulate(&ClusterConfig::paper(4), &cpu_job().with_iterations(3));
        assert!(thrice.makespan_secs > 2.5 * once.makespan_secs);
        assert!((thrice.disk_write_bytes - 3.0 * once.disk_write_bytes).abs() < 1.0);
    }

    #[test]
    fn single_slave_has_no_network_cost() {
        let run = simulate(&ClusterConfig::paper(1), &io_job());
        assert_eq!(run.shuffle_secs, 0.0);
    }

    #[test]
    fn empty_failure_model_is_exactly_the_baseline() {
        for job in [cpu_job(), io_job()] {
            let base = simulate(&ClusterConfig::paper(8), &job);
            let run = simulate_with_failures(&ClusterConfig::paper(8), &job, &FailureModel::none());
            assert_eq!(run, base);
            assert_eq!(run.reexecuted_work_secs, 0.0);
            assert_eq!(run.rereplicated_mb, 0.0);
        }
    }

    #[test]
    fn mid_map_loss_degrades_but_completes() {
        // One slave dies 60 s in — mid-map for both job shapes at 8
        // slaves (map starts after the 18 s setup).
        let failures = FailureModel::single_loss(60.0);
        for job in [cpu_job(), io_job()] {
            let base = simulate(&ClusterConfig::paper(8), &job);
            let run = simulate_with_failures(&ClusterConfig::paper(8), &job, &failures);
            assert!(run.makespan_secs.is_finite(), "{}", job.name);
            assert!(
                run.makespan_secs > base.makespan_secs,
                "{}: degraded {} vs healthy {}",
                job.name,
                run.makespan_secs,
                base.makespan_secs
            );
            assert!(run.reexecuted_work_secs > 0.0, "{}", job.name);
            assert!(run.rereplicated_mb > 0.0, "{}", job.name);
            assert!(run.disk_write_bytes > base.disk_write_bytes);
            let healthy = speedup(&job, 8);
            let degraded = speedup_with_failures(&job, 8, &failures);
            assert!(degraded.is_finite() && degraded > 0.0);
            assert!(
                degraded < healthy,
                "{}: degraded speedup {degraded} vs healthy {healthy}",
                job.name
            );
        }
    }

    #[test]
    fn recovery_restores_capacity() {
        let job = cpu_job();
        let permanent = simulate_with_failures(
            &ClusterConfig::paper(8),
            &job,
            &FailureModel::single_loss(60.0),
        );
        let recovered = simulate_with_failures(
            &ClusterConfig::paper(8),
            &job,
            &FailureModel::single_loss_with_recovery(60.0, 30.0),
        );
        let base = simulate(&ClusterConfig::paper(8), &job);
        assert!(recovered.makespan_secs > base.makespan_secs);
        assert!(
            recovered.makespan_secs < permanent.makespan_secs,
            "a rejoining node must help: {} vs {}",
            recovered.makespan_secs,
            permanent.makespan_secs
        );
    }

    #[test]
    fn losing_the_only_slave_still_completes() {
        let job = io_job();
        let run = simulate_with_failures(
            &ClusterConfig::paper(1),
            &job,
            &FailureModel::single_loss(30.0),
        );
        let base = simulate(&ClusterConfig::paper(1), &job);
        assert!(run.makespan_secs.is_finite());
        assert!(run.makespan_secs >= base.makespan_secs);
    }

    #[test]
    fn late_failures_after_job_end_change_nothing_material() {
        let job = cpu_job();
        let base = simulate(&ClusterConfig::paper(8), &job);
        let run = simulate_with_failures(
            &ClusterConfig::paper(8),
            &job,
            &FailureModel::single_loss(base.makespan_secs * 10.0),
        );
        assert!((run.makespan_secs - base.makespan_secs).abs() < 1e-6);
    }

    #[test]
    fn observed_replay_emits_the_failure_timeline() {
        let job = cpu_job().with_iterations(2);
        let failures = FailureModel::single_loss_with_recovery(60.0, 30.0);
        let (recorder, ring) = dc_obs::Recorder::ring(256);
        let run =
            simulate_with_failures_observed(&ClusterConfig::paper(8), &job, &failures, &recorder);
        assert_eq!(
            run,
            simulate_with_failures(&ClusterConfig::paper(8), &job, &failures),
            "observation must not change the simulated outcome"
        );
        assert_eq!(ring.count_kind("node_loss"), 1);
        assert_eq!(ring.count_kind("node_recover"), 1);
        // 4 segments per iteration, both iterations bracketed.
        assert_eq!(ring.count_kind("phase_start"), 8);
        assert_eq!(ring.count_kind("phase_end"), 8);
        let events = ring.snapshot();
        let loss = events
            .iter()
            .find(|e| e.kind == "node_loss")
            .expect("loss event");
        assert_eq!(loss.ts, 60_000, "loss lands at its simulated time");
        assert!(
            events.windows(2).all(|w| w[0].ts <= w[1].ts),
            "sim time is monotone"
        );
    }

    #[test]
    fn observed_empty_schedule_is_exactly_the_baseline_with_phases() {
        let job = io_job();
        let (recorder, ring) = dc_obs::Recorder::ring(64);
        let run = simulate_with_failures_observed(
            &ClusterConfig::paper(4),
            &job,
            &FailureModel::none(),
            &recorder,
        );
        assert_eq!(run, simulate(&ClusterConfig::paper(4), &job));
        assert_eq!(ring.count_kind("phase_start"), 4);
        assert_eq!(ring.count_kind("node_loss"), 0);
    }

    /// The replay is a pure function of its inputs: same arguments,
    /// byte-identical JSONL — the cluster half of the determinism
    /// contract (timestamps are simulated milliseconds, never wall
    /// clock).
    #[test]
    fn observed_replay_is_byte_deterministic() {
        let run_once = || {
            let buf = dc_obs::SharedBuf::default();
            let recorder = dc_obs::Recorder::jsonl(buf.clone());
            simulate_with_failures_observed(
                &ClusterConfig::paper(8),
                &io_job(),
                &FailureModel::single_loss(45.0),
                &recorder,
            );
            recorder.flush();
            buf.contents()
        };
        let a = run_once();
        assert!(!a.is_empty());
        assert_eq!(a, run_once());
    }

    #[test]
    fn scaled_from_measured_stats() {
        let stats = JobStats {
            map_input_bytes: 1 << 30,
            shuffle_bytes: 1 << 29,
            reduce_output_bytes: 1 << 28,
            map_ms: 2_000,
            reduce_ms: 1_000,
            ..Default::default()
        };
        let model = JobModel::scaled_from("wc", &stats, 4, 154.0);
        assert!((model.map_cpu_secs_per_gb - 8.0).abs() < 1e-9);
        assert!((model.shuffle_ratio - 0.5).abs() < 1e-9);
        assert!((model.output_ratio - 0.25).abs() < 1e-9);
        assert!((model.input_gb - 154.0).abs() < 1e-9);
        // Reduce: 1 s × 4 threads over 0.5 GB shuffle = 8 s/GB.
        assert!((model.reduce_cpu_secs_per_gb - 8.0).abs() < 1e-9);
    }
}
