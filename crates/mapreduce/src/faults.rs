//! Deterministic fault injection for the MapReduce engine.
//!
//! Hadoop's defining runtime property is that tasks fail — JVMs crash,
//! disks throw transient errors, stragglers run long — and the job still
//! completes. To exercise that machinery reproducibly, the engine
//! consults a [`FaultPlan`] before every task attempt. A plan is either
//! a set of explicitly pinned faults (`(kind, task, attempt) → fault`)
//! or a seeded chaos mode that derives each decision from a stateless
//! hash of `(seed, kind, task, attempt)` — so a chaos run with the same
//! seed injects byte-for-byte the same faults, independent of thread
//! scheduling.

use std::collections::HashMap;

/// Which phase a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Map => write!(f, "map"),
            TaskKind::Reduce => write!(f, "reduce"),
        }
    }
}

/// One injected fault, applied to a single task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The attempt panics mid-task (a crashing child JVM).
    Panic,
    /// The attempt runs, but only after this much injected delay
    /// (a straggler; triggers speculative execution when long enough).
    SlowdownMs(u64),
    /// The attempt fails cleanly with a transient I/O error
    /// (a failed spill or shuffle fetch).
    IoError,
}

/// Chaos-mode parameters: hash-derived faults instead of pinned ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Probability that a given eligible attempt is faulted.
    pub fault_prob: f64,
    /// Only attempts numbered below this are eligible. Keeping it below
    /// `JobConfig::max_attempts` guarantees every task eventually
    /// succeeds, which is what the exactly-once property test relies on.
    pub max_faulted_attempt: u32,
    /// Delay used when the drawn fault is a slowdown.
    pub slowdown_ms: u64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            fault_prob: 0.2,
            max_faulted_attempt: 2,
            slowdown_ms: 1,
        }
    }
}

/// A deterministic, seeded schedule of faults for one job run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    pinned: HashMap<(TaskKind, usize, u32), Fault>,
    chaos: Option<ChaosSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults) carrying a seed for chaos extension.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            pinned: HashMap::new(),
            chaos: None,
        }
    }

    /// A chaos plan: every attempt decision is a pure function of
    /// `(seed, kind, task, attempt)`.
    pub fn chaos(seed: u64, spec: ChaosSpec) -> Self {
        FaultPlan {
            seed,
            pinned: HashMap::new(),
            chaos: Some(spec),
        }
    }

    /// Pin a fault on one specific attempt of one task.
    pub fn with_fault(mut self, kind: TaskKind, task: usize, attempt: u32, fault: Fault) -> Self {
        self.pinned.insert((kind, task, attempt), fault);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of explicitly pinned faults.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// The fault to inject for this attempt, if any. Pinned faults take
    /// precedence over chaos draws.
    pub fn fault_for(&self, kind: TaskKind, task: usize, attempt: u32) -> Option<Fault> {
        if let Some(f) = self.pinned.get(&(kind, task, attempt)) {
            return Some(*f);
        }
        let spec = self.chaos?;
        if attempt >= spec.max_faulted_attempt {
            return None;
        }
        let h = mix(self.seed, kind, task, attempt);
        let draw = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw >= spec.fault_prob {
            return None;
        }
        Some(match h % 3 {
            0 => Fault::Panic,
            1 => Fault::SlowdownMs(spec.slowdown_ms),
            _ => Fault::IoError,
        })
    }
}

/// SplitMix64-style stateless mix of the fault coordinates.
fn mix(seed: u64, kind: TaskKind, task: usize, attempt: u32) -> u64 {
    let kind_tag = match kind {
        TaskKind::Map => 0x4D41_5000u64,
        TaskKind::Reduce => 0x5244_4300u64,
    };
    splitmix64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(kind_tag)
            .wrapping_add((task as u64).wrapping_mul(0x0000_0001_0000_0001))
            .wrapping_add((attempt as u64) << 17),
    )
}

/// The SplitMix64 finalizer: a stateless, well-distributed `u64 → u64`
/// mix. Shared by every seeded fault plan in the workspace (this
/// module's chaos mode, `dc_store`'s I/O chaos mode) so "same seed →
/// same faults" holds with one hash, not several ad-hoc ones.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_faults_hit_their_attempt_only() {
        let plan = FaultPlan::new(1).with_fault(TaskKind::Map, 3, 0, Fault::Panic);
        assert_eq!(plan.fault_for(TaskKind::Map, 3, 0), Some(Fault::Panic));
        assert_eq!(plan.fault_for(TaskKind::Map, 3, 1), None);
        assert_eq!(plan.fault_for(TaskKind::Map, 2, 0), None);
        assert_eq!(plan.fault_for(TaskKind::Reduce, 3, 0), None);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let spec = ChaosSpec::default();
        let a = FaultPlan::chaos(42, spec);
        let b = FaultPlan::chaos(42, spec);
        let c = FaultPlan::chaos(43, spec);
        let mut draws_a = Vec::new();
        let mut draws_c = Vec::new();
        for task in 0..64 {
            for attempt in 0..2 {
                assert_eq!(
                    a.fault_for(TaskKind::Map, task, attempt),
                    b.fault_for(TaskKind::Map, task, attempt)
                );
                draws_a.push(a.fault_for(TaskKind::Map, task, attempt));
                draws_c.push(c.fault_for(TaskKind::Map, task, attempt));
            }
        }
        assert_ne!(draws_a, draws_c, "different seeds should differ somewhere");
    }

    #[test]
    fn chaos_respects_attempt_ceiling_and_probability() {
        let spec = ChaosSpec {
            fault_prob: 0.5,
            max_faulted_attempt: 1,
            slowdown_ms: 1,
        };
        let plan = FaultPlan::chaos(7, spec);
        let mut faulted = 0;
        for task in 0..1000 {
            assert_eq!(plan.fault_for(TaskKind::Reduce, task, 1), None);
            assert_eq!(plan.fault_for(TaskKind::Reduce, task, 9), None);
            if plan.fault_for(TaskKind::Reduce, task, 0).is_some() {
                faulted += 1;
            }
        }
        assert!(
            (350..650).contains(&faulted),
            "~half faulted, got {faulted}"
        );
    }

    #[test]
    fn zero_probability_chaos_never_faults() {
        let spec = ChaosSpec {
            fault_prob: 0.0,
            max_faulted_attempt: 4,
            slowdown_ms: 1,
        };
        let plan = FaultPlan::chaos(9, spec);
        for task in 0..200 {
            for attempt in 0..4 {
                assert_eq!(plan.fault_for(TaskKind::Map, task, attempt), None);
            }
        }
    }
}
