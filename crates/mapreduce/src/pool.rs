//! Std-only scoped worker-pool primitives.
//!
//! Extracted from the engine's phase scheduler (which proved the idiom:
//! a closeable SPMC queue drained by [`std::thread::scope`] workers) so
//! the same machinery can drive any embarrassingly-parallel stage —
//! most importantly the characterization pipeline in `dcbench`, which
//! fans independent `(benchmark, window)` simulation jobs across cores.
//!
//! Two layers:
//!
//! * [`SpmcQueue`] — the raw single-producer/multi-consumer closeable
//!   queue (the engine's attempt dispatcher uses it directly, because
//!   its scheduler keeps pushing retries and speculative attempts while
//!   workers drain);
//! * [`parallel_map`] — a deterministic fork/join map for the simple
//!   fixed-job-list case: results come back **in input order**,
//!   regardless of which worker ran which job or in what order they
//!   finished, so parallel output is bit-identical to a sequential run
//!   of the same closure.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock a mutex, shrugging off poisoning: pool payloads are plain data
/// (queue contents + a closed flag), safe to reuse after a worker
/// panic; the panic itself still propagates when the scope joins.
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Closeable single-producer/multi-consumer work queue.
///
/// `pop` blocks until an item arrives or the queue is closed; once
/// closed and drained, every consumer sees `None` and exits. Producers
/// may keep pushing after workers start (the engine's scheduler pushes
/// retries mid-phase).
pub struct SpmcQueue<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    ready: Condvar,
}

impl<T> Default for SpmcQueue<T> {
    fn default() -> Self {
        SpmcQueue::new()
    }
}

impl<T> SpmcQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        SpmcQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    /// Enqueue one work item and wake one waiting consumer.
    pub fn push(&self, item: T) {
        relock(&self.state).0.push_back(item);
        self.ready.notify_one();
    }

    /// Close the queue: consumers drain what is left, then see `None`.
    pub fn close(&self) {
        relock(&self.state).1 = true;
        self.ready.notify_all();
    }

    /// Dequeue the next item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = relock(&self.state);
        loop {
            if let Some(item) = st.0.pop_front() {
                return Some(item);
            }
            if st.1 {
                return None;
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Run `f` over `items` on up to `threads` scoped workers and return
/// the results **in input order**.
///
/// Each job is independent: `f(index, item)` must not rely on sibling
/// jobs, so scheduling order cannot affect any individual result and
/// the output vector is bit-identical to the sequential
/// `items.map(f)`. With `threads <= 1` (or a single job) the closure
/// runs inline on the caller thread — the reference behaviour the
/// parallel path is measured against.
///
/// A panicking job propagates to the caller when the scope joins.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    let queue = SpmcQueue::new();
    for job in items.into_iter().enumerate() {
        queue.push(job);
    }
    queue.close();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let queue = &queue;
            let f = &f;
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some((i, item)) = queue.pop() {
                    // The receiver outlives the scope; send only fails
                    // if the caller thread is already unwinding.
                    if tx.send((i, f(i, item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every job reports exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_drains_in_fifo_order_single_consumer() {
        let q = SpmcQueue::new();
        for i in 0..5 {
            q.push(i);
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn closed_empty_queue_releases_blocked_consumers() {
        let q = SpmcQueue::<u32>::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3).map(|_| scope.spawn(|| q.pop())).collect();
            q.close();
            for h in handles {
                assert_eq!(h.join().expect("no panic"), None);
            }
        });
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 32] {
            let got = parallel_map(items.clone(), threads, |_, x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_runs_every_job_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map((0..64).collect::<Vec<usize>>(), 8, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            i
        });
        assert_eq!(out.len(), 64);
        assert_eq!(calls.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        assert_eq!(
            parallel_map(Vec::<u8>::new(), 4, |_, x| x),
            Vec::<u8>::new()
        );
        assert_eq!(parallel_map(vec![9], 4, |_, x| x + 1), vec![10]);
    }
}
