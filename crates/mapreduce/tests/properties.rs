//! Property-based invariants of the MapReduce engine and cluster model.

use dc_mapreduce::cluster::{simulate, speedup, ClusterConfig, JobModel};
use dc_mapreduce::engine::{run_job_with_faults, JobConfig};
use dc_mapreduce::faults::{ChaosSpec, FaultPlan};
use proptest::prelude::*;

fn wordcount(
    lines: Vec<String>,
    cfg: &JobConfig,
    faults: Option<&FaultPlan>,
) -> (Vec<(String, u64)>, dc_mapreduce::JobStats) {
    run_job_with_faults(
        lines,
        cfg,
        faults,
        |line: String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        },
        Some(&|_k: &String, vs: &[u64]| vec![vs.iter().sum::<u64>()]),
        |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
    )
    .expect("faults stay under max_attempts, so the job must complete")
}

proptest! {
    /// Parallelism never changes results; counters stay consistent.
    #[test]
    fn engine_is_deterministic_up_to_order(
        docs in proptest::collection::vec("[a-d ]{0,30}", 0..40),
        map_slots in 1usize..8,
        reduce_tasks in 1usize..6,
    ) {
        let cfg = JobConfig { map_slots, reduce_tasks, ..JobConfig::default() };
        let (mut out_a, stats) = wordcount(docs.clone(), &cfg, None);
        let (mut out_b, _) = wordcount(docs.clone(), &JobConfig::default(), None);
        out_a.sort();
        out_b.sort();
        prop_assert_eq!(&out_a, &out_b);
        // Conservation: input words == sum of counts.
        let words: u64 = docs.iter().map(|d| d.split_whitespace().count() as u64).sum();
        let counted: u64 = out_a.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(words, counted);
        prop_assert!(stats.combine_output_records <= stats.map_output_records);
        prop_assert!(stats.reduce_output_records as usize == out_a.len());
    }

    /// Exactly-once under faults: for any seeded chaos plan whose
    /// failures stay under `max_attempts`, the fault-injected run's
    /// output and dataflow counters (records/bytes, not timings or
    /// recovery counters) are identical to the fault-free run.
    #[test]
    fn faulted_runs_match_fault_free_runs_exactly(
        docs in proptest::collection::vec("[a-d ]{0,30}", 0..40),
        map_tasks in 1usize..8,
        reduce_tasks in 1usize..5,
        seed in 0u64..1_000_000,
        fault_prob in 0.0f64..0.9,
    ) {
        let cfg = JobConfig { map_tasks, reduce_tasks, ..JobConfig::default() };
        // Up to 2 faulted attempts per task < max_attempts (4), so the
        // chaos run always completes.
        let plan = FaultPlan::chaos(
            seed,
            ChaosSpec { fault_prob, max_faulted_attempt: 2, slowdown_ms: 1 },
        );
        let (mut clean_out, clean_stats) = wordcount(docs.clone(), &cfg, None);
        let (mut chaos_out, chaos_stats) = wordcount(docs, &cfg, Some(&plan));
        clean_out.sort();
        chaos_out.sort();
        prop_assert_eq!(chaos_out, clean_out);
        prop_assert_eq!(chaos_stats.data_counters(), clean_stats.data_counters());
    }

    /// Cluster makespans are positive, finite, and monotone in slaves.
    #[test]
    fn makespan_monotone_in_slaves(
        input_gb in 1.0f64..400.0,
        cpu in 1.0f64..400.0,
        shuffle in 0.0f64..2.0,
        output in 0.0f64..2.0,
    ) {
        let job = JobModel {
            name: "prop".into(),
            input_gb,
            map_cpu_secs_per_gb: cpu,
            shuffle_ratio: shuffle,
            reduce_cpu_secs_per_gb: cpu / 2.0,
            output_ratio: output,
            iterations: 1,
        };
        let mut prev = f64::INFINITY;
        for slaves in [1u32, 2, 4, 8] {
            let run = simulate(&ClusterConfig::paper(slaves), &job);
            prop_assert!(run.makespan_secs.is_finite() && run.makespan_secs > 0.0);
            prop_assert!(
                run.makespan_secs <= prev * 1.05,
                "{slaves} slaves should not be materially slower"
            );
            prev = run.makespan_secs;
        }
        let s8 = speedup(&job, 8);
        prop_assert!((0.9..=8.6).contains(&s8), "8-slave speedup {s8}");
    }

    /// A failed cluster never beats a healthy one, and never errors.
    #[test]
    fn failed_clusters_are_slower_never_broken(
        input_gb in 1.0f64..400.0,
        cpu in 1.0f64..400.0,
        at_secs in 0.0f64..2_000.0,
    ) {
        use dc_mapreduce::cluster::{simulate_with_failures, FailureModel};
        let job = JobModel {
            name: "prop-fail".into(),
            input_gb,
            map_cpu_secs_per_gb: cpu,
            shuffle_ratio: 0.5,
            reduce_cpu_secs_per_gb: cpu / 2.0,
            output_ratio: 0.5,
            iterations: 1,
        };
        let base = simulate(&ClusterConfig::paper(8), &job);
        let run = simulate_with_failures(
            &ClusterConfig::paper(8),
            &job,
            &FailureModel::single_loss(at_secs),
        );
        prop_assert!(run.makespan_secs.is_finite());
        prop_assert!(run.makespan_secs >= base.makespan_secs - 1e-9);
        prop_assert!(run.reexecuted_work_secs >= 0.0);
        prop_assert!(run.rereplicated_mb >= 0.0);
    }
}
