//! Property-based invariants of the MapReduce engine and cluster model.

use dc_mapreduce::cluster::{simulate, speedup, ClusterConfig, JobModel};
use dc_mapreduce::engine::{run_job, JobConfig};
use proptest::prelude::*;

fn wordcount(
    lines: Vec<String>,
    cfg: &JobConfig,
) -> (Vec<(String, u64)>, dc_mapreduce::JobStats) {
    run_job(
        lines,
        cfg,
        |line: String, emit: &mut dyn FnMut(String, u64)| {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        },
        Some(&|_k: &String, vs: &[u64]| vec![vs.iter().sum::<u64>()]),
        |k: &String, vs: &[u64]| vec![(k.clone(), vs.iter().sum::<u64>())],
    )
}

proptest! {
    /// Parallelism never changes results; counters stay consistent.
    #[test]
    fn engine_is_deterministic_up_to_order(
        docs in proptest::collection::vec("[a-d ]{0,30}", 0..40),
        map_slots in 1usize..8,
        reduce_tasks in 1usize..6,
    ) {
        let mut cfg = JobConfig::default();
        cfg.map_slots = map_slots;
        cfg.reduce_tasks = reduce_tasks;
        let (mut out_a, stats) = wordcount(docs.clone(), &cfg);
        let (mut out_b, _) = wordcount(docs.clone(), &JobConfig::default());
        out_a.sort();
        out_b.sort();
        prop_assert_eq!(&out_a, &out_b);
        // Conservation: input words == sum of counts.
        let words: u64 = docs.iter().map(|d| d.split_whitespace().count() as u64).sum();
        let counted: u64 = out_a.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(words, counted);
        prop_assert!(stats.combine_output_records <= stats.map_output_records);
        prop_assert!(stats.reduce_output_records as usize == out_a.len());
    }

    /// Cluster makespans are positive, finite, and monotone in slaves.
    #[test]
    fn makespan_monotone_in_slaves(
        input_gb in 1.0f64..400.0,
        cpu in 1.0f64..400.0,
        shuffle in 0.0f64..2.0,
        output in 0.0f64..2.0,
    ) {
        let job = JobModel {
            name: "prop".into(),
            input_gb,
            map_cpu_secs_per_gb: cpu,
            shuffle_ratio: shuffle,
            reduce_cpu_secs_per_gb: cpu / 2.0,
            output_ratio: output,
            iterations: 1,
        };
        let mut prev = f64::INFINITY;
        for slaves in [1u32, 2, 4, 8] {
            let run = simulate(&ClusterConfig::paper(slaves), &job);
            prop_assert!(run.makespan_secs.is_finite() && run.makespan_secs > 0.0);
            prop_assert!(
                run.makespan_secs <= prev * 1.05,
                "{slaves} slaves should not be materially slower"
            );
            prev = run.makespan_secs;
        }
        let s8 = speedup(&job, 8);
        prop_assert!(s8 >= 0.9 && s8 <= 8.6, "8-slave speedup {s8}");
    }
}
