//! # dc-suites — the comparison workload suites
//!
//! The paper contrasts its eleven data-analysis workloads against
//! desktop (SPEC CPU2006), HPC (HPCC 1.4), traditional server
//! (SPECweb2005) and scale-out service (CloudSuite) benchmarks. This
//! crate provides runnable equivalents of the parts that are pure
//! algorithms or reproducible server logic:
//!
//! * [`hpcc`] — real implementations of the seven HPCC kernels the paper
//!   runs: HPL (LU solve), DGEMM, STREAM, PTRANS, RandomAccess (GUPS),
//!   FFT, and a COMM latency/bandwidth model;
//! * [`services`] — miniature but functional service engines matching the
//!   paper's CloudSuite/SPECweb setups: a Cassandra-style KV store under
//!   a YCSB 50/50 driver, a Darwin-style media-streaming session server,
//!   a Nutch-style inverted-index web search, an Olio-style web-serving
//!   front end, a Cloud9-style symbolic-execution engine, and a
//!   SPECweb2005-style banking backend.
//!
//! SPEC CPU2006 itself is proprietary; it is represented only by
//! calibrated workload profiles in `dcbench::profiles` (see DESIGN.md's
//! substitution table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hpcc;
pub mod services;
