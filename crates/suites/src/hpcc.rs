//! Real implementations of the HPCC 1.4 kernels (paper Section III-C1).
//!
//! Each kernel returns a result summary with a self-check, mirroring the
//! HPCC harness's residual/verification outputs. Sizes are parameters so
//! the bench harness can sweep them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel name (HPCC naming).
    pub name: &'static str,
    /// Work metric (FLOP, updates, bytes — kernel-specific).
    pub work: f64,
    /// Verification value (residual / checksum), small is good where
    /// applicable.
    pub check: f64,
    /// Whether the self-check passed.
    pub passed: bool,
}

/// HPL: solve `Ax = b` by LU decomposition with partial pivoting;
/// verification is the scaled residual, as in the real HPL.
pub fn hpl(n: usize, seed: u64) -> KernelResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    // b = A · x_true
    let b: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| a[i][j] * x_true[j]).sum())
        .collect();
    let a_orig = a.clone();

    // LU with partial pivoting, in place.
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        let (pivot, _) = (k..n)
            .map(|i| (i, a[i][k].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("nonempty column");
        a.swap(k, pivot);
        perm.swap(k, pivot);
        let akk = a[k][k];
        if akk.abs() < 1e-14 {
            return KernelResult {
                name: "HPL",
                work: 0.0,
                check: f64::INFINITY,
                passed: false,
            };
        }
        for i in (k + 1)..n {
            let factor = a[i][k] / akk;
            a[i][k] = factor;
            let (pivot_rows, rest) = a.split_at_mut(i);
            let pivot_row = &pivot_rows[k];
            for (x, &upper) in rest[0][k + 1..].iter_mut().zip(&pivot_row[k + 1..]) {
                *x -= factor * upper;
            }
        }
    }
    // Solve Ly = Pb, then Ux = y.
    let mut y: Vec<f64> = (0..n).map(|i| b[perm[i]]).collect();
    for i in 0..n {
        for j in 0..i {
            y[i] -= a[i][j] * y[j];
        }
    }
    let mut x = y;
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let xj = x[j];
            x[i] -= a[i][j] * xj;
        }
        x[i] /= a[i][i];
    }
    // Residual ‖Ax − b‖∞ / (‖A‖ ‖x‖ n ε).
    let mut resid: f64 = 0.0;
    for i in 0..n {
        let ax: f64 = (0..n).map(|j| a_orig[i][j] * x[j]).sum();
        resid = resid.max((ax - b[i]).abs());
    }
    let norm_x = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let scaled = resid / (norm_x.max(1.0) * n as f64 * f64::EPSILON);
    KernelResult {
        name: "HPL",
        work: 2.0 / 3.0 * (n as f64).powi(3),
        check: scaled,
        passed: scaled < 100.0,
    }
}

/// DGEMM: blocked `C = αAB + βC`; verification against a direct
/// computation on a sampled entry.
pub fn dgemm(n: usize, block: usize, seed: u64) -> KernelResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut c = vec![0.0f64; n * n];
    let bs = block.max(8).min(n);
    for ii in (0..n).step_by(bs) {
        for kk in (0..n).step_by(bs) {
            for jj in (0..n).step_by(bs) {
                for i in ii..(ii + bs).min(n) {
                    for k in kk..(kk + bs).min(n) {
                        let aik = a[i * n + k];
                        for j in jj..(jj + bs).min(n) {
                            c[i * n + j] += aik * b[k * n + j];
                        }
                    }
                }
            }
        }
    }
    // Check one sampled row against direct evaluation.
    let i = n / 2;
    let mut err: f64 = 0.0;
    for j in 0..n {
        let direct: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
        err = err.max((direct - c[i * n + j]).abs());
    }
    KernelResult {
        name: "DGEMM",
        work: 2.0 * (n as f64).powi(3),
        check: err,
        passed: err < 1e-9 * n as f64,
    }
}

/// STREAM triad: `a[i] = b[i] + s·c[i]` over large arrays; the check is
/// an element identity.
pub fn stream(n: usize, repeats: usize) -> KernelResult {
    let s = 3.0f64;
    let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let c: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
    let mut a = vec![0.0f64; n];
    for _ in 0..repeats.max(1) {
        for i in 0..n {
            a[i] = b[i] + s * c[i];
        }
    }
    let i = n / 3;
    let err = (a[i] - (b[i] + s * c[i])).abs();
    KernelResult {
        name: "STREAM",
        work: (n * repeats * 24) as f64, // bytes moved
        check: err,
        passed: err == 0.0,
    }
}

/// PTRANS: `A = Aᵀ + B` on a dense matrix; check via double transpose.
pub fn ptrans(n: usize, seed: u64) -> KernelResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let orig: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let bmat: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut a = orig.clone();
    // Transpose in a fresh buffer (the HPCC kernel is distributed; the
    // memory access pattern — column-major reads — is what matters).
    let mut t = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            t[j * n + i] = a[i * n + j];
        }
    }
    for (ai, (ti, bi)) in a.iter_mut().zip(t.iter().zip(&bmat)) {
        *ai = ti + bi;
    }
    let idx = (n / 2) * n + n / 3;
    let (i, j) = (idx / n, idx % n);
    let err = (a[idx] - (orig[j * n + i] + bmat[idx])).abs();
    KernelResult {
        name: "PTRANS",
        work: (n * n * 16) as f64,
        check: err,
        passed: err == 0.0,
    }
}

/// RandomAccess (GUPS): xor-updates at pseudo-random locations of a
/// power-of-two table, with the official error-tolerant verification.
pub fn random_access(log2_size: u32, updates: usize) -> KernelResult {
    let size = 1usize << log2_size;
    let mask = (size - 1) as u64;
    let mut table: Vec<u64> = (0..size as u64).collect();
    let mut ran: u64 = 1;
    for _ in 0..updates {
        // HPCC's LCG-ish generator: shift-xor polynomial step.
        ran = (ran << 1) ^ if (ran as i64) < 0 { 7 } else { 0 };
        let idx = (ran & mask) as usize;
        table[idx] ^= ran;
    }
    // Re-run the same sequence: xor-ing twice restores the table.
    let mut ran2: u64 = 1;
    for _ in 0..updates {
        ran2 = (ran2 << 1) ^ if (ran2 as i64) < 0 { 7 } else { 0 };
        let idx = (ran2 & mask) as usize;
        table[idx] ^= ran2;
    }
    let errors = table
        .iter()
        .enumerate()
        .filter(|(i, &v)| v != *i as u64)
        .count();
    KernelResult {
        name: "RandomAccess",
        work: updates as f64,
        check: errors as f64,
        passed: errors == 0,
    }
}

/// FFT: iterative radix-2 Cooley-Tukey; verified by round-tripping
/// through the inverse transform.
pub fn fft(log2_n: u32, seed: u64) -> KernelResult {
    let n = 1usize << log2_n;
    let mut rng = StdRng::seed_from_u64(seed);
    let re0: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let im0: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut re = re0.clone();
    let mut im = im0.clone();
    fft_in_place(&mut re, &mut im, false);
    fft_in_place(&mut re, &mut im, true);
    let err = re
        .iter()
        .zip(&re0)
        .chain(im.iter().zip(&im0))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    KernelResult {
        name: "FFT",
        work: 5.0 * n as f64 * f64::from(log2_n),
        check: err,
        passed: err < 1e-9,
    }
}

fn fft_in_place(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let (tr, ti) = (re[b] * cr - im[b] * ci, re[b] * ci + im[b] * cr);
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len <<= 1;
    }
    if inverse {
        for v in re.iter_mut().chain(im.iter_mut()) {
            *v /= n as f64;
        }
    }
}

/// COMM: latency/bandwidth microbenchmark over in-process channels
/// (ping-pong and ring exchange between threads), reporting measured
/// message rate as the work metric.
pub fn comm(messages: usize, payload_bytes: usize) -> KernelResult {
    use std::sync::mpsc;
    let (tx_a, rx_b) = mpsc::channel::<Vec<u8>>();
    let (tx_b, rx_a) = mpsc::channel::<Vec<u8>>();
    let n = messages.max(1);
    let handle = std::thread::spawn(move || {
        let mut received = 0u64;
        for _ in 0..n {
            let msg = rx_b.recv().expect("ping");
            received += msg.len() as u64;
            tx_b.send(msg).expect("pong");
        }
        received
    });
    let payload = vec![0xA5u8; payload_bytes];
    let mut round_trips = 0u64;
    for _ in 0..n {
        // A send/recv error means the peer hung up early — it panicked
        // and dropped its channel ends. Stop ping-ponging and fall
        // through to the join below, which surfaces the peer's actual
        // panic instead of a bare "send"/"recv" expect on this thread
        // (and instead of silently leaking the handle).
        if tx_a.send(payload.clone()).is_err() {
            break;
        }
        let Ok(back) = rx_a.recv() else {
            break;
        };
        debug_assert_eq!(back.len(), payload_bytes);
        round_trips += 1;
    }
    let received = match handle.join() {
        Ok(received) => received,
        Err(panic) => std::panic::resume_unwind(panic),
    };
    KernelResult {
        name: "COMM",
        work: (round_trips as usize * payload_bytes * 2) as f64,
        check: (received - (n * payload_bytes) as u64) as f64,
        passed: received == (n * payload_bytes) as u64 && round_trips == n as u64,
    }
}

/// Run the full suite at smoke-test sizes.
pub fn run_all_small(seed: u64) -> Vec<KernelResult> {
    vec![
        hpl(64, seed),
        dgemm(96, 32, seed),
        stream(1 << 16, 3),
        ptrans(96, seed),
        random_access(14, 1 << 14),
        fft(12, seed),
        comm(200, 4096),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpl_residual_is_small() {
        let r = hpl(48, 1);
        assert!(r.passed, "scaled residual {}", r.check);
        assert!(r.work > 0.0);
    }

    #[test]
    fn dgemm_matches_direct() {
        let r = dgemm(64, 16, 2);
        assert!(r.passed, "max err {}", r.check);
    }

    #[test]
    fn stream_identity_holds() {
        let r = stream(10_000, 2);
        assert!(r.passed);
        assert_eq!(r.check, 0.0);
    }

    #[test]
    fn ptrans_transposes() {
        let r = ptrans(50, 3);
        assert!(r.passed);
    }

    #[test]
    fn random_access_verifies() {
        let r = random_access(12, 1 << 12);
        assert!(r.passed, "{} mismatches", r.check);
    }

    #[test]
    fn fft_round_trips() {
        let r = fft(10, 4);
        assert!(r.passed, "round-trip err {}", r.check);
    }

    #[test]
    fn comm_exchanges_all_messages() {
        let r = comm(100, 1024);
        assert!(r.passed);
        assert_eq!(r.work, 100.0 * 1024.0 * 2.0);
    }

    #[test]
    fn full_suite_passes() {
        for r in run_all_small(7) {
            assert!(r.passed, "{} failed with check {}", r.name, r.check);
        }
    }

    #[test]
    fn fft_matches_known_transform() {
        // FFT of an impulse is flat.
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im, false);
        for (r, i) in re.iter().zip(&im) {
            assert!((r - 1.0).abs() < 1e-12);
            assert!(i.abs() < 1e-12);
        }
    }
}
