//! Miniature service engines matching the paper's CloudSuite/SPECweb
//! setups (Section III-C2).
//!
//! Each engine is small but *functional* — requests execute real logic
//! against real data structures — so the service workloads exist as
//! runnable programs, not just profiles. Their micro-architectural
//! characterization still comes from calibrated profiles (DESIGN.md §2):
//! the original stacks (Cassandra, Darwin, Nutch, Olio, Cloud9, the
//! SPECweb banking app) are JVM/C++ servers we cannot re-create
//! faithfully at that level.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Throughput-style result for one service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceResult {
    /// Operations completed.
    pub operations: u64,
    /// Operations that returned/validated successfully.
    pub successes: u64,
}

/// Data Serving: a Cassandra-style KV store driven by a YCSB-like client
/// with a 50:50 read/update mix over a Zipf key distribution (the
/// paper benchmarks Cassandra 0.7.3 with 30M records and a 50:50 YCSB
/// mix).
pub mod data_serving {
    use super::*;

    /// The store: keyed rows of field maps, as in YCSB's usertable.
    #[derive(Debug, Default)]
    pub struct KvStore {
        rows: HashMap<u64, Vec<u8>>,
    }

    impl KvStore {
        /// Load `records` rows of `value_bytes` each.
        pub fn load(records: u64, value_bytes: usize) -> Self {
            let mut rows = HashMap::with_capacity(records as usize);
            for k in 0..records {
                rows.insert(k, vec![(k % 251) as u8; value_bytes]);
            }
            KvStore { rows }
        }

        /// Read a row.
        pub fn read(&self, key: u64) -> Option<&Vec<u8>> {
            self.rows.get(&key)
        }

        /// Update a row; returns whether the key existed.
        pub fn update(&mut self, key: u64, value: Vec<u8>) -> bool {
            self.rows.insert(key, value).is_some()
        }

        /// Number of rows.
        pub fn len(&self) -> usize {
            self.rows.len()
        }

        /// Whether the store is empty.
        pub fn is_empty(&self) -> bool {
            self.rows.is_empty()
        }
    }

    /// Run a YCSB-like 50:50 read/update workload with Zipf-skewed keys.
    pub fn run(store: &mut KvStore, ops: u64, seed: u64) -> ServiceResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = store.len().max(1) as u64;
        let mut successes = 0;
        for _ in 0..ops {
            // Approximate Zipf: squash a uniform draw toward 0.
            let u: f64 = rng.gen();
            let key = ((u * u * u) * n as f64) as u64 % n;
            if rng.gen_bool(0.5) {
                if store.read(key).is_some() {
                    successes += 1;
                }
            } else if store.update(key, vec![rng.gen(); 100]) {
                successes += 1;
            }
        }
        ServiceResult {
            operations: ops,
            successes,
        }
    }
}

/// Media Streaming: a Darwin-style session server pacing chunked video
/// delivery (the paper: 20 processes, GetMediumLow/GetShortHi mix).
pub mod media_streaming {
    use super::*;

    /// One client session's state.
    #[derive(Debug, Clone, Copy)]
    struct Session {
        remaining_chunks: u32,
        bitrate_kbps: u32,
    }

    /// Serve `sessions` sessions to completion in round-robin chunk
    /// order; returns chunks delivered and total bytes as successes/work.
    pub fn run(sessions: u32, seed: u64) -> ServiceResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut active: Vec<Session> = (0..sessions)
            .map(|_| {
                // 70:30 medium-low / short-high mix, as configured.
                if rng.gen_bool(0.7) {
                    Session {
                        remaining_chunks: 120,
                        bitrate_kbps: 500,
                    }
                } else {
                    Session {
                        remaining_chunks: 30,
                        bitrate_kbps: 2000,
                    }
                }
            })
            .collect();
        let mut chunks = 0u64;
        let mut bytes = 0u64;
        while !active.is_empty() {
            active.retain_mut(|s| {
                chunks += 1;
                bytes += u64::from(s.bitrate_kbps) * 128; // 1 s of media
                s.remaining_chunks -= 1;
                s.remaining_chunks > 0
            });
        }
        ServiceResult {
            operations: chunks,
            successes: bytes / 1024,
        }
    }
}

/// Web Search: a Nutch-style inverted index with ranked conjunctive
/// queries (the paper: distributed Nutch 1.1 index server).
pub mod web_search {
    use super::*;

    /// Inverted index: term → postings (doc id, term frequency).
    #[derive(Debug, Default)]
    pub struct Index {
        postings: HashMap<String, Vec<(u32, u32)>>,
        doc_len: Vec<u32>,
    }

    impl Index {
        /// Build from documents.
        pub fn build(docs: &[String]) -> Self {
            let mut postings: HashMap<String, Vec<(u32, u32)>> = HashMap::new();
            let mut doc_len = Vec::with_capacity(docs.len());
            for (id, doc) in docs.iter().enumerate() {
                let mut tf: HashMap<&str, u32> = HashMap::new();
                let mut len = 0;
                for w in doc.split_whitespace() {
                    *tf.entry(w).or_insert(0) += 1;
                    len += 1;
                }
                doc_len.push(len);
                for (w, f) in tf {
                    postings
                        .entry(w.to_string())
                        .or_default()
                        .push((id as u32, f));
                }
            }
            Index { postings, doc_len }
        }

        /// Ranked conjunctive search: returns top-`k` doc ids by a
        /// TF-IDF-flavoured score.
        pub fn search(&self, terms: &[&str], k: usize) -> Vec<u32> {
            let n_docs = self.doc_len.len() as f64;
            let mut scores: HashMap<u32, (usize, f64)> = HashMap::new();
            for t in terms {
                let Some(list) = self.postings.get(*t) else {
                    continue;
                };
                let idf = (n_docs / list.len() as f64).ln().max(0.0);
                for &(doc, tf) in list {
                    let entry = scores.entry(doc).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += f64::from(tf) * idf / f64::from(self.doc_len[doc as usize].max(1));
                }
            }
            // Conjunctive: docs containing all present terms rank first.
            let mut hits: Vec<(u32, (usize, f64))> = scores.into_iter().collect();
            hits.sort_by(|a, b| {
                b.1 .0
                    .cmp(&a.1 .0)
                    .then(b.1 .1.partial_cmp(&a.1 .1).expect("finite scores"))
                    .then(a.0.cmp(&b.0))
            });
            hits.into_iter().take(k).map(|(d, _)| d).collect()
        }
    }

    /// Drive `queries` random 2-3 term queries against the index.
    pub fn run(index: &Index, vocabulary: &[String], queries: u64, seed: u64) -> ServiceResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut successes = 0;
        for _ in 0..queries {
            let nterms = rng.gen_range(2..4usize);
            let terms: Vec<&str> = (0..nterms)
                .map(|_| vocabulary[rng.gen_range(0..vocabulary.len())].as_str())
                .collect();
            if !index.search(&terms, 10).is_empty() {
                successes += 1;
            }
        }
        ServiceResult {
            operations: queries,
            successes,
        }
    }
}

/// Web Serving: an Olio-style social-events front end — session state,
/// page assembly from templates, and a small event database.
pub mod web_serving {
    use super::*;

    /// The application state.
    #[derive(Debug)]
    pub struct App {
        events: Vec<(String, String)>,
        sessions: HashMap<u64, u32>,
    }

    impl App {
        /// Create with `n` seeded events.
        pub fn new(n: usize) -> Self {
            App {
                events: (0..n)
                    .map(|i| (format!("event{i}"), format!("venue{}", i % 37)))
                    .collect(),
                sessions: HashMap::new(),
            }
        }

        /// Handle one page request for `user`; returns rendered length.
        pub fn handle(&mut self, user: u64, page: usize) -> usize {
            let views = self.sessions.entry(user).or_insert(0);
            *views += 1;
            let mut html = String::from("<html><body><ul>");
            for (name, venue) in self
                .events
                .iter()
                .cycle()
                .skip(page % self.events.len().max(1))
                .take(10)
            {
                html.push_str("<li>");
                html.push_str(name);
                html.push_str(" @ ");
                html.push_str(venue);
                html.push_str("</li>");
            }
            html.push_str(&format!("</ul><p>views: {views}</p></body></html>"));
            html.len()
        }
    }

    /// Simulate `users` concurrent users issuing `requests` total.
    pub fn run(app: &mut App, users: u64, requests: u64, seed: u64) -> ServiceResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut successes = 0;
        for _ in 0..requests {
            let user = rng.gen_range(0..users.max(1));
            if app.handle(user, rng.gen_range(0..1000)) > 0 {
                successes += 1;
            }
        }
        ServiceResult {
            operations: requests,
            successes,
        }
    }
}

/// Software Testing: a Cloud9-style symbolic-execution engine exploring
/// all paths of a tiny branching program (the paper runs the `printf.bc`
/// coreutils binary under Cloud9).
pub mod software_testing {
    /// A tiny branching program over one symbolic integer input:
    /// a decision tree of comparisons, as symbolic executors see.
    #[derive(Debug, Clone)]
    pub enum Prog {
        /// Leaf: a concrete outcome id.
        Leaf(u32),
        /// `if input < pivot { then } else { els }`.
        Branch {
            /// Comparison pivot.
            pivot: i64,
            /// Taken subtree.
            then: Box<Prog>,
            /// Not-taken subtree.
            els: Box<Prog>,
        },
    }

    impl Prog {
        /// A complete comparison tree of the given depth.
        pub fn tree(depth: u32, lo: i64, hi: i64) -> Prog {
            if depth == 0 || hi - lo <= 1 {
                Prog::Leaf((lo & 0xFFFF) as u32)
            } else {
                let mid = lo + (hi - lo) / 2;
                Prog::Branch {
                    pivot: mid,
                    then: Box::new(Prog::tree(depth - 1, lo, mid)),
                    els: Box::new(Prog::tree(depth - 1, mid, hi)),
                }
            }
        }
    }

    /// Explore every feasible path, propagating interval constraints
    /// (the symbolic store); returns explored paths and feasible leaves.
    pub fn explore(prog: &Prog) -> super::ServiceResult {
        let mut stack = vec![(prog, i64::MIN, i64::MAX)];
        let mut paths = 0u64;
        let mut feasible = 0u64;
        while let Some((node, lo, hi)) = stack.pop() {
            paths += 1;
            match node {
                Prog::Leaf(_) => feasible += 1,
                Prog::Branch { pivot, then, els } => {
                    // then-branch constraint: input < pivot.
                    if lo < *pivot {
                        stack.push((then, lo, (*pivot).min(hi)));
                    }
                    // else-branch constraint: input >= pivot (`hi` is
                    // exclusive, so feasibility needs hi > pivot).
                    if hi > *pivot {
                        stack.push((els, (*pivot).max(lo), hi));
                    }
                }
            }
        }
        super::ServiceResult {
            operations: paths,
            successes: feasible,
        }
    }
}

/// SPECweb2005-style banking backend: account store with a transaction
/// mix (the paper runs the bank application with 3000 sessions).
pub mod specweb_bank {
    use super::*;

    /// The bank: balances in cents.
    #[derive(Debug, Default)]
    pub struct Bank {
        accounts: Vec<i64>,
    }

    impl Bank {
        /// Create `n` accounts with 1000.00 each.
        pub fn new(n: usize) -> Self {
            Bank {
                accounts: vec![100_000; n],
            }
        }

        /// Total money in the bank (conserved by transfers).
        pub fn total(&self) -> i64 {
            self.accounts.iter().sum()
        }
    }

    /// Run a SPECweb-like mix: 60 % balance checks, 30 % transfers,
    /// 10 % statements (scans).
    pub fn run(bank: &mut Bank, requests: u64, seed: u64) -> ServiceResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = bank.accounts.len().max(2);
        let mut successes = 0;
        for _ in 0..requests {
            let p: f64 = rng.gen();
            if p < 0.6 {
                let a = rng.gen_range(0..n);
                if bank.accounts[a] >= 0 {
                    successes += 1;
                }
            } else if p < 0.9 {
                let from = rng.gen_range(0..n);
                let to = rng.gen_range(0..n);
                let amount = rng.gen_range(1..5_000i64);
                if from != to && bank.accounts[from] >= amount {
                    bank.accounts[from] -= amount;
                    bank.accounts[to] += amount;
                    successes += 1;
                }
            } else {
                // Statement: scan a window of accounts.
                let start = rng.gen_range(0..n);
                let sum: i64 = bank.accounts.iter().cycle().skip(start).take(32).sum();
                if sum != i64::MIN {
                    successes += 1;
                }
            }
        }
        ServiceResult {
            operations: requests,
            successes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_store_serves_reads_and_updates() {
        let mut store = data_serving::KvStore::load(1000, 100);
        assert_eq!(store.len(), 1000);
        let result = data_serving::run(&mut store, 5000, 1);
        assert_eq!(result.operations, 5000);
        assert!(result.successes as f64 / result.operations as f64 > 0.95);
    }

    #[test]
    fn media_streaming_delivers_all_sessions() {
        let result = media_streaming::run(50, 2);
        // 70/30 mix of 120- and 30-chunk sessions: between 1500 and 6000.
        assert!(result.operations >= 1500 && result.operations <= 6000);
        assert!(result.successes > 0, "bytes were streamed");
    }

    #[test]
    fn web_search_finds_indexed_terms() {
        let docs = vec![
            "rust systems programming".to_string(),
            "rust web services".to_string(),
            "cooking with spice".to_string(),
        ];
        let index = web_search::Index::build(&docs);
        let hits = index.search(&["rust", "web"], 10);
        assert_eq!(hits.first(), Some(&1), "doc 1 matches both terms");
        assert!(index.search(&["absent"], 10).is_empty());
    }

    #[test]
    fn web_search_ranking_prefers_conjunctive_matches() {
        let docs = vec![
            "a a a b".to_string(), // high tf for a
            "a b c d".to_string(), // contains all three query terms? no c...
            "a b c".to_string(),
        ];
        let index = web_search::Index::build(&docs);
        let hits = index.search(&["a", "b", "c"], 3);
        assert_eq!(hits[0], 2, "doc with all terms first");
    }

    #[test]
    fn web_serving_tracks_sessions() {
        let mut app = web_serving::App::new(100);
        let r = web_serving::run(&mut app, 10, 500, 3);
        assert_eq!(r.operations, 500);
        assert_eq!(r.successes, 500);
    }

    #[test]
    fn symbolic_execution_explores_all_leaves() {
        let prog = software_testing::Prog::tree(6, 0, 64);
        let result = software_testing::explore(&prog);
        assert_eq!(result.successes, 64, "complete tree of depth 6 over [0,64)");
        assert!(result.operations > result.successes);
    }

    #[test]
    fn symbolic_execution_prunes_infeasible_paths() {
        // Nested identical comparisons: the inner else under the outer
        // then is infeasible.
        use software_testing::Prog;
        let prog = Prog::Branch {
            pivot: 10,
            then: Box::new(Prog::Branch {
                pivot: 10,
                then: Box::new(Prog::Leaf(1)),
                els: Box::new(Prog::Leaf(2)), // infeasible: x<10 ∧ x≥10
            }),
            els: Box::new(Prog::Leaf(3)),
        };
        let result = software_testing::explore(&prog);
        assert_eq!(result.successes, 2, "only two feasible leaves");
    }

    #[test]
    fn bank_conserves_money() {
        let mut bank = specweb_bank::Bank::new(500);
        let before = bank.total();
        let r = specweb_bank::run(&mut bank, 10_000, 4);
        assert_eq!(bank.total(), before, "transfers conserve total balance");
        assert!(r.successes > 8_000);
    }

    #[test]
    fn ycsb_mix_is_roughly_half_reads() {
        // Statistical sanity on the driver itself: successes track ops
        // because the key space is dense.
        let mut store = data_serving::KvStore::load(100, 10);
        let r = data_serving::run(&mut store, 2000, 5);
        assert!(r.successes >= 1900);
    }
}
