//! Property-based laws of the metrics histogram.
//!
//! Three invariants carry the determinism contract:
//!
//! 1. **Merge is lossless**: `merge(a, b)` is indistinguishable from
//!    feeding both observation streams into one histogram — the license
//!    for combining per-worker shards without bias.
//! 2. **Quantile bounds bracket the truth**: for any stream and any
//!    quantile, the exact rank-order statistic lies inside
//!    `quantile_bounds`, and the reported upper bound never understates
//!    it (it is the SLO-safe direction).
//! 3. **Growth is monotone**: inserting another observation never
//!    decreases count, sum, max, any bucket count, or any cumulative
//!    bucket count.

use dc_obs::metrics::{bucket_index, HistogramSnapshot, Registry};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let reg = Registry::new();
    let h = reg.histogram("h", &[]);
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

/// Values spanning every interesting scale: all of bucket 0/1, small
/// powers of two, and the giant end of the u64 line.
struct MixedScale;

impl Strategy for MixedScale {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        match rng.below(4) {
            0 => rng.below(16),
            1 => 16 + rng.below(4080),
            2 => 1u64 << rng.below(64),
            _ => rng.next_u64(),
        }
    }
}

fn value() -> MixedScale {
    MixedScale
}

proptest! {
    /// Law 1: merging two snapshots equals one histogram fed both
    /// streams, field for field.
    #[test]
    fn merge_matches_single_stream(
        a in proptest::collection::vec(value(), 0..200),
        b in proptest::collection::vec(value(), 0..200),
    ) {
        let merged = hist_of(&a).merge(&hist_of(&b));
        let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&both));
    }

    /// Law 2: the true rank statistic sits inside the reported bounds
    /// for every standard quantile.
    #[test]
    fn quantile_bounds_bracket_true_quantile(
        values in proptest::collection::vec(value(), 1..300),
        which in 0usize..5,
    ) {
        const QUANTILES: [(u64, u64); 5] = [(1, 2), (9, 10), (99, 100), (1, 100), (1, 1)];
        let (num, den) = QUANTILES[which];
        let snap = hist_of(&values);
        let mut values = values;
        values.sort_unstable();
        let rank = (num as u128 * values.len() as u128).div_ceil(den as u128) as usize;
        let truth = values[rank - 1];
        let (lo, hi) = snap.quantile_bounds(num, den);
        prop_assert!(lo <= truth && truth <= hi,
            "true q{num}/{den}={truth} outside [{lo}, {hi}]");
        // The two edges belong to one bucket (after min/max clamping).
        prop_assert!(bucket_index(lo) == bucket_index(hi)
            || (lo >= snap.min && hi <= snap.max));
        prop_assert!(snap.quantile_upper(num, den) >= truth);
    }

    /// Law 3: one more observation moves every aggregate the right way.
    #[test]
    fn growth_is_monotone(
        values in proptest::collection::vec(value(), 0..200),
        extra in value(),
    ) {
        let before = hist_of(&values);
        let mut grown = values.clone();
        grown.push(extra);
        let after = hist_of(&grown);

        prop_assert_eq!(after.count, before.count + 1);
        prop_assert!(after.sum >= before.sum);
        prop_assert!(after.max >= before.max);
        prop_assert!(after.min <= before.min || before.count == 0);
        // Sparse bucket counts never shrink…
        for &(upper, n) in &before.buckets {
            let grown_n = after
                .buckets
                .iter()
                .find(|&&(u, _)| u == upper)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            prop_assert!(grown_n >= n, "bucket {upper} shrank");
        }
        // …and exactly one cumulative tail grows by exactly one.
        let cum = |s: &HistogramSnapshot, edge: u64| -> u64 {
            s.buckets.iter().filter(|&&(u, _)| u <= edge).map(|&(_, n)| n).sum()
        };
        for &(upper, _) in &after.buckets {
            let delta = cum(&after, upper) - cum(&before, upper);
            prop_assert!(delta <= 1);
            if upper >= extra {
                prop_assert_eq!(delta, 1, "edge {upper} should cover {extra}");
            }
        }
    }

    /// JSON and text exposition are pure functions of the stream.
    #[test]
    fn exposition_is_deterministic(values in proptest::collection::vec(value(), 0..100)) {
        let build = || {
            let reg = Registry::new();
            let h = reg.histogram("h_us", &[("kind", "wait")]);
            for &v in &values {
                h.observe(v);
            }
            reg.snapshot()
        };
        prop_assert_eq!(build().to_json(), build().to_json());
        prop_assert_eq!(build().render_text(), build().render_text());
    }
}
