//! Edge-case behavior of the ASCII Gantt renderer: degenerate spans,
//! unmatched event pairs and pathological widths must all render
//! without panicking, and identically on every call.

use dc_obs::gantt::{render, GanttConfig};
use dc_obs::{Event, Value};

fn start(seq: u64, ts: u64, task: u64) -> Event {
    Event {
        seq,
        ts,
        kind: "attempt_start",
        fields: vec![
            ("phase", Value::str("map")),
            ("task", Value::U64(task)),
            ("attempt", Value::U64(0)),
        ],
    }
}

fn end(seq: u64, ts: u64, task: u64, outcome: &str) -> Event {
    Event {
        seq,
        ts,
        kind: "attempt_end",
        fields: vec![
            ("phase", Value::str("map")),
            ("task", Value::U64(task)),
            ("attempt", Value::U64(0)),
            ("outcome", Value::str(outcome)),
        ],
    }
}

#[test]
fn zero_duration_span_alone_renders_one_lane() {
    // start == end == the only timestamp: the time axis would be a
    // point, which the renderer widens to one unit instead of
    // dividing by zero.
    let events = vec![start(0, 42, 0), end(1, 42, 0, "ok")];
    let chart = render(&events, &GanttConfig::default());
    assert_eq!(chart.lines().count(), 2, "header + one lane:\n{chart}");
    assert!(chart.contains("t=42..43"), "point axis widened:\n{chart}");
    assert!(chart.contains('|'), "completed marker:\n{chart}");
}

#[test]
fn end_before_start_clamps_to_zero_duration() {
    // A corrupt artifact can carry an end timestamp before its start;
    // the span clamps to zero length rather than underflowing.
    let events = vec![
        start(0, 100, 0),
        end(1, 30, 0, "ok"),
        start(2, 0, 1),
        end(3, 200, 1, "ok"),
    ];
    let chart = render(&events, &GanttConfig::default());
    assert_eq!(chart.lines().count(), 3, "header + two lanes:\n{chart}");
    assert!(chart.contains("map/0/0"));
}

#[test]
fn unmatched_end_is_ignored_and_unmatched_start_stays_open() {
    let events = vec![
        // End with no open lane (wrong task id): dropped.
        end(0, 10, 7, "ok"),
        // Start with no end: runs to the right edge as an open span.
        start(1, 0, 0),
        end(2, 50, 0, "ok"),
        start(3, 20, 1),
    ];
    let chart = render(&events, &GanttConfig::default());
    assert_eq!(chart.lines().count(), 3, "two real lanes only:\n{chart}");
    assert!(
        !chart.contains("map/7/0"),
        "orphan end made a lane:\n{chart}"
    );
    assert!(chart.contains('>'), "open-span marker:\n{chart}");
}

#[test]
fn double_end_closes_the_lane_once() {
    let events = vec![start(0, 0, 0), end(1, 10, 0, "ok"), end(2, 90, 0, "failed")];
    let chart = render(&events, &GanttConfig::default());
    assert_eq!(chart.lines().count(), 2, "one lane:\n{chart}");
    assert!(chart.contains("  ok"), "first close wins:\n{chart}");
    assert!(!chart.contains('x'), "second close ignored:\n{chart}");
}

#[test]
fn spans_longer_than_the_bar_area_compress_into_width() {
    // Ten-million-tick spans against a 24-character bar: everything
    // scales down; no line may exceed label + bar + outcome.
    let cfg = GanttConfig {
        width: 24,
        ..GanttConfig::default()
    };
    let events = vec![
        start(0, 0, 0),
        end(1, 10_000_000, 0, "ok"),
        start(2, 5_000_000, 1),
        end(3, 9_999_999, 1, "failed"),
    ];
    let chart = render(&events, &cfg);
    for line in chart.lines().skip(1) {
        let bar = line
            .split_once('[')
            .and_then(|(_, rest)| rest.split_once(']'))
            .map(|(bar, _)| bar)
            .expect("every lane line frames its bar");
        assert_eq!(bar.len(), 24, "bar overflows its area: {line:?}");
    }
}

#[test]
fn degenerate_width_is_floored_not_panicking() {
    // width 0 would make `bar[b]` index into nothing; the renderer
    // floors the bar area instead.
    let cfg = GanttConfig {
        width: 0,
        ..GanttConfig::default()
    };
    let events = vec![start(0, 0, 0), end(1, 1_000_000, 0, "ok")];
    let chart = render(&events, &cfg);
    assert!(chart.contains('['), "still renders a bar:\n{chart}");
    let bar_len = chart
        .lines()
        .nth(1)
        .and_then(|l| l.split_once('['))
        .and_then(|(_, rest)| rest.split_once(']'))
        .map(|(bar, _)| bar.len())
        .expect("lane line");
    assert_eq!(bar_len, 10, "floored bar area:\n{chart}");
}

#[test]
fn rendering_is_stable_across_calls() {
    let events = vec![
        start(0, 0, 0),
        end(1, 42, 0, "failed"),
        start(2, 13, 1),
        start(3, 99, 2),
        end(4, 100, 2, "killed"),
    ];
    let cfg = GanttConfig::default();
    let first = render(&events, &cfg);
    for _ in 0..10 {
        assert_eq!(render(&events, &cfg), first);
    }
    // Pin the exact layout so accidental formatting drift is loud.
    assert_eq!(
        first,
        "         t=0..100 (3 lanes)\n\
         map/0/0  [=========================x                                  ]  failed\n\
         map/1/0  [        ===================================================>]\n\
         map/2/0  [                                                          =k]  killed\n"
    );
}
