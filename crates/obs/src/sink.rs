//! Event sinks: where an enabled [`Recorder`] puts its events.
//!
//! [`Recorder`]: crate::Recorder

use crate::event::Event;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Destination for recorded events. Implementations must be `Send`
/// (recorders are shared across worker threads); calls arrive already
/// serialized under the recorder's lock.
pub trait Sink: Send {
    /// Record one event.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output (default: no-op).
    fn flush(&mut self) {}
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

/// An in-memory ring keeping the most recent `capacity` events.
///
/// Cloning shares the buffer, so tests keep one handle while the
/// recorder owns the other.
#[derive(Debug, Clone)]
pub struct RingBuffer(Arc<Mutex<Ring>>);

impl RingBuffer {
    /// A ring holding up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBuffer(Arc::new(Mutex::new(Ring {
            cap: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        })))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// Remove and return the buffered events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        self.lock().events.drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of buffered events of one kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.lock().events.iter().filter(|e| e.kind == kind).count()
    }
}

impl Sink for RingBuffer {
    fn record(&mut self, event: &Event) {
        let mut ring = self.lock();
        if ring.events.len() == ring.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

/// Streams events as JSON Lines to any writer. Write errors are
/// swallowed: telemetry must never take down the measurement.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let mut line = event.to_jsonl();
        line.push('\n');
        let _ = self.writer.write_all(line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A shared in-memory byte buffer implementing [`Write`], for tests
/// that want to inspect JSONL output without touching the filesystem.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// Copy of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// The bytes written so far, lossily decoded as UTF-8.
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.contents()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            ts: seq * 10,
            kind: "tick",
            fields: vec![("n", Value::U64(seq))],
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let buf = RingBuffer::new(3);
        let mut sink = buf.clone();
        for i in 0..5 {
            sink.record(&ev(i));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let seqs: Vec<u64> = buf.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(buf.count_kind("tick"), 3);
        assert_eq!(buf.count_kind("other"), 0);
    }

    #[test]
    fn ring_take_drains() {
        let buf = RingBuffer::new(4);
        let mut sink = buf.clone();
        sink.record(&ev(0));
        assert!(!buf.is_empty());
        assert_eq!(buf.take().len(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn zero_capacity_ring_still_holds_one() {
        let buf = RingBuffer::new(0);
        let mut sink = buf.clone();
        sink.record(&ev(0));
        sink.record(&ev(1));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn jsonl_sink_appends_newline_per_event() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::new(buf.clone());
        sink.record(&ev(0));
        sink.record(&ev(1));
        sink.flush();
        let text = buf.to_string_lossy();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
