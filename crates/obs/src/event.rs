//! The event record and its JSON Lines encoding.

/// A field value. Deliberately tiny: everything the stack reports is a
/// counter, a ratio, a name or a flag.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter (cycles, bytes, task ids…).
    U64(u64),
    /// Signed quantity (deltas that may go negative).
    I64(i64),
    /// Ratio / derived metric (IPC, MPKI…).
    F64(f64),
    /// Name or label.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The contained u64, if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained f64, if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => push_display(out, v),
            Value::I64(v) => push_display(out, v),
            Value::F64(v) if v.is_finite() => push_display(out, v),
            // JSON has no NaN/Inf; encode them as null rather than
            // emitting an invalid line.
            Value::F64(_) => out.push_str("null"),
            Value::Str(s) => write_json_string(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

fn push_display(out: &mut String, v: &impl std::fmt::Display) {
    use std::fmt::Write;
    let _ = write!(out, "{v}");
}

/// Append `s` to `out` as a JSON string literal (quoted, escaped).
/// Shared by the event encoder and the metrics snapshot encoder so
/// every JSON surface in the crate escapes identically.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One structured event. See the crate docs for the `seq`/`ts`
/// contract; field order is preserved exactly as emitted (and is part
/// of the byte-identical JSONL guarantee).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Recorder-assigned sequence number: a gapless total order
    /// consistent with sink order.
    pub seq: u64,
    /// Caller-supplied timestamp in the kind's documented time domain.
    pub ts: u64,
    /// Static tag naming the event schema.
    pub kind: &'static str,
    /// Ordered key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Encode as one JSON Lines record (no trailing newline):
    /// `{"seq":N,"ts":N,"kind":"…","fields":{…}}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        use std::fmt::Write;
        let _ = write!(out, "{{\"seq\":{},\"ts\":{},\"kind\":", self.seq, self.ts);
        write_json_string(&mut out, self.kind);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(fields: Vec<(&'static str, Value)>) -> Event {
        Event {
            seq: 7,
            ts: 1234,
            kind: "test_kind",
            fields,
        }
    }

    #[test]
    fn jsonl_round_trips_every_value_shape() {
        let e = ev(vec![
            ("u", Value::U64(18_446_744_073_709_551_615)),
            ("i", Value::I64(-42)),
            ("f", Value::F64(0.5)),
            ("s", Value::str("sort")),
            ("b", Value::Bool(false)),
        ]);
        assert_eq!(
            e.to_jsonl(),
            "{\"seq\":7,\"ts\":1234,\"kind\":\"test_kind\",\"fields\":\
             {\"u\":18446744073709551615,\"i\":-42,\"f\":0.5,\"s\":\"sort\",\"b\":false}}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = ev(vec![("s", Value::str("a\"b\\c\nd\u{1}"))]);
        assert!(e.to_jsonl().contains("\"a\\\"b\\\\c\\nd\\u0001\""));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let e = ev(vec![("f", Value::F64(f64::NAN))]);
        assert!(e.to_jsonl().contains("\"f\":null"));
    }

    #[test]
    fn field_lookup() {
        let e = ev(vec![("a", Value::U64(1)), ("b", Value::str("x"))]);
        assert_eq!(e.field("a").and_then(Value::as_u64), Some(1));
        assert_eq!(e.field("b").and_then(Value::as_str), Some("x"));
        assert!(e.field("missing").is_none());
        assert_eq!(e.field("a").and_then(Value::as_f64), None);
    }
}
