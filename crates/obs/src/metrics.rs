//! Deterministic process-wide metrics: counters, gauges and
//! log2-bucketed histograms.
//!
//! The paper reduces every workload to counter-derived numbers (IPC,
//! MPKI, stall breakdowns); this module gives the *runtime* the same
//! vocabulary. Where [`crate::Recorder`] is the flight recorder — a
//! totally-ordered stream of individual events — `metrics` is the
//! instrument panel: aggregated values cheap enough to keep hot on
//! every path and snapshot on demand.
//!
//! # Determinism contract
//!
//! Snapshots are **byte-reproducible**: two runs that record the same
//! values produce identical [`MetricsSnapshot`]s, identical JSON and
//! identical text exposition. Everything that makes that true:
//!
//! * counters are `u64`, gauges are `i64`, histogram bounds come from
//!   integer bucket edges — no floating point anywhere;
//! * quantiles are *bounds*, not interpolations: `p99` is the upper
//!   edge of the bucket containing the rank-`ceil(0.99·n)` sample
//!   (clamped to the observed max), computed with integer arithmetic;
//! * snapshots sort by `(name, labels)`, so iteration order of the
//!   sharded registry never leaks into output.
//!
//! # Layout
//!
//! A [`Registry`] is lock-sharded: metric identity hashes (FNV-1a) to
//! one of [`SHARDS`] mutex-guarded maps, so registration from many
//! threads does not serialize on one lock. Registration is the *only*
//! locking operation — the returned [`Counter`]/[`Gauge`]/[`Histogram`]
//! handles are `Arc`s onto atomic cells, so the hot path is a relaxed
//! atomic RMW (plus one load of the registry-wide enabled flag).
//!
//! [`Histogram`] merge is lossless: bucket counts, count and sum add,
//! min/max combine — `merge(a, b)` is indistinguishable from having fed
//! both observation streams into one histogram, which is what lets
//! per-worker shards be combined without bias.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::write_json_string;

/// Number of registry shards. A small power of two: enough to keep
/// registration from serializing, cheap to scan at snapshot time.
pub const SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 holds the value 0, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i - 1]`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower edge of bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

/// An injected time source for latency measurement.
///
/// The daemon runs on [`MonotonicClock`]; tests run on [`FakeClock`] so
/// queue-wait and service-time histograms are byte-reproducible.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary (per-clock) origin. Must be
    /// monotonically non-decreasing.
    fn now_micros(&self) -> u64;
}

/// Wall-clock-free monotonic time anchored at construction.
pub struct MonotonicClock {
    origin: std::time::Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A test clock that only moves when told to. Clones share the same
/// underlying instant, so a test can hold one handle while the system
/// under test holds another.
#[derive(Clone, Default)]
pub struct FakeClock {
    now: Arc<AtomicU64>,
}

impl FakeClock {
    /// A fake clock starting at `t` microseconds.
    pub fn at(t: u64) -> Self {
        let c = FakeClock::default();
        c.set(t);
        c
    }

    /// Jump to an absolute time.
    pub fn set(&self, t: u64) {
        self.now.store(t, Ordering::SeqCst);
    }

    /// Advance by `dt` microseconds.
    pub fn advance(&self, dt: u64) {
        self.now.fetch_add(dt, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` counter handle.
///
/// Clones share one cell. `reset` exists for harness phase boundaries
/// (mirroring `dcbench::cache::clear`) and is the only non-monotonic
/// operation.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Zero the counter (harness phase boundaries only).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A signed gauge handle (instantaneous level: queue depth, busy
/// workers…). Clones share one cell.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>, // stores i64 bits
}

impl Gauge {
    /// Set to an absolute level.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v as u64, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, dv: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(dv as u64, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed) as i64
    }

    /// Zero the gauge (harness phase boundaries only).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A log2-bucketed histogram handle. Clones share one set of cells.
///
/// `observe` is lock-free: one RMW per bucket/count/sum plus
/// `fetch_min`/`fetch_max`. Snapshots taken while observations are in
/// flight are *consistent enough* (each cell individually atomic);
/// byte-reproducibility is guaranteed at quiescent points, which is
/// when the stack snapshots.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cells: Arc<HistCells>,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let c = &self.cells;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a poisoned sum is better than a
        // tiny one.
        let mut sum = c.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(v);
            match c
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => sum = cur,
            }
        }
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.cells;
        let count = c.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in c.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_upper(i), n));
            }
        }
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                c.min.load(Ordering::Relaxed)
            },
            max: c.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Clear all cells (harness phase boundaries only).
    pub fn reset(&self) {
        self.cells.reset();
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Frozen histogram state: exact count/sum/min/max plus the sparse
/// non-empty buckets as `(upper_edge, count)`, ascending by edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets, `(inclusive upper edge, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Deterministic bounds for quantile `num/den` (`0 < num <= den`):
    /// the rank-`ceil(num·n/den)` observation lies in `[lo, hi]`.
    /// Bounds come from the edges of the bucket holding that rank,
    /// clamped to the observed min/max. Returns `(0, 0)` when empty.
    pub fn quantile_bounds(&self, num: u64, den: u64) -> (u64, u64) {
        assert!(num > 0 && num <= den, "quantile must be in (0, 1]");
        if self.count == 0 {
            return (0, 0);
        }
        // rank = ceil(num * count / den), in 1..=count. u128 avoids
        // overflow for num * count.
        let rank = ((num as u128 * self.count as u128).div_ceil(den as u128)) as u64;
        let mut cum = 0u64;
        for &(upper, n) in &self.buckets {
            cum = cum.saturating_add(n);
            if cum >= rank {
                let lower = bucket_lower(bucket_index(upper));
                return (lower.max(self.min), upper.min(self.max));
            }
        }
        // Unreachable for well-formed snapshots; be safe anyway.
        (self.min, self.max)
    }

    /// Upper bound for quantile `num/den` (what the percentile columns
    /// report: a conservative SLO-style "no worse than" figure).
    pub fn quantile_upper(&self, num: u64, den: u64) -> u64 {
        self.quantile_bounds(num, den).1
    }

    /// Upper bound for the median.
    pub fn p50(&self) -> u64 {
        self.quantile_upper(1, 2)
    }

    /// Upper bound for the 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile_upper(9, 10)
    }

    /// Upper bound for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_upper(99, 100)
    }

    /// Lossless merge: equivalent to having fed both observation
    /// streams into one histogram.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count + other.count;
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ua, na)), Some(&&(ub, nb))) => {
                    if ua == ub {
                        buckets.push((ua, na + nb));
                        a.next();
                        b.next();
                    } else if ua < ub {
                        buckets.push((ua, na));
                        a.next();
                    } else {
                        buckets.push((ub, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    buckets.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    buckets.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_add(other.sum),
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: self.max.max(other.max),
            buckets,
        }
    }
}

/// The frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One frozen metric: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name (`snake_case`, `_total` suffix on counters).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// Canonical identity string: `name` or `name{k="v",…}`.
    pub fn key(&self) -> String {
        render_key(&self.name, &self.labels)
    }
}

fn render_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// A frozen, sorted view of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All metrics, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a metric by canonical key (`name` or `name{k="v"}`).
    pub fn get(&self, key: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.key() == key)
    }

    /// Lossless merge with another snapshot (per-worker shards →
    /// process view): counters and gauges add, histograms merge,
    /// metrics present on one side pass through.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = Vec::with_capacity(self.metrics.len() + other.metrics.len());
        let (mut a, mut b) = (
            self.metrics.iter().peekable(),
            other.metrics.iter().peekable(),
        );
        let ord = |m: &MetricSnapshot, n: &MetricSnapshot| {
            (m.name.as_str(), &m.labels).cmp(&(n.name.as_str(), &n.labels))
        };
        loop {
            match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) => match ord(x, y) {
                    std::cmp::Ordering::Less => {
                        out.push(x.clone());
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(y.clone());
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        let value = match (&x.value, &y.value) {
                            (MetricValue::Counter(u), MetricValue::Counter(v)) => {
                                MetricValue::Counter(u + v)
                            }
                            (MetricValue::Gauge(u), MetricValue::Gauge(v)) => {
                                MetricValue::Gauge(u + v)
                            }
                            (MetricValue::Histogram(u), MetricValue::Histogram(v)) => {
                                MetricValue::Histogram(u.merge(v))
                            }
                            _ => panic!("metric {} registered with two different types", x.key()),
                        };
                        out.push(MetricSnapshot {
                            name: x.name.clone(),
                            labels: x.labels.clone(),
                            value,
                        });
                        a.next();
                        b.next();
                    }
                },
                (Some(&x), None) => {
                    out.push(x.clone());
                    a.next();
                }
                (None, Some(&y)) => {
                    out.push(y.clone());
                    b.next();
                }
                (None, None) => break,
            }
        }
        MetricsSnapshot { metrics: out }
    }

    /// Canonical JSON encoding (deterministic: sorted metrics, integer
    /// values only). Shape:
    ///
    /// ```json
    /// {"metrics":[
    ///   {"name":"x","labels":{"verb":"submit"},"type":"counter","value":4},
    ///   {"name":"h","labels":{},"type":"histogram","count":2,"sum":3,
    ///    "min":1,"max":2,"p50":1,"p90":3,"p99":3,"buckets":[[1,1],[3,1]]}
    /// ]}
    /// ```
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.metrics.len() * 48);
        out.push_str("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&mut out, &m.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, k);
                out.push(':');
                write_json_string(&mut out, v);
            }
            out.push_str("},\"type\":");
            write_json_string(&mut out, m.value.type_name());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.p50(),
                        h.p90(),
                        h.p99()
                    );
                    for (j, (upper, n)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{upper},{n}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Prometheus-style text exposition: `# TYPE` header per family
    /// (first occurrence in sorted order), then one sample per line.
    /// Histograms expand to cumulative `_bucket{le="…"}` lines over the
    /// non-empty edges plus `le="+Inf"`, then `_sum` and `_count`.
    /// Output is byte-deterministic for a given snapshot.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.metrics.len() * 64);
        let mut last_family: Option<&str> = None;
        for m in &self.metrics {
            if last_family != Some(m.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", m.name, m.value.type_name());
                last_family = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", render_key(&m.name, &m.labels));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", render_key(&m.name, &m.labels));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for &(upper, n) in &h.buckets {
                        cum += n;
                        let mut labels = m.labels.clone();
                        labels.push(("le".to_string(), upper.to_string()));
                        let _ = writeln!(
                            out,
                            "{} {cum}",
                            render_key(&format!("{}_bucket", m.name), &labels)
                        );
                    }
                    let mut labels = m.labels.clone();
                    labels.push(("le".to_string(), "+Inf".to_string()));
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_key(&format!("{}_bucket", m.name), &labels),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_key(&format!("{}_sum", m.name), &m.labels),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_key(&format!("{}_count", m.name), &m.labels),
                        h.count
                    );
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type Shard = Mutex<HashMap<(String, Vec<(String, String)>), Slot>>;

/// The lock-sharded metric registry. See the module docs for the
/// layout and determinism contract.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    shards: [Shard; SHARDS],
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

fn fnv1a(name: &str, labels: &[(String, String)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(name.as_bytes());
    for (k, v) in labels {
        eat(&[0xff]);
        eat(k.as_bytes());
        eat(&[0xfe]);
        eat(v.as_bytes());
    }
    h
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on/off. Disabled handles early-return before
    /// touching their cells (the `metrics_disabled` bench path);
    /// values already recorded remain readable.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether handles record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut ls: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        ls.sort();
        ls
    }

    fn slot<T, F, G>(&self, name: &str, labels: &[(&str, &str)], make: F, cast: G) -> T
    where
        F: FnOnce(&Arc<AtomicBool>) -> Slot,
        G: Fn(&Slot) -> Option<T>,
    {
        let ls = Self::sorted_labels(labels);
        // Hash the *sorted* labels so label order never splits identity
        // across shards.
        let shard = &self.shards[(fnv1a(name, &ls) as usize) % SHARDS];
        let mut map = shard.lock().unwrap_or_else(|p| p.into_inner());
        let slot = map
            .entry((name.to_string(), ls))
            .or_insert_with(|| make(&self.enabled));
        cast(slot)
            .unwrap_or_else(|| panic!("metric {name} already registered with a different type"))
    }

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.slot(
            name,
            labels,
            |enabled| {
                Slot::Counter(Counter {
                    enabled: enabled.clone(),
                    cell: Arc::new(AtomicU64::new(0)),
                })
            },
            |s| match s {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.slot(
            name,
            labels,
            |enabled| {
                Slot::Gauge(Gauge {
                    enabled: enabled.clone(),
                    cell: Arc::new(AtomicU64::new(0)),
                })
            },
            |s| match s {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.slot(
            name,
            labels,
            |enabled| {
                Slot::Histogram(Histogram {
                    enabled: enabled.clone(),
                    cells: Arc::new(HistCells::new()),
                })
            },
            |s| match s {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Freeze every registered metric into a sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|p| p.into_inner());
            for ((name, labels), slot) in map.iter() {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.value()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.value()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                metrics.push(MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { metrics }
    }

    /// Zero every registered metric in place, keeping registrations
    /// (harness phase boundaries only).
    pub fn reset_values(&self) {
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|p| p.into_inner());
            for slot in map.values() {
                match slot {
                    Slot::Counter(c) => c.reset(),
                    Slot::Gauge(g) => g.reset(),
                    Slot::Histogram(h) => h.reset(),
                }
            }
        }
    }
}

/// The process-wide registry the stack records into by default.
/// Returned as an `Arc` so components that take an injectable
/// `Arc<Registry>` (the daemon) can share it without a second scheme.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

// ---------------------------------------------------------------------------
// Sparklines (dc-top)
// ---------------------------------------------------------------------------

/// ASCII intensity ramp used by [`sparkline`], dimmest to brightest.
pub const SPARK_RAMP: &[u8] = b" .:-=+*#%@";

/// Compress a bucket-count series into a fixed-width ASCII sparkline,
/// the same width-compression idiom `gantt` uses for timelines: each
/// output column covers `ceil(len/width)` input cells, takes their max,
/// and maps it onto [`SPARK_RAMP`] scaled by the global max. All
/// integer math — deterministic for a given series.
pub fn sparkline(counts: &[u64], width: usize) -> String {
    let width = width.max(1);
    if counts.is_empty() {
        return " ".repeat(width);
    }
    let cells_per_col = counts.len().div_ceil(width);
    let cols = counts.len().div_ceil(cells_per_col);
    let peak = counts.iter().copied().max().unwrap_or(0);
    let mut out = String::with_capacity(width);
    for c in 0..cols {
        let lo = c * cells_per_col;
        let hi = (lo + cells_per_col).min(counts.len());
        let m = counts[lo..hi].iter().copied().max().unwrap_or(0);
        let ch = if peak == 0 || m == 0 {
            SPARK_RAMP[0]
        } else {
            // Nonzero cells never render as blank: index 1..=last,
            // with the global peak always mapping to the last rune.
            let last = SPARK_RAMP.len() - 1;
            let idx = 1 + (m as u128 * (last as u128 - 1) / peak as u128) as usize;
            SPARK_RAMP[idx.min(last)]
        };
        out.push(ch as char);
    }
    while out.len() < width {
        out.push(' ');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_u64_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of bucket {i}");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("reqs_total", &[("verb", "submit")]);
        c.inc();
        c.add(3);
        assert_eq!(c.value(), 4);
        // Same identity returns the same cell.
        assert_eq!(reg.counter("reqs_total", &[("verb", "submit")]).value(), 4);

        let g = reg.gauge("depth", &[]);
        g.set(7);
        g.dec();
        g.add(-2);
        assert_eq!(g.value(), 4);
        g.add(-10);
        assert_eq!(g.value(), -6);
    }

    #[test]
    fn label_order_does_not_split_identity() {
        let reg = Registry::new();
        reg.counter("c", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("c", &[("b", "2"), ("a", "1")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.metrics[0].value, MetricValue::Counter(2));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", &[]).inc();
        reg.gauge("x", &[]);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        let c = reg.counter("c", &[]);
        let h = reg.histogram("h", &[]);
        reg.set_enabled(false);
        c.inc();
        h.observe(5);
        assert_eq!(c.value(), 0);
        assert_eq!(h.count(), 0);
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn histogram_quantile_bounds_are_bucket_edges() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[]);
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 1106);
        // rank(p50) = 3 -> third smallest is 2, bucket [2,3].
        assert_eq!(s.quantile_bounds(1, 2), (2, 3));
        // rank(p99) = 6 -> 1000, bucket [512,1023] clamped to max.
        assert_eq!(s.quantile_bounds(99, 100), (512, 1000));
        assert_eq!(s.p99(), 1000);
        // Empty histogram reports zeros.
        assert_eq!(HistogramSnapshot::empty().p50(), 0);
    }

    #[test]
    fn histogram_merge_matches_single_stream() {
        let reg = Registry::new();
        let (a, b, both) = (
            reg.histogram("a", &[]),
            reg.histogram("b", &[]),
            reg.histogram("both", &[]),
        );
        for v in [1u64, 5, 9, 200] {
            a.observe(v);
            both.observe(v);
        }
        for v in [0u64, 5, 1 << 40] {
            b.observe(v);
            both.observe(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), both.snapshot());
    }

    #[test]
    fn snapshot_is_sorted_and_merges_losslessly() {
        let reg = Registry::new();
        reg.counter("z_total", &[]).add(2);
        reg.counter("a_total", &[("k", "2")]).add(1);
        reg.counter("a_total", &[("k", "1")]).add(1);
        let snap = reg.snapshot();
        let keys: Vec<String> = snap.metrics.iter().map(|m| m.key()).collect();
        assert_eq!(
            keys,
            vec!["a_total{k=\"1\"}", "a_total{k=\"2\"}", "z_total"]
        );

        let other = Registry::new();
        other.counter("z_total", &[]).add(3);
        other.gauge("g", &[]).set(-4);
        let merged = snap.merge(&other.snapshot());
        assert_eq!(
            merged.get("z_total").map(|m| &m.value),
            Some(&MetricValue::Counter(5))
        );
        assert_eq!(
            merged.get("g").map(|m| &m.value),
            Some(&MetricValue::Gauge(-4))
        );
        assert_eq!(merged.metrics.len(), 4);
    }

    #[test]
    fn json_and_text_are_byte_deterministic() {
        let build = || {
            let reg = Registry::new();
            reg.counter("dc_requests_total", &[("verb", "submit")])
                .add(4);
            reg.gauge("dc_queue_depth", &[]).set(2);
            let h = reg.histogram("dc_wait_us", &[]);
            for v in [0, 0, 3, 900] {
                h.observe(v);
            }
            reg.snapshot()
        };
        let (s1, s2) = (build(), build());
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(s1.render_text(), s2.render_text());

        let text = s1.render_text();
        assert_eq!(
            text,
            "# TYPE dc_queue_depth gauge\n\
             dc_queue_depth 2\n\
             # TYPE dc_requests_total counter\n\
             dc_requests_total{verb=\"submit\"} 4\n\
             # TYPE dc_wait_us histogram\n\
             dc_wait_us_bucket{le=\"0\"} 2\n\
             dc_wait_us_bucket{le=\"3\"} 3\n\
             dc_wait_us_bucket{le=\"1023\"} 4\n\
             dc_wait_us_bucket{le=\"+Inf\"} 4\n\
             dc_wait_us_sum 903\n\
             dc_wait_us_count 4\n"
        );
        assert!(s1.to_json().starts_with("{\"metrics\":[{\"name\":"));
    }

    #[test]
    fn fake_clock_is_deterministic() {
        let c = FakeClock::at(100);
        let shared = c.clone();
        assert_eq!(c.now_micros(), 100);
        shared.advance(50);
        assert_eq!(c.now_micros(), 150);
        let m = MonotonicClock::new();
        let a = m.now_micros();
        assert!(m.now_micros() >= a);
    }

    #[test]
    fn sparkline_compresses_and_scales() {
        assert_eq!(sparkline(&[], 4), "    ");
        assert_eq!(sparkline(&[0, 0], 2), "  ");
        let s = sparkline(&[1, 0, 0, 9], 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.as_bytes()[3], SPARK_RAMP[SPARK_RAMP.len() - 1]);
        assert_ne!(s.as_bytes()[0], b' ', "nonzero cell never blank");
        // Width compression: 8 cells into 4 columns takes pairwise max.
        assert_eq!(sparkline(&[5, 0, 0, 5, 5, 0, 0, 5], 4).len(), 4);
    }

    #[test]
    fn concurrent_observations_all_land() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[]);
        let c = reg.counter("c", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (h, c) = (h.clone(), c.clone());
                s.spawn(move || {
                    for v in 0..1000u64 {
                        h.observe(v);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 999);
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4000);
    }
}
