//! Deterministic observability for the dcbench stack.
//!
//! The paper's whole methodology is *observation* — `perf stat` runs
//! over live Hadoop jobs — yet a simulator is easy to leave as a black
//! box that prints one aggregate number per run. `dc-obs` is the
//! stack's flight recorder: a tiny structured-event layer that the
//! characterizer, the MapReduce engine and the cluster model thread
//! through their hot paths, cheap enough to leave compiled in and
//! disabled by default.
//!
//! # Model
//!
//! An [`Event`] is `{seq, ts, kind, fields}`:
//!
//! * `seq` — a recorder-assigned sequence number. Assigned under the
//!   sink lock, so `seq` is a **total order** consistent with the order
//!   events reach the sink, even when workers emit concurrently.
//! * `ts` — a caller-supplied timestamp. The producer decides the time
//!   domain and documents it per kind: simulated **cycles** for CPU
//!   sampling events, simulated **milliseconds** for the cluster model,
//!   job-relative wall-clock milliseconds for live engine timelines
//!   (the one explicitly non-deterministic domain). `dc-obs` never
//!   reads a clock itself.
//! * `kind` — a static string tag (`"interval_sample"`,
//!   `"attempt_start"`, …).
//! * `fields` — ordered key/value pairs ([`Value`]: u64/i64/f64/str/
//!   bool).
//!
//! A [`Recorder`] is a cheap `Clone` handle. [`Recorder::disabled`]
//! carries no allocation at all and [`Recorder::emit`] on it is a
//! single `Option` test — near-zero cost on hot paths. Enabled
//! recorders forward to a pluggable [`Sink`]: [`RingBuffer`] keeps the
//! last N events in memory for tests and Gantt rendering;
//! [`Recorder::jsonl`] streams one JSON object per line for tools.
//!
//! Spans are modelled as paired `*_start`/`*_end` events sharing lane
//! fields; [`gantt`] renders such pairs as ASCII timelines.

pub mod event;
pub mod gantt;
pub mod metrics;
pub mod sink;

pub use event::{Event, Value};
pub use sink::{JsonlSink, RingBuffer, SharedBuf, Sink};

use std::sync::{Arc, Mutex};

struct State {
    next_seq: u64,
    sink: Box<dyn Sink>,
}

struct Inner {
    state: Mutex<State>,
}

/// A cheap, cloneable handle events are emitted through.
///
/// All clones of one recorder share a sequence counter and a sink; a
/// disabled recorder ([`Recorder::disabled`], also `Default`) drops
/// every event after a single branch.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder forwarding to an arbitrary sink.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(State { next_seq: 0, sink }),
            })),
        }
    }

    /// A recorder keeping the most recent `capacity` events in memory,
    /// plus the buffer handle to read them back.
    pub fn ring(capacity: usize) -> (Self, RingBuffer) {
        let buf = RingBuffer::new(capacity);
        (Recorder::with_sink(Box::new(buf.clone())), buf)
    }

    /// A recorder streaming JSON Lines to `writer` (one event per line).
    pub fn jsonl<W: std::io::Write + Send + 'static>(writer: W) -> Self {
        Recorder::with_sink(Box::new(JsonlSink::new(writer)))
    }

    /// Whether events are being kept. Hot paths guard field
    /// construction on this so the disabled recorder costs one branch.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. `ts` is in the caller's documented time
    /// domain; the recorder assigns `seq` under the sink lock, so the
    /// sequence numbers seen by the sink are a gapless total order.
    pub fn emit(&self, ts: u64, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let seq = st.next_seq;
        st.next_seq += 1;
        let event = Event {
            seq,
            ts,
            kind,
            fields,
        };
        st.sink.record(&event);
    }

    /// Flush the underlying sink (a no-op for disabled recorders and
    /// memory sinks).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            st.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.emit(1, "anything", vec![("k", Value::U64(1))]);
        rec.flush();
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn ring_recorder_keeps_events_in_emit_order() {
        let (rec, buf) = Recorder::ring(16);
        assert!(rec.is_enabled());
        rec.emit(10, "a", vec![("x", Value::U64(1))]);
        rec.emit(20, "b", vec![]);
        let events = buf.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].ts, 20);
    }

    #[test]
    fn clones_share_one_sequence() {
        let (rec, buf) = Recorder::ring(16);
        let clone = rec.clone();
        rec.emit(1, "a", vec![]);
        clone.emit(2, "b", vec![]);
        rec.emit(3, "c", vec![]);
        let seqs: Vec<u64> = buf.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_emitters_get_a_gapless_total_order() {
        let (rec, buf) = Recorder::ring(4096);
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        rec.emit(i, "tick", vec![("thread", Value::U64(t))]);
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = buf.snapshot().iter().map(|e| e.seq).collect();
        // Sink order == seq order even before sorting.
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "sink order == seq order"
        );
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<u64>>());
    }

    #[test]
    fn jsonl_recorder_writes_one_line_per_event() {
        let buf = SharedBuf::default();
        let rec = Recorder::jsonl(buf.clone());
        rec.emit(
            42,
            "probe",
            vec![("name", Value::str("sort")), ("ok", Value::Bool(true))],
        );
        rec.flush();
        let text = buf.to_string_lossy();
        assert_eq!(
            text,
            "{\"seq\":0,\"ts\":42,\"kind\":\"probe\",\"fields\":{\"name\":\"sort\",\"ok\":true}}\n"
        );
    }
}
