//! ASCII Gantt rendering for span events.
//!
//! A span is a pair of events — one `start_kind`, one `end_kind` —
//! agreeing on every *lane field* (e.g. `phase`/`task`/`attempt` for
//! engine task attempts). The renderer lays each lane out on a common
//! time axis scaled to a fixed character width, which makes retry gaps,
//! speculative races and node-loss re-execution visible at a glance:
//!
//! ```text
//! map/2/0     [====x               ]  failed
//! map/2/1     [      ==========|   ]  ok
//! reduce/0/0  [           =======| ]  ok
//! ```

use crate::event::{Event, Value};

/// What to treat as a span and how to label it.
#[derive(Debug, Clone)]
pub struct GanttConfig {
    /// Kind opening a span.
    pub start_kind: &'static str,
    /// Kind closing a span.
    pub end_kind: &'static str,
    /// Fields identifying a lane; start/end events match when all of
    /// these agree. Field values also form the lane label.
    pub lane_fields: &'static [&'static str],
    /// Optional field on the end event naming the outcome (`"ok"`,
    /// `"failed"`, `"killed"`…). Failed spans end in `x`, killed in
    /// `k`, everything else in `|`.
    pub outcome_field: &'static str,
    /// Bar area width in characters.
    pub width: usize,
}

impl Default for GanttConfig {
    fn default() -> Self {
        GanttConfig {
            start_kind: "attempt_start",
            end_kind: "attempt_end",
            lane_fields: &["phase", "task", "attempt"],
            outcome_field: "outcome",
            width: 60,
        }
    }
}

struct Lane {
    label: String,
    start: u64,
    end: Option<u64>,
    outcome: String,
}

fn value_text(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => x.to_string(),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
    }
}

fn lane_key(event: &Event, cfg: &GanttConfig) -> String {
    cfg.lane_fields
        .iter()
        .map(|f| event.field(f).map(value_text).unwrap_or_default())
        .collect::<Vec<_>>()
        .join("/")
}

/// Render every matched span among `events` as one ASCII Gantt chart.
/// Lanes appear in span-start order; an empty string means no spans
/// were found.
pub fn render(events: &[Event], cfg: &GanttConfig) -> String {
    let mut lanes: Vec<Lane> = Vec::new();
    for event in events {
        if event.kind == cfg.start_kind {
            lanes.push(Lane {
                label: lane_key(event, cfg),
                start: event.ts,
                end: None,
                outcome: String::new(),
            });
        } else if event.kind == cfg.end_kind {
            let key = lane_key(event, cfg);
            if let Some(lane) = lanes.iter_mut().find(|l| l.end.is_none() && l.label == key) {
                lane.end = Some(event.ts.max(lane.start));
                lane.outcome = event
                    .field(cfg.outcome_field)
                    .map(value_text)
                    .unwrap_or_default();
            }
        }
    }
    if lanes.is_empty() {
        return String::new();
    }

    let t0 = lanes.iter().map(|l| l.start).min().unwrap_or(0);
    let t1 = lanes
        .iter()
        .map(|l| l.end.unwrap_or(l.start))
        .max()
        .unwrap_or(t0)
        .max(t0 + 1);
    let span = (t1 - t0) as f64;
    let width = cfg.width.max(10);
    let label_w = lanes.iter().map(|l| l.label.len()).max().unwrap_or(0);
    let scale =
        |ts: u64| -> usize { (((ts - t0) as f64 / span) * (width - 1) as f64).round() as usize };

    let mut out = String::new();
    out.push_str(&format!(
        "{:label_w$}  t={t0}..{t1} ({} lanes)\n",
        "",
        lanes.len()
    ));
    for lane in &lanes {
        let a = scale(lane.start);
        let b = lane.end.map(|e| scale(e).max(a)).unwrap_or(width - 1);
        let mut bar = vec![' '; width];
        for cell in bar.iter_mut().take(b).skip(a) {
            *cell = '=';
        }
        bar[b] = match lane.outcome.as_str() {
            "failed" => 'x',
            "killed" => 'k',
            _ if lane.end.is_none() => '>',
            _ => '|',
        };
        let bar: String = bar.into_iter().collect();
        let outcome = if lane.outcome.is_empty() {
            String::new()
        } else {
            format!("  {}", lane.outcome)
        };
        out.push_str(&format!("{:label_w$}  [{bar}]{outcome}\n", lane.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(seq: u64, ts: u64, task: u64, attempt: u64) -> Event {
        Event {
            seq,
            ts,
            kind: "attempt_start",
            fields: vec![
                ("phase", Value::str("map")),
                ("task", Value::U64(task)),
                ("attempt", Value::U64(attempt)),
            ],
        }
    }

    fn end(seq: u64, ts: u64, task: u64, attempt: u64, outcome: &str) -> Event {
        Event {
            seq,
            ts,
            kind: "attempt_end",
            fields: vec![
                ("phase", Value::str("map")),
                ("task", Value::U64(task)),
                ("attempt", Value::U64(attempt)),
                ("outcome", Value::str(outcome)),
            ],
        }
    }

    #[test]
    fn renders_matched_spans_with_outcomes() {
        let events = vec![
            start(0, 0, 0, 0),
            start(1, 5, 1, 0),
            end(2, 40, 0, 0, "failed"),
            end(3, 100, 1, 0, "ok"),
            start(4, 45, 0, 1),
            end(5, 90, 0, 1, "ok"),
        ];
        let chart = render(&events, &GanttConfig::default());
        assert_eq!(chart.lines().count(), 4, "header + three lanes:\n{chart}");
        assert!(chart.contains("map/0/0"));
        assert!(chart.contains("map/0/1"));
        assert!(chart.contains('x'), "failed attempt marked:\n{chart}");
        assert!(chart.contains("  failed"));
        assert!(chart.contains("  ok"));
    }

    #[test]
    fn unclosed_span_runs_to_the_right_edge() {
        let events = vec![
            start(0, 0, 0, 0),
            end(1, 50, 0, 0, "ok"),
            start(2, 25, 1, 0),
        ];
        let chart = render(&events, &GanttConfig::default());
        assert!(chart.contains('>'), "open span marker:\n{chart}");
    }

    #[test]
    fn no_spans_renders_empty() {
        assert!(render(&[], &GanttConfig::default()).is_empty());
        let unrelated = vec![Event {
            seq: 0,
            ts: 0,
            kind: "tick",
            fields: vec![],
        }];
        assert!(render(&unrelated, &GanttConfig::default()).is_empty());
    }

    #[test]
    fn zero_length_span_is_safe() {
        let events = vec![start(0, 10, 0, 0), end(1, 10, 0, 0, "ok")];
        let chart = render(&events, &GanttConfig::default());
        assert!(chart.contains("map/0/0"));
    }
}
