//! Parallel execution policy for the characterization pipeline.
//!
//! The characterizer's unit of work is one `(BenchmarkId, window)`
//! simulation — ~3.2 M µops through the cycle-level core at full
//! windows — and every entry is independent: its trace seed is derived
//! from the master seed and the entry id alone. This module decides
//! *how wide* to fan those jobs out and delegates the mechanics to
//! [`dc_mapreduce::pool::parallel_map`], the same scoped SPMC worker
//! pool the MapReduce engine schedules task attempts on.
//!
//! Width policy, in order:
//!
//! 1. `DCBENCH_JOBS=<n>` environment override (`1` forces the
//!    sequential reference path; useful for timing comparisons and for
//!    bisecting any suspected parallelism bug);
//! 2. [`std::thread::available_parallelism`];
//! 3. `1` if the runtime cannot report a width.
//!
//! Because each job is a pure function of its own seed, results are
//! collected in input order and are **bit-identical** at any width —
//! enforced by `tests/parallel_determinism.rs`.

use dc_obs::metrics;
use std::cell::Cell;
use std::env;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count.
pub const JOBS_ENV: &str = "DCBENCH_JOBS";

/// The worker width the characterizer will use: `DCBENCH_JOBS` if set
/// to a positive integer, else the machine's available parallelism.
pub fn jobs() -> usize {
    env::var(JOBS_ENV)
        .ok()
        .as_deref()
        .and_then(parse_jobs)
        .unwrap_or_else(default_jobs)
}

/// Parse a `DCBENCH_JOBS` value; `None` (fall back to the machine
/// width) unless it is a positive integer.
fn parse_jobs(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fan `items` out across [`jobs`] workers, returning results in input
/// order (bit-identical to the sequential run of the same closure).
///
/// The fan-out is instrumented into the process-wide metrics registry:
///
/// * `dc_pool_queue_depth` (gauge) — jobs not yet started;
/// * `dc_pool_workers_busy` (gauge) — jobs currently executing;
/// * `dc_pool_worker_busy{worker="N"}` (gauge, 0/1) — per-worker
///   busy/idle, `N` being a compact per-call slot index;
/// * `dc_pool_worker_jobs_total{worker="N"}` (counter) — jobs each
///   slot completed (scheduling-dependent; the *sum* is deterministic);
/// * `dc_pool_jobs_total` (counter) — total jobs completed.
///
/// All gauges return to zero when the call completes, so quiescent
/// snapshots stay deterministic. The per-job cost is a handful of
/// relaxed atomics — noise next to a multi-ms simulation job.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let width = jobs();
    let slots = width.min(items.len()).max(1);
    let reg = metrics::global();
    let depth = reg.gauge("dc_pool_queue_depth", &[]);
    let busy = reg.gauge("dc_pool_workers_busy", &[]);
    let jobs_total = reg.counter("dc_pool_jobs_total", &[]);
    let slot_names: Vec<String> = (0..slots).map(|w| w.to_string()).collect();
    let worker_busy: Vec<metrics::Gauge> = slot_names
        .iter()
        .map(|w| reg.gauge("dc_pool_worker_busy", &[("worker", w)]))
        .collect();
    let worker_jobs: Vec<metrics::Counter> = slot_names
        .iter()
        .map(|w| reg.counter("dc_pool_worker_jobs_total", &[("worker", w)]))
        .collect();
    depth.set(items.len() as i64);

    // Workers are fresh scoped threads each call, so a per-call counter
    // hands each one a compact slot id on its first job. The inline
    // (width 1) path runs on the caller thread, which keeps slot 0 for
    // the life of the process.
    let next_slot = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<Option<usize>> = const { Cell::new(None) };
    }
    let out = dc_mapreduce::pool::parallel_map(items, width, |i, item| {
        let slot = SLOT.with(|s| match s.get() {
            Some(v) => v,
            None => {
                let v = next_slot.fetch_add(1, Ordering::Relaxed);
                s.set(Some(v));
                v
            }
        });
        let slot = slot.min(slots - 1);
        depth.dec();
        busy.inc();
        worker_busy[slot].set(1);
        let r = f(i, item);
        worker_busy[slot].set(0);
        worker_jobs[slot].inc();
        jobs_total.inc();
        busy.dec();
        r
    });
    // A closed queue leaves nothing pending by construction; pin the
    // gauge there rather than trusting dec() arithmetic under races.
    depth.set(0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn override_parsing() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 16 "), Some(16));
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("0"), None, "zero workers is meaningless");
        assert_eq!(parse_jobs("-2"), None);
        assert_eq!(parse_jobs("many"), None);
        assert_eq!(parse_jobs(""), None);
    }

    #[test]
    fn parallel_map_keeps_order() {
        let out = parallel_map((0..20u32).collect(), |i, x| {
            assert_eq!(i as u32, x);
            x * 2
        });
        assert_eq!(out, (0..20u32).map(|x| x * 2).collect::<Vec<_>>());
    }
}
