//! Parallel execution policy for the characterization pipeline.
//!
//! The characterizer's unit of work is one `(BenchmarkId, window)`
//! simulation — ~3.2 M µops through the cycle-level core at full
//! windows — and every entry is independent: its trace seed is derived
//! from the master seed and the entry id alone. This module decides
//! *how wide* to fan those jobs out and delegates the mechanics to
//! [`dc_mapreduce::pool::parallel_map`], the same scoped SPMC worker
//! pool the MapReduce engine schedules task attempts on.
//!
//! Width policy, in order:
//!
//! 1. `DCBENCH_JOBS=<n>` environment override (`1` forces the
//!    sequential reference path; useful for timing comparisons and for
//!    bisecting any suspected parallelism bug);
//! 2. [`std::thread::available_parallelism`];
//! 3. `1` if the runtime cannot report a width.
//!
//! Because each job is a pure function of its own seed, results are
//! collected in input order and are **bit-identical** at any width —
//! enforced by `tests/parallel_determinism.rs`.

use std::env;

/// Environment variable overriding the worker count.
pub const JOBS_ENV: &str = "DCBENCH_JOBS";

/// The worker width the characterizer will use: `DCBENCH_JOBS` if set
/// to a positive integer, else the machine's available parallelism.
pub fn jobs() -> usize {
    env::var(JOBS_ENV)
        .ok()
        .as_deref()
        .and_then(parse_jobs)
        .unwrap_or_else(default_jobs)
}

/// Parse a `DCBENCH_JOBS` value; `None` (fall back to the machine
/// width) unless it is a positive integer.
fn parse_jobs(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fan `items` out across [`jobs`] workers, returning results in input
/// order (bit-identical to the sequential run of the same closure).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    dc_mapreduce::pool::parallel_map(items, jobs(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn override_parsing() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 16 "), Some(16));
        assert_eq!(parse_jobs("1"), Some(1));
        assert_eq!(parse_jobs("0"), None, "zero workers is meaningless");
        assert_eq!(parse_jobs("-2"), None);
        assert_eq!(parse_jobs("many"), None);
        assert_eq!(parse_jobs(""), None);
    }

    #[test]
    fn parallel_map_keeps_order() {
        let out = parallel_map((0..20u32).collect(), |i, x| {
            assert_eq!(i as u32, x);
            x * 2
        });
        assert_eq!(out, (0..20u32).map(|x| x * 2).collect::<Vec<_>>());
    }
}
