//! # dcbench — reproduction of "Characterizing Data Analysis Workloads
//! # in Data Centers" (IISWC 2013)
//!
//! This crate is the released artifact: it ties the substrates together
//! into the paper's methodology and regenerates every table and figure.
//!
//! * [`registry`] — the 27 benchmark entries on the figures' x-axes
//!   (eleven data-analysis workloads, five CloudSuite benchmarks,
//!   SPECFP/SPECINT/SPECweb, seven HPCC kernels) with suite taxonomy;
//! * [`profiles`] — the calibrated [`dc_trace::WorkloadProfile`] for
//!   each entry (the cause-level descriptions the simulator executes);
//! * [`characterize`] — the measurement pipeline: profile → synthetic
//!   trace → out-of-order core simulation → PMU collection → derived
//!   [`dc_perfmon::Metrics`] — fanned out across cores with
//!   bit-identical-to-sequential results;
//! * [`pool`] — the parallel execution policy (`DCBENCH_JOBS`
//!   override, `available_parallelism` default) over the shared
//!   `dc-mapreduce` worker pool;
//! * [`cache`] — the process-wide memoizing result cache keyed by
//!   `(entry, machine-config hash, window, seed)`;
//! * [`stats`] — std-only statistics for workload subsetting: z-score
//!   → Jacobi PCA → agglomerative clustering → medoid representatives
//!   (Exhibit SS);
//! * [`sweep`] — microarchitectural sensitivity sweeps: axes over the
//!   machine-description knobs expanded into a sharded
//!   (workload × config-point) grid (Exhibit SW);
//! * [`topsites`] — the Alexa-style top-site census behind Figure 1;
//! * [`cluster_experiments`] — Figure 2 (speed-up) and Figure 5 (disk
//!   writes/s) via real engine runs scaled through the cluster model;
//! * [`report`] — renderers that print each table/figure as the paper
//!   lays it out, plus serializable result structures.
//!
//! ```no_run
//! use dcbench::characterize::Characterizer;
//! use dcbench::registry::BenchmarkId;
//!
//! let bench = Characterizer::quick();
//! let m = bench.run(BenchmarkId::Sort);
//! println!("Sort IPC = {:.2}", m.ipc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod characterize;
pub mod cluster_experiments;
pub mod pool;
pub mod profiles;
pub mod registry;
pub mod report;
pub mod stats;
pub mod sweep;
pub mod topsites;

pub use characterize::Characterizer;
pub use registry::{BenchmarkId, Suite};
