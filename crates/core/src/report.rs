//! Table/figure renderers: regenerate every exhibit of the paper.
//!
//! Each `figure*`/`table*` function returns a structured
//! [`FigureData`] and a ready-to-print text rendering, so both the
//! examples and the Criterion benches print exactly the rows/series the
//! paper reports.

use crate::characterize::Characterizer;
use crate::cluster_experiments;
use crate::registry::BenchmarkId;
use crate::topsites;
use dc_analytics::Workload;
use dc_datagen::Scale;
use dc_perfmon::Metrics;
use std::fmt::Write as _;

/// One regenerated exhibit: labelled rows of numeric series.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Exhibit id (e.g. "Figure 3").
    pub id: String,
    /// Exhibit title as in the paper.
    pub title: String,
    /// Column headers for the series.
    pub columns: Vec<String>,
    /// Rows: (x-axis label, series values).
    pub rows: Vec<(String, Vec<f64>)>,
}

impl FigureData {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(10))
            .max()
            .unwrap_or(10);
        let _ = write!(out, "{:label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, " {c:>12}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for v in values {
                if v.abs() >= 1000.0 {
                    let _ = write!(out, " {v:>12.0}");
                } else {
                    let _ = write!(out, " {v:>12.3}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// The non-data-analysis entries, in figure order.
fn other_entries() -> Vec<BenchmarkId> {
    BenchmarkId::all()
        .iter()
        .copied()
        .filter(|id| id.suite() != crate::registry::Suite::DataAnalysis)
        .collect()
}

/// The full x-axis of the per-metric figures: 11 DA workloads, their
/// `avg` bar, then the remaining 15 entries — all simulated through the
/// parallel pipeline.
fn all_rows(bench: &Characterizer) -> Vec<Metrics> {
    let mut rows = bench.run_data_analysis_with_avg();
    rows.extend(bench.run_many(&other_entries()));
    rows
}

fn metric_figure(
    id: &str,
    title: &str,
    column: &str,
    bench: &Characterizer,
    f: impl Fn(&Metrics) -> f64,
) -> FigureData {
    FigureData {
        id: id.to_string(),
        title: title.to_string(),
        columns: vec![column.to_string()],
        rows: all_rows(bench)
            .into_iter()
            .map(|m| (m.name.clone(), vec![f(&m)]))
            .collect(),
    }
}

/// Figure 1: top sites in the web by category.
pub fn figure1() -> FigureData {
    FigureData {
        id: "Figure 1".into(),
        title: "Top sites in the web".into(),
        columns: vec!["share".into()],
        rows: topsites::category_shares(20)
            .into_iter()
            .map(|(c, s)| (c.name().to_string(), vec![s]))
            .collect(),
    }
}

/// Figure 2: speed-up of the eleven workloads on 1/4/8 slaves.
pub fn figure2(scale: Scale) -> FigureData {
    FigureData {
        id: "Figure 2".into(),
        title: "Varied speed up performance of eleven data analysis workloads".into(),
        columns: vec!["1 slave".into(), "4 slaves".into(), "8 slaves".into()],
        rows: cluster_experiments::figure2_speedups(scale)
            .into_iter()
            .map(|(w, s)| (w.name().to_string(), s.to_vec()))
            .collect(),
    }
}

/// Figure 3: instructions per cycle.
pub fn figure3(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 3",
        "Instructions per cycle for each workload",
        "IPC",
        bench,
        |m| m.ipc,
    )
}

/// Figure 4: user/kernel instruction breakdown (kernel fraction).
pub fn figure4(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 4",
        "User and Kernel Instructions Breakdown (kernel share)",
        "kernel",
        bench,
        |m| m.kernel_fraction,
    )
}

/// Figure 5: disk writes per second (data-analysis workloads, 4 slaves).
pub fn figure5(scale: Scale) -> FigureData {
    FigureData {
        id: "Figure 5".into(),
        title: "Disk Writes per Second".into(),
        columns: vec!["writes/s/node".into()],
        rows: cluster_experiments::figure5_disk_writes(scale)
            .into_iter()
            .map(|(w, r)| (w.name().to_string(), vec![r]))
            .collect(),
    }
}

/// Fault-tolerance exhibit (extension of Figure 2): each workload's
/// 8-slave speedup healthy vs. with one slave lost halfway through the
/// map phase, plus the recovery cost (re-executed slave-seconds and HDFS
/// re-replication traffic). Every job still completes — Hadoop re-runs
/// the lost waves on survivors — so the column is degraded, never empty.
pub fn fault_tolerance_exhibit(scale: Scale) -> FigureData {
    FigureData {
        id: "Exhibit FT".into(),
        title: "Speed up under single-node loss at 8 slaves".into(),
        columns: vec![
            "healthy".into(),
            "degraded".into(),
            "rework s".into(),
            "rerepl MB".into(),
        ],
        rows: cluster_experiments::speedups_under_node_loss(scale)
            .into_iter()
            .map(|row| {
                (
                    row.workload.name().to_string(),
                    vec![
                        row.healthy_speedup,
                        row.degraded_speedup,
                        row.reexecuted_work_secs,
                        row.rereplicated_mb,
                    ],
                )
            })
            .collect(),
    }
}

/// Co-run widths of Exhibit CO: solo, the paper's 4-slot Hadoop
/// configuration, and its 8-slot maximum.
pub const CORUN_WIDTHS: [usize; 3] = [1, 4, 8];

/// Exhibit CO: shared-L3 contention when N copies of each data-analysis
/// workload co-run on one chip ([`dc_cpu::Chip`]), as N map-task slots
/// did on the paper's nodes. Reports core 0's L3 MPKI and IPC at each
/// width in [`CORUN_WIDTHS`]; core 0's trace is identical at every
/// width, so column deltas isolate the cost of contention.
pub fn corun_exhibit(bench: &Characterizer) -> FigureData {
    let ids = BenchmarkId::data_analysis();
    let jobs: Vec<(BenchmarkId, usize)> = ids
        .iter()
        .flat_map(|&id| CORUN_WIDTHS.iter().map(move |&n| (id, n)))
        .collect();
    let cells = crate::pool::parallel_map(jobs, |_, (id, n)| bench.corun(id, n));
    let rows = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let ms = &cells[i * CORUN_WIDTHS.len()..(i + 1) * CORUN_WIDTHS.len()];
            let mut vals: Vec<f64> = ms.iter().map(|m| m.l3_mpki).collect();
            vals.extend(ms.iter().map(|m| m.ipc));
            (id.name().to_string(), vals)
        })
        .collect();
    FigureData {
        id: "Exhibit CO".into(),
        title: "Shared-L3 pressure and IPC of one task under 1/4/8 co-runners".into(),
        columns: vec![
            "MPKI x1".into(),
            "MPKI x4".into(),
            "MPKI x8".into(),
            "IPC x1".into(),
            "IPC x4".into(),
            "IPC x8".into(),
        ],
        rows,
    }
}

/// Exhibit PH: phase behavior of every data-analysis workload — the
/// `perf stat -I`-style time series the paper's successor work
/// (Jia et al., 2015) uses to show that map/shuffle/reduce phases have
/// distinct micro-architectural behavior. One [`FigureData`] per
/// workload: one row per sampling interval of `every_cycles` simulated
/// cycles, columns IPC / L2 MPKI / L3 MPKI / branch MPKI / interval
/// instructions.
///
/// Workloads are sampled in parallel ([`crate::pool`]), but with a
/// recorder attached to `bench` the `interval_sample` /
/// `workload_sampled` events are emitted afterwards on the caller
/// thread, in workload order — so the JSONL artifact is byte-identical
/// run to run, at any worker count.
pub fn phase_exhibit(bench: &Characterizer, every_cycles: u64) -> Vec<FigureData> {
    let ids = BenchmarkId::data_analysis();
    // Workers sample through a recorder-less clone; deterministic
    // emission happens below, outside the pool.
    let quiet = bench.clone().with_recorder(dc_obs::Recorder::disabled());
    let series = crate::pool::parallel_map(ids.to_vec(), move |_, id| {
        quiet.run_sampled(id, every_cycles)
    });
    series
        .iter()
        .map(|sampled| {
            bench.emit_samples(sampled);
            let rows = sampled
                .intervals
                .iter()
                .map(|iv| {
                    (
                        format!("[{}..{})", iv.start_cycle, iv.end_cycle),
                        vec![
                            iv.ipc,
                            iv.l2_mpki,
                            iv.l3_mpki,
                            iv.branch_mpki,
                            iv.instructions as f64,
                        ],
                    )
                })
                .collect();
            FigureData {
                id: "Exhibit PH".into(),
                title: format!(
                    "Phase behavior of {} (interval = {} cycles)",
                    sampled.name, every_cycles
                ),
                columns: vec![
                    "IPC".into(),
                    "L2 MPKI".into(),
                    "L3 MPKI".into(),
                    "br MPKI".into(),
                    "instr".into(),
                ],
                rows,
            }
        })
        .collect()
}

/// Figure 6: pipeline stall breakdown.
pub fn figure6(bench: &Characterizer) -> FigureData {
    let rows = all_rows(bench)
        .into_iter()
        .map(|m| {
            let [fetch, rat, load, rs, store, rob] = m.stall_breakdown;
            (m.name, vec![fetch, rat, load, rs, store, rob])
        })
        .collect();
    FigureData {
        id: "Figure 6".into(),
        title: "Pipeline Stall Break Down of Each Workload".into(),
        columns: ["fetch", "rat", "load", "rs_full", "store", "rob_full"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Figure 7: L1-I cache misses per thousand instructions.
pub fn figure7(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 7",
        "L1 Instruction Cache misses per thousand instructions",
        "L1I MPKI",
        bench,
        |m| m.l1i_mpki,
    )
}

/// Figure 8: ITLB-miss-caused completed page walks per k-instructions.
pub fn figure8(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 8",
        "ITLB miss caused completed page walks per thousand instructions",
        "walks PKI",
        bench,
        |m| m.itlb_walk_pki,
    )
}

/// Figure 9: L2 cache misses per thousand instructions.
pub fn figure9(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 9",
        "L2 cache misses per thousand instructions",
        "L2 MPKI",
        bench,
        |m| m.l2_mpki,
    )
}

/// Figure 10: ratio of L3 cache hits over L2 cache misses.
pub fn figure10(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 10",
        "The ratio of L3 cache satisfying L2 cache misses",
        "L3 ratio",
        bench,
        |m| m.l3_hit_ratio,
    )
}

/// Figure 11: DTLB-miss-caused completed page walks per k-instructions.
pub fn figure11(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 11",
        "Completed Page Walks Caused by DTLB Misses per Thousand Instructions",
        "walks PKI",
        bench,
        |m| m.dtlb_walk_pki,
    )
}

/// Figure 12: branch misprediction ratio.
pub fn figure12(bench: &Characterizer) -> FigureData {
    metric_figure(
        "Figure 12",
        "Branch Miss-prediction ratio",
        "misp ratio",
        bench,
        |m| m.branch_misprediction,
    )
}

/// Table I: representative data analysis workloads.
pub fn table1() -> FigureData {
    FigureData {
        id: "Table I".into(),
        title: "Representative data analysis workloads".into(),
        columns: vec!["input GB".into(), "G instructions".into()],
        rows: Workload::all()
            .iter()
            .map(|w| {
                (
                    format!("{} ({}, {})", w.name(), w.input_kind(), w.paper_source()),
                    vec![
                        w.paper_input_gb() as f64,
                        w.paper_giga_instructions() as f64,
                    ],
                )
            })
            .collect(),
    }
}

/// Table II: application scenarios of each workload.
pub fn table2() -> String {
    let mut out = String::from("Table II — Scenarios of data analysis\n");
    for w in Workload::all() {
        let _ = writeln!(out, "{}:", w.name());
        for (domain, scenario) in w.scenarios() {
            let _ = writeln!(out, "    {domain:22} {scenario}");
        }
    }
    out
}

/// Table III: hardware configuration of the simulated machine.
pub fn table3(bench: &Characterizer) -> String {
    let c = bench.config();
    let mut out = String::from("Table III — Details of hardware configurations\n");
    let mut row = |k: &str, v: String| {
        let _ = writeln!(out, "    {k:12} {v}");
    };
    row("CPU Type", "Intel Xeon E5645 (simulated)".into());
    row("# Cores", format!("{} cores @ 2.4 GHz", c.cores));
    row(
        "ITLB",
        format!("{}-way, {} entries", c.itlb.assoc, c.itlb.entries),
    );
    row(
        "DTLB",
        format!("{}-way, {} entries", c.dtlb.assoc, c.dtlb.entries),
    );
    row(
        "L2 TLB",
        format!("{}-way, {} entries", c.stlb.assoc, c.stlb.entries),
    );
    row(
        "L1 DCache",
        format!(
            "{} KB, {}-way, {} byte/line",
            c.l1d.size_bytes >> 10,
            c.l1d.assoc,
            c.l1d.line_bytes
        ),
    );
    row(
        "L1 ICache",
        format!(
            "{} KB, {}-way, {} byte/line",
            c.l1i.size_bytes >> 10,
            c.l1i.assoc,
            c.l1i.line_bytes
        ),
    );
    row(
        "L2 Cache",
        format!(
            "{} KB, {}-way, {} byte/line",
            c.l2.size_bytes >> 10,
            c.l2.assoc,
            c.l2.line_bytes
        ),
    );
    row(
        "L3 Cache",
        format!(
            "{} MB, {}-way, {} byte/line",
            c.l3.size_bytes >> 20,
            c.l3.assoc,
            c.l3.line_bytes
        ),
    );
    out
}

/// Exhibit SW: microarchitectural sensitivity of every data-analysis
/// workload. The grid is measured once through [`crate::sweep::run`]
/// (sharded, cached, deterministic — `sweep_point` / `sweep_axis`
/// events reach any attached recorder in grid order), then unfolded
/// into one [`FigureData`] per (axis, metric): columns are the axis
/// grid points, rows the 11 workloads, so each row *is* that
/// workload's sensitivity curve. Metrics per axis: IPC, L2 MPKI,
/// L3 MPKI, branch-misprediction ratio.
pub fn sweep_exhibit(
    bench: &Characterizer,
    axes: &[crate::sweep::SweepAxis],
) -> Result<Vec<FigureData>, dc_cpu::ConfigError> {
    type MetricColumn = (&'static str, fn(&Metrics) -> f64);
    let sweeps = crate::sweep::run(bench, BenchmarkId::data_analysis(), axes)?;
    let metrics: [MetricColumn; 4] = [
        ("IPC", |m| m.ipc),
        ("L2 MPKI", |m| m.l2_mpki),
        ("L3 MPKI", |m| m.l3_mpki),
        ("misp ratio", |m| m.branch_misprediction),
    ];
    let mut figures = Vec::with_capacity(sweeps.len() * metrics.len());
    for sweep in &sweeps {
        for (metric_name, extract) in metrics {
            let rows = sweep
                .curves
                .iter()
                .map(|curve| {
                    (
                        curve.id.name().to_string(),
                        curve.metrics.iter().map(extract).collect(),
                    )
                })
                .collect();
            figures.push(FigureData {
                id: "Exhibit SW".into(),
                title: format!("{} vs {}", metric_name, sweep.kind.title()),
                columns: sweep.labels.clone(),
                rows,
            });
        }
    }
    Ok(figures)
}

/// Exhibit SS: PCA + hierarchical subsetting of the 11 data-analysis
/// workloads. Characterizes the registry's data-analysis entries (via
/// the cached parallel pipeline — a warm [`crate::cache`] store serves
/// every row with zero simulations), then runs the full
/// [`crate::stats`] pipeline: z-score → Jacobi PCA (retained to
/// [`crate::stats::VARIANCE_TARGET`]) → agglomerative clustering of
/// the PC scores under `linkage` → the `k`-cluster cut with one medoid
/// representative per cluster. Render with
/// [`crate::stats::Subset::render_text`] /
/// [`crate::stats::Subset::to_json`]; both are byte-identical across
/// processes, worker counts, and cold-vs-warm store runs.
pub fn subset_exhibit(
    bench: &Characterizer,
    k: usize,
    linkage: crate::stats::Linkage,
) -> crate::stats::Subset {
    let rows = bench.run_many(BenchmarkId::data_analysis());
    crate::stats::subset_of_metrics(&rows, k, linkage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_rows_and_render() {
        let fig = figure1();
        assert_eq!(fig.rows.len(), 5);
        let text = fig.render();
        assert!(text.contains("Search Engine"));
        assert!(text.contains("Figure 1"));
    }

    #[test]
    fn metric_figures_cover_all_entries() {
        let bench = Characterizer::quick();
        let fig = figure3(&bench);
        // 11 DA + avg + 15 others = 27 bars.
        assert_eq!(fig.rows.len(), 27);
        assert!(fig.rows.iter().any(|(l, _)| l == "avg"));
        assert!(fig.rows.iter().any(|(l, _)| l == "HPCC-STREAM"));
    }

    #[test]
    fn figure6_rows_sum_to_one() {
        let bench = Characterizer::quick();
        let fig = figure6(&bench);
        for (label, row) in &fig.rows {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9 || sum == 0.0,
                "{label}: breakdown sums to {sum}"
            );
        }
    }

    #[test]
    fn fault_tolerance_exhibit_degrades_all_rows() {
        let fig = fault_tolerance_exhibit(Scale::bytes(48 << 10));
        assert_eq!(fig.rows.len(), 11);
        for (label, row) in &fig.rows {
            let [healthy, degraded, rework, rerepl] = row[..] else {
                panic!("{label}: expected 4 columns");
            };
            assert!(degraded.is_finite() && degraded > 0.0, "{label}");
            assert!(degraded < healthy, "{label}: loss must cost speedup");
            assert!(rework > 0.0 && rerepl > 0.0, "{label}: no recovery cost");
        }
        assert!(fig.render().contains("Exhibit FT"));
    }

    #[test]
    fn sweep_exhibit_unfolds_axes_into_metric_figures() {
        let bench = Characterizer::new(
            dc_cpu::CpuConfig::westmere_e5645(),
            dc_cpu::SimOptions::exact(30_000, 10_000),
            0xE4_81B1,
        );
        let axes = [crate::sweep::SweepAxis::prefetch()];
        let figs = sweep_exhibit(&bench, &axes).expect("valid grid");
        // One axis × four metrics.
        assert_eq!(figs.len(), 4);
        for fig in &figs {
            assert_eq!(fig.columns, vec!["off", "on"]);
            assert_eq!(fig.rows.len(), 11);
            assert!(fig.render().contains("Exhibit SW"));
        }
        assert!(figs[0].title.contains("IPC"));
        assert!(figs[3].title.contains("misp ratio"));
    }

    #[test]
    fn tables_render() {
        assert!(table1().render().contains("Naive Bayes"));
        assert!(table2().contains("Word Segmentation"));
        let bench = Characterizer::quick();
        let t3 = table3(&bench);
        assert!(t3.contains("12 MB"));
        assert!(t3.contains("512 entries"));
    }
}
