//! Calibrated workload profiles for every benchmark entry.
//!
//! Each profile is a *cause-level* description (code footprint, working
//! -set mixture, branch regularity, kernel share, dependence structure)
//! — never an effect like an IPC or miss ratio. The simulator in
//! `dc-cpu` turns these causes into the paper's counters mechanistically.
//!
//! Calibration provenance:
//! * the eleven data-analysis profiles are cross-checked against probe
//!   measurements of the real implementations in `dc-analytics`
//!   (op mixes, branch bias, page footprints) and against Table I's
//!   per-workload instruction volumes;
//! * service/SPEC profiles encode the well-documented properties of
//!   those stacks (multi-MB instruction footprints of JVM/C++ servers,
//!   heap-object data locality, >40 % kernel time under network load) —
//!   the paper's own Figures 3-12 and the CloudSuite paper it builds on;
//! * HPCC kernels follow directly from their algorithms (our real
//!   implementations in `dc-suites::hpcc` have exactly these access
//!   patterns).
//!
//! `rat_hazard_rate` is the one direct-injection knob (DESIGN.md §5.3).

use crate::registry::BenchmarkId;
use dc_trace::profile::{
    AccessPattern::{Clustered, Random, Sequential, Tiled},
    CodeModel, DataRegion, InstMix, KernelModel, WorkloadProfile,
};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

fn code(kb: u64, theta: f64, taken: f64, noise: f64, reg: f64) -> CodeModel {
    CodeModel {
        footprint_bytes: kb * KB,
        zipf_theta: theta,
        taken_rate: taken,
        branch_noise: noise,
        regularity: reg,
    }
}

fn mix(load: f64, store: f64, branch: f64, fp: f64) -> InstMix {
    InstMix {
        load,
        store,
        branch,
        fp,
        mul: 0.01,
        div: 0.002,
    }
}

/// The calibrated profile for one benchmark entry.
pub fn profile(id: BenchmarkId) -> WorkloadProfile {
    use BenchmarkId::*;
    let b = WorkloadProfile::builder(id.name());
    let built = match id {
        // ---- Data-analysis workloads --------------------------------
        // Shared traits: few-hundred-KB JVM-ish code footprints, data
        // dominated by a hot working set + record streaming, small
        // kernel share, regular branches, load-chained dependences.
        NaiveBayes => b
            // Smallest instruction footprint of the eleven (tight
            // counting loops) but the sparsest data: huge term-count
            // tables with poor page locality.
            .code(code(112, 0.95, 0.38, 0.018, 0.985))
            .data(vec![
                DataRegion::new(24 * KB, 0.48, Random),
                DataRegion::new(96 * KB, 0.26, Random),
                DataRegion::new(8 * MB, 0.026, Clustered { page_dwell: 8 }),
                DataRegion::new(64 * MB, 0.17, Sequential { stride: 10 }),
            ])
            .mix(mix(0.31, 0.12, 0.16, 0.05))
            .kernel(KernelModel {
                fraction: 0.01,
                burst_ops: 600,
                code: code(48, 1.0, 0.40, 0.02, 0.98),
                data: vec![DataRegion::new(64 * KB, 1.0, Random)],
            })
            .dep(0.80, 1.5)
            .dep_on_load(0.70)
            .serial_chain(0.45)
            .rat_hazard_rate(0.030),
        Svm => b
            .code(code(448, 0.70, 0.38, 0.012, 0.975))
            .data(vec![
                DataRegion::new(24 * KB, 0.62, Random),
                DataRegion::new(64 * KB, 0.25, Random),
                DataRegion::new(1536 * KB, 0.006, Clustered { page_dwell: 20 }),
                DataRegion::new(48 * MB, 0.10, Sequential { stride: 10 }),
            ])
            .mix(mix(0.30, 0.11, 0.15, 0.10))
            .kernel_fraction(0.03)
            .dep(0.68, 2.6)
            .dep_on_load(0.45)
            .serial_chain(0.30)
            .rat_hazard_rate(0.030),
        Grep => b
            .code(code(416, 0.66, 0.36, 0.010, 0.98))
            .data(vec![
                DataRegion::new(16 * KB, 0.60, Random),
                DataRegion::new(64 * KB, 0.22, Random),
                DataRegion::new(MB, 0.006, Clustered { page_dwell: 20 }),
                DataRegion::new(96 * MB, 0.13, Sequential { stride: 9 }),
            ])
            .mix(mix(0.30, 0.08, 0.17, 0.01))
            .kernel_fraction(0.05)
            .dep(0.62, 3.0)
            .dep_on_load(0.42)
            .serial_chain(0.30)
            .rat_hazard_rate(0.030),
        WordCount => b
            .code(code(448, 0.67, 0.38, 0.013, 0.975))
            .data(vec![
                DataRegion::new(24 * KB, 0.56, Random),
                DataRegion::new(72 * KB, 0.28, Random),
                DataRegion::new(1536 * KB, 0.008, Clustered { page_dwell: 20 }),
                DataRegion::new(80 * MB, 0.12, Sequential { stride: 10 }),
            ])
            .mix(mix(0.30, 0.12, 0.16, 0.01))
            .kernel_fraction(0.04)
            .dep(0.50, 5.5)
            .dep_on_load(0.40)
            .serial_chain(0.30)
            .rat_hazard_rate(0.030),
        KMeans => b
            .code(code(416, 0.72, 0.35, 0.010, 0.985))
            .data(vec![
                DataRegion::new(
                    24 * KB,
                    0.55,
                    Tiled {
                        stride: 8,
                        window: 16384,
                    },
                ),
                DataRegion::new(64 * KB, 0.28, Random),
                DataRegion::new(MB, 0.006, Clustered { page_dwell: 20 }),
                DataRegion::new(64 * MB, 0.12, Sequential { stride: 9 }),
            ])
            .mix(mix(0.31, 0.10, 0.14, 0.12))
            .kernel_fraction(0.03)
            .dep(0.70, 2.2)
            .dep_on_load(0.50)
            .serial_chain(0.30)
            .rat_hazard_rate(0.030),
        FuzzyKMeans => b
            .code(code(448, 0.71, 0.35, 0.010, 0.985))
            .data(vec![
                DataRegion::new(
                    32 * KB,
                    0.55,
                    Tiled {
                        stride: 8,
                        window: 24576,
                    },
                ),
                DataRegion::new(72 * KB, 0.27, Random),
                DataRegion::new(MB, 0.008, Clustered { page_dwell: 20 }),
                DataRegion::new(64 * MB, 0.13, Sequential { stride: 9 }),
            ])
            .mix(mix(0.30, 0.11, 0.13, 0.18))
            .kernel_fraction(0.025)
            .dep(0.70, 2.3)
            .dep_on_load(0.50)
            .serial_chain(0.26)
            .rat_hazard_rate(0.030),
        PageRank => b
            .code(code(512, 0.66, 0.38, 0.016, 0.97))
            .data(vec![
                DataRegion::new(24 * KB, 0.50, Random),
                DataRegion::new(80 * KB, 0.27, Random),
                DataRegion::new(3 * MB, 0.016, Clustered { page_dwell: 16 }),
                DataRegion::new(96 * MB, 0.14, Sequential { stride: 10 }),
            ])
            .mix(mix(0.31, 0.12, 0.16, 0.04))
            .kernel_fraction(0.04)
            .dep(0.58, 4.5)
            .dep_on_load(0.48)
            .serial_chain(0.32)
            .rat_hazard_rate(0.032),
        Sort => b
            // OS-intensive outlier: input volume = output volume, so the
            // kernel share is ~24 % (network + disk stacks) and data is
            // dominated by streaming runs.
            .code(code(512, 0.66, 0.38, 0.014, 0.975))
            .data(vec![
                DataRegion::new(24 * KB, 0.42, Random),
                DataRegion::new(80 * KB, 0.26, Random),
                DataRegion::new(1536 * KB, 0.010, Clustered { page_dwell: 20 }),
                DataRegion::new(128 * MB, 0.20, Sequential { stride: 8 }),
            ])
            .mix(mix(0.30, 0.16, 0.16, 0.0))
            .kernel_fraction(0.24)
            .dep(0.50, 5.0)
            .dep_on_load(0.40)
            .serial_chain(0.30)
            .rat_hazard_rate(0.032),
        HiveBench => b
            .code(code(544, 0.65, 0.40, 0.016, 0.97))
            .data(vec![
                DataRegion::new(24 * KB, 0.50, Random),
                DataRegion::new(88 * KB, 0.28, Random),
                DataRegion::new(2 * MB, 0.010, Clustered { page_dwell: 20 }),
                DataRegion::new(96 * MB, 0.14, Sequential { stride: 10 }),
            ])
            .mix(mix(0.31, 0.12, 0.16, 0.02))
            .kernel_fraction(0.05)
            .dep(0.55, 5.0)
            .dep_on_load(0.42)
            .serial_chain(0.32)
            .rat_hazard_rate(0.032),
        Ibcf => b
            .code(code(448, 0.69, 0.37, 0.013, 0.98))
            .data(vec![
                DataRegion::new(24 * KB, 0.52, Random),
                DataRegion::new(72 * KB, 0.28, Random),
                DataRegion::new(1536 * KB, 0.008, Clustered { page_dwell: 18 }),
                DataRegion::new(64 * MB, 0.14, Sequential { stride: 10 }),
            ])
            .mix(mix(0.31, 0.11, 0.15, 0.06))
            .kernel_fraction(0.03)
            .dep(0.70, 2.4)
            .dep_on_load(0.50)
            .serial_chain(0.25)
            .rat_hazard_rate(0.030),
        Hmm => b
            .code(code(352, 0.73, 0.36, 0.011, 0.98))
            .data(vec![
                DataRegion::new(24 * KB, 0.60, Random),
                DataRegion::new(64 * KB, 0.25, Random),
                DataRegion::new(1536 * KB, 0.006, Clustered { page_dwell: 20 }),
                DataRegion::new(48 * MB, 0.11, Sequential { stride: 10 }),
            ])
            .mix(mix(0.30, 0.10, 0.15, 0.06))
            .kernel_fraction(0.03)
            .dep(0.70, 2.5)
            .dep_on_load(0.45)
            .serial_chain(0.30)
            .rat_hazard_rate(0.030),

        // ---- CloudSuite -------------------------------------------
        SoftwareTesting => b
            // Cloud9 symbolic execution: user-mode compute over a large
            // constraint store; not a service.
            .code(code(320, 0.80, 0.40, 0.020, 0.97))
            .data(vec![
                DataRegion::new(32 * KB, 0.66, Random),
                DataRegion::new(96 * KB, 0.24, Random),
                DataRegion::new(2 * MB, 0.012, Clustered { page_dwell: 24 }),
                DataRegion::new(16 * MB, 0.08, Sequential { stride: 16 }),
            ])
            .mix(mix(0.29, 0.12, 0.18, 0.01))
            .kernel_fraction(0.05)
            .dep(0.65, 2.8)
            .dep_on_load(0.45)
            .serial_chain(0.22)
            .rat_hazard_rate(0.02),
        MediaStreaming => b
            // Darwin server: the largest instruction footprint in the
            // paper (~3× the DA average L1I MPKI), kernel-heavy.
            .svc_code(224)
            .svc_data(8, 0.05)
            .mix(mix(0.29, 0.13, 0.18, 0.005))
            .kernel_fraction(0.50)
            .dep(0.50, 5.0)
            .dep_on_load(0.30)
            .rat_hazard_rate(0.35),
        DataServing => b
            .svc_code(224)
            .svc_data(8, 0.048)
            .mix(mix(0.30, 0.13, 0.18, 0.005))
            .kernel_fraction(0.44)
            .dep(0.52, 4.5)
            .dep_on_load(0.35)
            .rat_hazard_rate(0.35),
        WebSearch => b
            .svc_code(208)
            .svc_data(6, 0.04)
            .mix(mix(0.31, 0.11, 0.17, 0.01))
            .kernel_fraction(0.42)
            .dep(0.52, 5.0)
            .dep_on_load(0.35)
            .rat_hazard_rate(0.37),
        WebServing => b
            .svc_code(224)
            .svc_data(6, 0.045)
            .mix(mix(0.30, 0.13, 0.18, 0.005))
            .kernel_fraction(0.50)
            .dep(0.50, 4.5)
            .dep_on_load(0.30)
            .rat_hazard_rate(0.36),

        // ---- SPEC --------------------------------------------------
        SpecFp => b
            .code(code(28, 1.0, 0.25, 0.008, 0.995))
            .data(vec![
                DataRegion::new(
                    24 * KB,
                    0.55,
                    Tiled {
                        stride: 8,
                        window: 16384,
                    },
                ),
                DataRegion::new(768 * KB, 0.30, Sequential { stride: 8 }),
                DataRegion::new(24 * MB, 0.10, Sequential { stride: 8 }),
            ])
            .mix(mix(0.30, 0.10, 0.10, 0.35))
            .kernel_fraction(0.01)
            .dep(0.60, 3.0)
            .dep_on_load(0.35)
            .serial_chain(0.28)
            .rat_hazard_rate(0.004),
        SpecInt => b
            .code(code(72, 0.85, 0.42, 0.055, 0.96))
            .data(vec![
                DataRegion::new(24 * KB, 0.55, Random),
                DataRegion::new(96 * KB, 0.31, Random),
                DataRegion::new(2 * MB, 0.010, Clustered { page_dwell: 12 }),
                DataRegion::new(16 * MB, 0.13, Sequential { stride: 16 }),
            ])
            .mix(mix(0.29, 0.11, 0.18, 0.02))
            .kernel_fraction(0.02)
            .dep(0.64, 2.8)
            .dep_on_load(0.45)
            .serial_chain(0.28)
            .rat_hazard_rate(0.01),
        SpecWeb => b
            .svc_code(232)
            .svc_data(6, 0.045)
            .mix(mix(0.30, 0.13, 0.18, 0.005))
            .kernel_fraction(0.46)
            .dep(0.52, 4.5)
            .dep_on_load(0.32)
            .rat_hazard_rate(0.35),

        // ---- HPCC --------------------------------------------------
        HpccComm => b
            // Message ping-pong: small kernels + network syscalls.
            .code(code(48, 0.85, 0.35, 0.004, 0.995))
            .data(vec![
                DataRegion::new(32 * KB, 0.60, Random),
                DataRegion::new(MB, 0.40, Sequential { stride: 16 }),
            ])
            .mix(mix(0.30, 0.15, 0.14, 0.01))
            .kernel_fraction(0.20)
            .dep(0.65, 2.5)
            .dep_on_load(0.50)
            .serial_chain(0.40)
            .rat_hazard_rate(0.005),
        HpccDgemm => b
            .code(code(8, 1.1, 0.20, 0.002, 0.999))
            .data(vec![
                DataRegion::new(
                    24 * KB,
                    0.92,
                    Tiled {
                        stride: 8,
                        window: 16384,
                    },
                ),
                DataRegion::new(1536 * KB, 0.06, Sequential { stride: 8 }),
            ])
            .mix(mix(0.30, 0.08, 0.08, 0.35))
            .dep(0.60, 3.0)
            .dep_on_load(0.25)
            .serial_chain(0.33)
            .rat_hazard_rate(0.0),
        HpccFft => b
            .code(code(8, 1.0, 0.22, 0.003, 0.999))
            .data(vec![
                DataRegion::new(
                    32 * KB,
                    0.55,
                    Tiled {
                        stride: 16,
                        window: 32768,
                    },
                ),
                DataRegion::new(3 * MB, 0.40, Sequential { stride: 16 }),
            ])
            .mix(mix(0.30, 0.12, 0.10, 0.30))
            .dep(0.60, 3.0)
            .dep_on_load(0.30)
            .serial_chain(0.30)
            .rat_hazard_rate(0.0),
        HpccHpl => b
            .code(code(12, 1.1, 0.18, 0.002, 0.999))
            .data(vec![
                DataRegion::new(
                    24 * KB,
                    0.90,
                    Tiled {
                        stride: 8,
                        window: 16384,
                    },
                ),
                DataRegion::new(2 * MB, 0.08, Sequential { stride: 8 }),
            ])
            .mix(mix(0.31, 0.09, 0.08, 0.34))
            .dep(0.60, 3.0)
            .dep_on_load(0.25)
            .serial_chain(0.33)
            .rat_hazard_rate(0.0),
        HpccPtrans => b
            // Transpose: column-order reads destroy line and page reuse.
            .code(code(8, 1.0, 0.15, 0.002, 0.999))
            .data(vec![
                DataRegion::new(32 * KB, 0.35, Random),
                DataRegion::new(24 * MB, 0.05, Clustered { page_dwell: 24 }),
                DataRegion::new(48 * MB, 0.60, Sequential { stride: 8 }),
            ])
            .mix(mix(0.33, 0.17, 0.09, 0.08))
            .dep(0.40, 7.0)
            .dep_on_load(0.25)
            .rat_hazard_rate(0.0),
        HpccRandomAccess => b
            // GUPS: read-modify-write at random 64-bit words of a giant
            // table, with heavy copy_user kernel work (paper: ~31 %
            // kernel instructions).
            .code(code(8, 1.0, 0.12, 0.002, 0.999))
            .data(vec![
                DataRegion::new(16 * KB, 0.682, Random),
                DataRegion::new(64 * MB, 0.30, Sequential { stride: 8 }),
                DataRegion::new(256 * MB, 0.018, Random),
            ])
            .mix(mix(0.28, 0.20, 0.08, 0.0))
            .kernel(KernelModel {
                fraction: 0.31,
                ..KernelModel::generic(0.31)
            })
            .dep(0.70, 2.0)
            .dep_on_load(0.65)
            .serial_chain(0.62)
            .rat_hazard_rate(0.0),
        HpccStream => b
            .code(code(4, 1.0, 0.10, 0.001, 0.999))
            .data(vec![
                DataRegion::new(30 * MB, 0.50, Sequential { stride: 8 }),
                DataRegion::new(30 * MB, 0.50, Sequential { stride: 8 }),
            ])
            .mix(mix(0.33, 0.18, 0.10, 0.25))
            .dep(0.35, 10.0)
            .dep_on_load(0.15)
            .rat_hazard_rate(0.0),
    };
    built
        .build()
        .unwrap_or_else(|e| panic!("profile for {id} failed validation: {e}"))
}

/// Builder shorthands shared by the service profiles.
trait ServiceShorthand {
    /// Multi-MB flat service/JVM instruction footprint.
    fn svc_code(self, kb: u64) -> Self;
    /// Service heap mixture: hot structures + session state + a
    /// `far_mb` object heap + a cold gigabyte-class region, with
    /// `far_weight` of accesses on the far heap.
    fn svc_data(self, far_mb: u64, far_weight: f64) -> Self;
}

impl ServiceShorthand for dc_trace::profile::ProfileBuilder {
    fn svc_code(self, kb: u64) -> Self {
        self.code(code(kb, 0.30, 0.42, 0.028, 0.93))
    }

    fn svc_data(self, far_mb: u64, far_weight: f64) -> Self {
        self.data(vec![
            DataRegion::new(16 * KB, 0.52, Random),
            DataRegion::new(96 * KB, 1.0 - 0.52 - far_weight - 0.012, Random),
            DataRegion::new(far_mb * MB, far_weight, Clustered { page_dwell: 48 }),
            DataRegion::new(192 * MB, 0.012, Clustered { page_dwell: 14 }),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_has_a_valid_profile() {
        for &id in BenchmarkId::all() {
            let p = profile(id);
            assert_eq!(p.name, id.name());
            assert!(!p.data.is_empty());
        }
    }

    #[test]
    fn service_profiles_are_kernel_heavy() {
        for &id in BenchmarkId::services() {
            let p = profile(id);
            assert!(
                p.kernel_fraction() > 0.4,
                "{id}: services execute >40% kernel instructions"
            );
        }
    }

    #[test]
    fn data_analysis_profiles_are_mostly_user_mode() {
        for &id in BenchmarkId::data_analysis() {
            let p = profile(id);
            if id == BenchmarkId::Sort {
                assert!(p.kernel_fraction() > 0.2, "Sort is the OS-heavy outlier");
            } else {
                assert!(p.kernel_fraction() < 0.1, "{id}");
            }
        }
    }

    #[test]
    fn service_code_footprints_dwarf_hpcc() {
        // Profiles model the *hot* instruction working set; service
        // stacks run hundreds of KB hot vs a few KB for HPC kernels.
        let svc_min = BenchmarkId::services()
            .iter()
            .map(|&id| profile(id).code.footprint_bytes)
            .min()
            .expect("nonempty");
        let hpcc_max = BenchmarkId::hpcc()
            .iter()
            .map(|&id| profile(id).code.footprint_bytes)
            .max()
            .expect("nonempty");
        assert!(svc_min > 4 * hpcc_max, "{svc_min} vs {hpcc_max}");
        assert!(svc_min >= 200 * 1024, "service hot code is hundreds of KB");
    }

    #[test]
    fn rat_injection_only_where_documented() {
        // The RAT knob is meaningful for service-class stacks; HPCC
        // kernels must not use it.
        for &id in BenchmarkId::hpcc() {
            assert!(profile(id).rat_hazard_rate < 0.01, "{id}");
        }
        for &id in BenchmarkId::services() {
            assert!(profile(id).rat_hazard_rate > 0.1, "{id}");
        }
    }
}
