//! Process-wide memoizing cache for characterization results.
//!
//! Every exhibit is a pure function of `(benchmark entry, machine
//! config, measurement window, seed)`: the synthetic trace is seeded,
//! the core model is deterministic, so the measured [`PerfCounts`]
//! block for a given key never changes. Regenerating several figures
//! in one process (`characterize_all -- fig3 fig7 fig9`, the report
//! tests, the bench harness) used to re-simulate the same ~3.2 M-µop
//! window once per figure; the cache collapses that to once per key.
//!
//! Raw *counter blocks* are cached, not derived [`Metrics`] rows, so
//! `run`, `run_with_events` and `raw_counts` all share hits.
//!
//! The memo dies with the process; [`attach_store`] extends it across
//! processes by binding a `dc-store` append-only log: recovery seeds
//! the table at attach (every hit on a preloaded key is a `store_hit`),
//! and every subsequent miss writes through so the *next* process
//! starts warm. `DCBENCH_STORE=<path>` is the shared opt-in switch
//! ([`attach_from_env`]) used by `characterize_all` and `sweeps`.
//!
//! [`Metrics`]: dc_perfmon::Metrics

use crate::registry::BenchmarkId;
use dc_cpu::{core::SimOptions, CpuConfig, PerfCounts, SamplePlan};
use dc_obs::metrics::{self, Counter};
use dc_obs::{Recorder, Value};
use dc_store::{CompactStats, Record, Store, StoreKey};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Complete identity of one characterization measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The benchmark entry measured.
    pub id: BenchmarkId,
    /// [`CpuConfig::stable_hash`] of the simulated machine.
    pub cfg_hash: u64,
    /// Measured-window µops.
    pub max_ops: u64,
    /// Warm-up µops.
    pub warmup_ops: u64,
    /// Per-entry trace seed (already mixed with the entry id).
    pub seed: u64,
    /// Co-run width: how many copies of the entry shared the chip's L3
    /// (1 = the classic solo measurement). Part of the key because the
    /// same entry under contention produces different counters.
    pub corun: u32,
    /// The SMARTS sampling plan the window ran under, `None` for exact
    /// cycle-accurate simulation. Part of the key because sampled
    /// counters are extrapolations: a sampled block must never satisfy
    /// an exact lookup (or vice versa), and two different plans
    /// extrapolate differently.
    pub sample: Option<SamplePlan>,
}

impl CacheKey {
    /// Build the key for one solo entry under one harness configuration.
    pub fn new(id: BenchmarkId, cfg: &CpuConfig, opts: &SimOptions, seed: u64) -> Self {
        CacheKey {
            id,
            cfg_hash: cfg.stable_hash(),
            max_ops: opts.max_ops,
            warmup_ops: opts.warmup_ops,
            seed,
            corun: 1,
            sample: opts.sample,
        }
    }

    /// The same measurement at a different co-run width.
    pub fn with_corun(mut self, corun: u32) -> Self {
        self.corun = corun;
        self
    }
}

/// The cache's lifetime counters, registered once in the process-wide
/// metrics registry ([`dc_obs::metrics::global`]).
///
/// These used to be private `AtomicU64` statics mirrored into telemetry
/// events by hand; promoting them to registry counters means the
/// `stats` verb, the text exposition and the [`sim_invocations`]-style
/// accessors all read the *same cells* the hot path increments — event
/// counts and metric counters cannot disagree, because there is exactly
/// one increment site for both (`emit_lookup` and friends).
struct CacheMetrics {
    /// Simulations actually executed (cache misses + uncached runs):
    /// `dcbench_sim_runs_total`.
    sims: Counter,
    /// Lookups satisfied without simulating: `dcbench_cache_hits_total`.
    hits: Counter,
    /// Lookups satisfied by records preloaded from a persistent store:
    /// `dcbench_store_hits_total`.
    store_hits: Counter,
    /// Simulated misses that happened while a store was attached (each
    /// one became a write-through append): `dcbench_store_misses_total`.
    store_misses: Counter,
    /// Write-through appends that failed at the I/O layer. The store is
    /// an amortization layer, not a system of record, so append errors
    /// degrade to "this record won't warm the next run" rather than
    /// failing the measurement — but they are counted, never swallowed
    /// invisibly: `dcbench_store_write_errors_total`.
    write_errors: Counter,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = metrics::global();
        CacheMetrics {
            sims: reg.counter("dcbench_sim_runs_total", &[]),
            hits: reg.counter("dcbench_cache_hits_total", &[]),
            store_hits: reg.counter("dcbench_store_hits_total", &[]),
            store_misses: reg.counter("dcbench_store_misses_total", &[]),
            write_errors: reg.counter("dcbench_store_write_errors_total", &[]),
        }
    })
}

/// All mutable cache state, under **one** mutex.
///
/// The memo table, the preloaded-key set, and the attached store handle
/// used to live behind three separate locks, which made
/// [`attach_store`] racy against parallel workers: a worker could miss,
/// simulate, and check the (not-yet-installed) store handle while the
/// attach was still seeding the memo table — leaving that measurement
/// memoized but never written through, so the *next* process started
/// cold on it. With a single lock, an attach observes either the state
/// strictly before a miss's insertion (and catches the entry up itself)
/// or strictly after it (and the miss sees the installed handle); there
/// is no in-between. `tests/cache_attach_race.rs` pins the resulting
/// invariant: after any attach, every memoized measurement is durable.
struct CacheState {
    /// The memo table: measured counter blocks by key.
    memo: HashMap<CacheKey, Vec<PerfCounts>>,
    /// Keys whose memo entry was preloaded from a persistent store —
    /// hits on these are `store_hit`s (the measurement crossed a
    /// process boundary), hits on everything else are plain
    /// `cache_hit`s.
    from_store: HashSet<CacheKey>,
    /// The attached persistent store handle, if any (write-through
    /// target).
    store: Option<Store>,
}

fn state() -> &'static Mutex<CacheState> {
    static STATE: OnceLock<Mutex<CacheState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(CacheState {
            memo: HashMap::new(),
            from_store: HashSet::new(),
            store: None,
        })
    })
}

fn lock() -> MutexGuard<'static, CacheState> {
    // Cache payloads are plain counter blocks; a panicking simulation
    // never holds the lock, but recover from poisoning regardless.
    state().lock().unwrap_or_else(|p| p.into_inner())
}

/// The on-disk mirror of a [`CacheKey`] (the store crate cannot name
/// `BenchmarkId`, so entries are keyed by their stable registry name).
fn to_store_key(key: &CacheKey) -> StoreKey {
    StoreKey {
        entry: key.id.name().to_string(),
        cfg_hash: key.cfg_hash,
        max_ops: key.max_ops,
        warmup_ops: key.warmup_ops,
        seed: key.seed,
        corun: key.corun,
        sample: key.sample.map(|p| (p.detail_ops, p.ffwd_ops)),
    }
}

/// Map a recovered store key back to a cache key. `None` when the
/// entry name is unknown to this build's registry (a foreign or
/// future store file) — such records are skipped, not fatal.
fn from_store_key(key: &StoreKey) -> Option<CacheKey> {
    Some(CacheKey {
        id: BenchmarkId::from_name(&key.entry)?,
        cfg_hash: key.cfg_hash,
        max_ops: key.max_ops,
        warmup_ops: key.warmup_ops,
        seed: key.seed,
        corun: key.corun,
        sample: key.sample.map(|(detail_ops, ffwd_ops)| SamplePlan {
            detail_ops,
            ffwd_ops,
        }),
    })
}

/// Record that one real simulation ran (also called by uncached paths,
/// so the "zero simulation work" test can observe both).
pub(crate) fn note_simulation() {
    cache_metrics().sims.inc();
}

/// Emit the cache-telemetry event for one lookup. `ts` is 0 for every
/// cache event: lookups live in the host's logical time, not any
/// simulated clock; ordering comes from the recorder's `seq`.
fn emit_lookup(recorder: &Recorder, kind: &'static str, key: &CacheKey) {
    if recorder.is_enabled() {
        recorder.emit(
            0,
            kind,
            vec![
                ("entry", Value::str(key.id.name())),
                ("corun", Value::U64(u64::from(key.corun))),
            ],
        );
    }
}

/// Return the counter block for `key`, simulating via `compute` only on
/// a miss.
///
/// The lock is *not* held during `compute` so parallel workers can miss
/// on different keys concurrently; two threads racing on the same key
/// both simulate and insert the identical deterministic block — wasted
/// work in a pathological schedule, never wrong data.
///
/// Every lookup emits one `cache_hit` or `cache_miss` event through
/// `recorder` (a miss is exactly one real simulation), mirroring the
/// [`sim_invocations`]/[`cache_hits`] lifetime counters.
pub(crate) fn counts_for(
    key: CacheKey,
    recorder: &Recorder,
    compute: impl FnOnce() -> PerfCounts,
) -> PerfCounts {
    counts_vec_for(key, recorder, || vec![compute()])[0]
}

/// Vector-valued variant for chip co-runs: one counter block per core,
/// indexed by core, under one key. Solo lookups are the one-element
/// special case, so a width-1 co-run and a plain run share hits.
pub(crate) fn counts_vec_for(
    key: CacheKey,
    recorder: &Recorder,
    compute: impl FnOnce() -> Vec<PerfCounts>,
) -> Vec<PerfCounts> {
    {
        let st = lock();
        if let Some(hit) = st.memo.get(&key).cloned() {
            let preloaded = st.from_store.contains(&key);
            drop(st);
            cache_metrics().hits.inc();
            if preloaded {
                cache_metrics().store_hits.inc();
                emit_lookup(recorder, "store_hit", &key);
            } else {
                emit_lookup(recorder, "cache_hit", &key);
            }
            return hit;
        }
    }
    note_simulation();
    emit_lookup(recorder, "cache_miss", &key);
    let counts = compute();
    let mut st = lock();
    if st.memo.contains_key(&key) {
        // Two threads raced on the same cold key; the winner already
        // inserted (and, if a store is attached, wrote through) the
        // identical deterministic block. Wasted work, never wrong data
        // — and never a duplicate store record.
        return counts;
    }
    st.memo.insert(key, counts.clone());
    // Write-through: an attached store makes this measurement durable
    // for the next process. One framed append per miss, under the same
    // lock as the insertion so an in-flight attach can never observe
    // the entry memoized but not yet appended; I/O failure degrades to
    // a cold record next run (counted, not fatal).
    let append_failed = match st.store.as_mut() {
        Some(store) => {
            cache_metrics().store_misses.inc();
            let record = Record {
                key: to_store_key(&key),
                counts: counts.clone(),
            };
            Some(store.append(&record).is_err())
        }
        None => None,
    };
    drop(st);
    if let Some(failed) = append_failed {
        emit_lookup(recorder, "store_miss", &key);
        if failed {
            cache_metrics().write_errors.inc();
        }
    }
    counts
}

/// Total simulations executed by this process (misses + uncached runs).
pub fn sim_invocations() -> u64 {
    cache_metrics().sims.value()
}

/// Total lookups satisfied from the cache.
pub fn cache_hits() -> u64 {
    cache_metrics().hits.value()
}

/// Lookups satisfied by records preloaded from a persistent store.
pub fn store_hits() -> u64 {
    cache_metrics().store_hits.value()
}

/// Simulated misses that were written through to an attached store.
pub fn store_misses() -> u64 {
    cache_metrics().store_misses.value()
}

/// Write-through appends that failed at the I/O layer.
pub fn store_write_errors() -> u64 {
    cache_metrics().write_errors.value()
}

/// Number of distinct measurements currently cached.
pub fn len() -> usize {
    lock().memo.len()
}

/// Whether the cache is empty.
pub fn is_empty() -> bool {
    lock().memo.is_empty()
}

/// Drop every cached measurement AND reset the hit/miss/invocation
/// telemetry counters to zero. The counters must reset with the memo
/// table: callers assert on them relative to a `clear()` (the bench
/// harness between timed phases, the warm-start tests around store
/// attaches), and counters that survived the memo made every such
/// assertion test-order dependent. An attached store handle is *not*
/// detached — it is I/O state, not cache state — but its preloaded-key
/// set is dropped along with the memo entries it described.
pub fn clear() {
    let mut st = lock();
    st.memo.clear();
    st.from_store.clear();
    drop(st);
    let m = cache_metrics();
    m.sims.reset();
    m.hits.reset();
    m.store_hits.reset();
    m.store_misses.reset();
    m.write_errors.reset();
}

/// What attaching or loading a persistent store found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreReport {
    /// Verified records loaded into the memo table.
    pub loaded: usize,
    /// Verified records whose entry name this build's registry does not
    /// know (foreign or future store files) — skipped.
    pub unknown_entries: usize,
    /// Complete-but-corrupt log lines quarantined by recovery.
    pub corrupt_skipped: u64,
    /// Verified records skipped as belonging to a superseded generation.
    pub stale_skipped: u64,
    /// Torn-tail bytes truncated by recovery.
    pub truncated_bytes: u64,
    /// Records shadowed by a later write of the same key.
    pub superseded: u64,
    /// Measurements that were already memoized *before* the store was
    /// attached and absent from its log, written through at attach time
    /// so pre-attach work is just as durable as post-attach work.
    pub caught_up: usize,
}

/// Seed the memo table under `st`'s lock from recovered records.
/// Records whose key is already memoized are *not* re-inserted (the
/// local computation is bit-identical by determinism) and keep counting
/// as locally computed, so their hits stay `cache_hit`s.
fn seed_memo(st: &mut CacheState, recovery: &dc_store::Recovery, report: &mut StoreReport) {
    for record in &recovery.records {
        let Some(key) = from_store_key(&record.key) else {
            report.unknown_entries += 1;
            continue;
        };
        if let std::collections::hash_map::Entry::Vacant(slot) = st.memo.entry(key) {
            slot.insert(record.counts.clone());
            st.from_store.insert(key);
        }
        report.loaded += 1;
    }
}

/// Build the damage side of a [`StoreReport`] and emit the recovery
/// telemetry (`store_corrupt_skipped` / `store_truncated`, only when
/// there was damage to report).
fn damage_report(recovery: &dc_store::Recovery, recorder: &Recorder) -> StoreReport {
    let report = StoreReport {
        corrupt_skipped: recovery.corrupt_skipped,
        stale_skipped: recovery.stale_skipped,
        truncated_bytes: recovery.truncated_bytes,
        superseded: recovery.superseded,
        ..StoreReport::default()
    };
    if recorder.is_enabled() {
        if report.corrupt_skipped > 0 || report.stale_skipped > 0 {
            recorder.emit(
                0,
                "store_corrupt_skipped",
                vec![
                    ("records", Value::U64(report.corrupt_skipped)),
                    ("stale", Value::U64(report.stale_skipped)),
                ],
            );
        }
        if report.truncated_bytes > 0 {
            recorder.emit(
                0,
                "store_truncated",
                vec![("bytes", Value::U64(report.truncated_bytes))],
            );
        }
    }
    report
}

/// Attach a persistent store: recover `path` (repairing a torn tail or
/// damaged header in place), seed the memo table with every verified
/// record, write through any measurement memoized before the attach
/// that the log does not already hold, and keep the handle open so
/// subsequent misses write through. Replaces any previously attached
/// store.
///
/// Safe at **any** point in the process lifetime, including while
/// parallel workers are actively populating the memo table: seeding,
/// catch-up, and handle installation happen under the same lock as
/// miss insertion, so every measurement is durable the moment the
/// attach returns — there is no window in which a concurrent miss can
/// land memoized-but-unpersisted.
pub fn attach_store(path: impl AsRef<Path>, recorder: &Recorder) -> std::io::Result<StoreReport> {
    let (mut store, recovery) = Store::open(path.as_ref())?;
    let mut report = damage_report(&recovery, recorder);
    let in_store: HashSet<StoreKey> = recovery.records.iter().map(|r| r.key.clone()).collect();
    let mut st = lock();
    seed_memo(&mut st, &recovery, &mut report);
    // Catch-up write-through: measurements simulated before this attach
    // would otherwise stay process-local forever (the old racy window,
    // stretched to the whole pre-attach lifetime).
    for (key, counts) in &st.memo {
        let skey = to_store_key(key);
        if in_store.contains(&skey) {
            continue;
        }
        let record = Record {
            key: skey,
            counts: counts.clone(),
        };
        if store.append(&record).is_err() {
            cache_metrics().write_errors.inc();
        } else {
            report.caught_up += 1;
        }
    }
    st.store = Some(store);
    Ok(report)
}

/// Attach the store named by the `DCBENCH_STORE` environment variable,
/// if set (the shared warm-start switch for `characterize_all`,
/// `corun`, and `sweeps`). Returns `None` when the variable is unset
/// or empty.
pub fn attach_from_env(recorder: &Recorder) -> std::io::Result<Option<StoreReport>> {
    match std::env::var("DCBENCH_STORE") {
        Ok(path) if !path.is_empty() => attach_store(path, recorder).map(Some),
        _ => Ok(None),
    }
}

/// Warm the memo table from a store file *read-only*: no repair, no
/// write-through, no handle kept. For one-shot consumers that must not
/// mutate a shared store.
pub fn load_from(path: impl AsRef<Path>, recorder: &Recorder) -> std::io::Result<StoreReport> {
    let recovery = dc_store::scan(path.as_ref())?;
    let mut report = damage_report(&recovery, recorder);
    seed_memo(&mut lock(), &recovery, &mut report);
    Ok(report)
}

/// Export every currently memoized measurement to the store at `path`
/// (appending only records the store does not already hold). Returns
/// the number of records written. Works with or without an attached
/// store; the handle is closed on return.
pub fn persist_to(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let (mut store, recovery) = Store::open(path.as_ref())?;
    let existing: HashSet<StoreKey> = recovery.records.into_iter().map(|r| r.key).collect();
    let entries: Vec<(CacheKey, Vec<PerfCounts>)> =
        lock().memo.iter().map(|(k, v)| (*k, v.clone())).collect();
    let mut written = 0usize;
    for (key, counts) in entries {
        let record = Record {
            key: to_store_key(&key),
            counts,
        };
        if existing.contains(&record.key) {
            continue;
        }
        store.append(&record)?;
        written += 1;
    }
    Ok(written)
}

/// Detach the attached store, if any (memoized measurements stay; they
/// simply stop being written through). Returns whether one was
/// attached.
pub fn detach_store() -> bool {
    let mut st = lock();
    let had = st.store.take().is_some();
    st.from_store.clear();
    had
}

/// Compact the attached store's log — dropping quarantined, stale, and
/// superseded frames — and emit a `store_compacted` event. `None` when
/// no store is attached.
pub fn compact_store(recorder: &Recorder) -> std::io::Result<Option<CompactStats>> {
    let mut st = lock();
    let Some(store) = st.store.as_mut() else {
        return Ok(None);
    };
    let stats = store.compact()?;
    drop(st);
    if recorder.is_enabled() {
        recorder.emit(
            0,
            "store_compacted",
            vec![
                ("live", Value::U64(stats.live)),
                ("dropped", Value::U64(stats.dropped)),
            ],
        );
    }
    Ok(Some(stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645(),
            &SimOptions::quick(),
            seed,
        )
    }

    #[test]
    fn key_separates_config_window_and_seed() {
        let base = key(1);
        assert_eq!(base, key(1));
        assert_ne!(base, key(2));
        let fatter_l3 = CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645().with_l3_bytes(24 << 20),
            &SimOptions::quick(),
            1,
        );
        assert_ne!(base, fatter_l3);
        let longer = CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645(),
            &SimOptions::exact(1, 0),
            1,
        );
        assert_ne!(base, longer);
        let other_entry = CacheKey {
            id: BenchmarkId::Grep,
            ..base
        };
        assert_ne!(base, other_entry);
        assert_ne!(base, base.with_corun(4), "co-run width is part of the key");
        assert_eq!(base, base.with_corun(1), "width 1 is the solo key");
        let sampled = CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645(),
            &SimOptions::quick().with_sampling(25_000, 75_000),
            1,
        );
        assert_ne!(
            base, sampled,
            "a sampled extrapolation must never satisfy an exact lookup"
        );
        let other_plan = CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645(),
            &SimOptions::quick().with_sampling(10_000, 90_000),
            1,
        );
        assert_ne!(sampled, other_plan, "the plan itself is part of the key");
    }

    #[test]
    fn corun_vectors_round_trip() {
        let k = key(0xC05E_EDC0_5EED).with_corun(3);
        let blocks: Vec<PerfCounts> = (1..=3)
            .map(|i| PerfCounts {
                cycles: i,
                ..PerfCounts::default()
            })
            .collect();
        let mut computed = 0u32;
        let rec = Recorder::disabled();
        let a = counts_vec_for(k, &rec, || {
            computed += 1;
            blocks.clone()
        });
        let b = counts_vec_for(k, &rec, || {
            computed += 1;
            Vec::new()
        });
        assert_eq!(computed, 1, "warm lookup must not recompute");
        assert_eq!(a, blocks);
        assert_eq!(b, blocks);
    }

    #[test]
    fn miss_computes_then_hit_reuses() {
        // A seed no other test uses, so this binary's concurrency
        // cannot interleave on the same key.
        let k = key(0xDEAD_BEEF_0BAD_F00D);
        let mut computed = 0u32;
        let rec = Recorder::disabled();
        let a = counts_for(k, &rec, || {
            computed += 1;
            PerfCounts {
                cycles: 7,
                instructions: 3,
                ..PerfCounts::default()
            }
        });
        assert_eq!(computed, 1);
        let b = counts_for(k, &rec, || {
            computed += 1;
            PerfCounts::default()
        });
        assert_eq!(computed, 1, "second lookup must not recompute");
        assert_eq!(a, b);
    }

    #[test]
    fn lookups_emit_matching_telemetry_events() {
        // A seed no other test uses (same-key isolation).
        let k = key(0x0B5E_C0DE_2026);
        let (rec, buf) = Recorder::ring(64);
        let _ = counts_for(k, &rec, PerfCounts::default);
        let _ = counts_for(k, &rec, PerfCounts::default);
        let _ = counts_for(k, &rec, PerfCounts::default);
        assert_eq!(buf.count_kind("cache_miss"), 1);
        assert_eq!(buf.count_kind("cache_hit"), 2);
        let events = buf.snapshot();
        assert_eq!(events[0].kind, "cache_miss");
        assert_eq!(
            events[0].field("entry").and_then(Value::as_str),
            Some(BenchmarkId::Sort.name())
        );
        assert_eq!(events[0].field("corun").and_then(Value::as_u64), Some(1));
    }
}
