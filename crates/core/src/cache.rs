//! Process-wide memoizing cache for characterization results.
//!
//! Every exhibit is a pure function of `(benchmark entry, machine
//! config, measurement window, seed)`: the synthetic trace is seeded,
//! the core model is deterministic, so the measured [`PerfCounts`]
//! block for a given key never changes. Regenerating several figures
//! in one process (`characterize_all -- fig3 fig7 fig9`, the report
//! tests, the bench harness) used to re-simulate the same ~3.2 M-µop
//! window once per figure; the cache collapses that to once per key.
//!
//! Raw *counter blocks* are cached, not derived [`Metrics`] rows, so
//! `run`, `run_with_events` and `raw_counts` all share hits.
//!
//! [`Metrics`]: dc_perfmon::Metrics

use crate::registry::BenchmarkId;
use dc_cpu::{core::SimOptions, CpuConfig, PerfCounts};
use dc_obs::{Recorder, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Complete identity of one characterization measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The benchmark entry measured.
    pub id: BenchmarkId,
    /// [`CpuConfig::stable_hash`] of the simulated machine.
    pub cfg_hash: u64,
    /// Measured-window µops.
    pub max_ops: u64,
    /// Warm-up µops.
    pub warmup_ops: u64,
    /// Per-entry trace seed (already mixed with the entry id).
    pub seed: u64,
    /// Co-run width: how many copies of the entry shared the chip's L3
    /// (1 = the classic solo measurement). Part of the key because the
    /// same entry under contention produces different counters.
    pub corun: u32,
}

impl CacheKey {
    /// Build the key for one solo entry under one harness configuration.
    pub fn new(id: BenchmarkId, cfg: &CpuConfig, opts: &SimOptions, seed: u64) -> Self {
        CacheKey {
            id,
            cfg_hash: cfg.stable_hash(),
            max_ops: opts.max_ops,
            warmup_ops: opts.warmup_ops,
            seed,
            corun: 1,
        }
    }

    /// The same measurement at a different co-run width.
    pub fn with_corun(mut self, corun: u32) -> Self {
        self.corun = corun;
        self
    }
}

/// Simulations actually executed (cache misses + uncached runs).
static SIM_INVOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Lookups satisfied without simulating.
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);

fn table() -> &'static Mutex<HashMap<CacheKey, Vec<PerfCounts>>> {
    static TABLE: OnceLock<Mutex<HashMap<CacheKey, Vec<PerfCounts>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<CacheKey, Vec<PerfCounts>>> {
    // Cache payloads are plain counter blocks; a panicking simulation
    // never holds the lock, but recover from poisoning regardless.
    table().lock().unwrap_or_else(|p| p.into_inner())
}

/// Record that one real simulation ran (also called by uncached paths,
/// so the "zero simulation work" test can observe both).
pub(crate) fn note_simulation() {
    SIM_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Emit the cache-telemetry event for one lookup. `ts` is 0 for every
/// cache event: lookups live in the host's logical time, not any
/// simulated clock; ordering comes from the recorder's `seq`.
fn emit_lookup(recorder: &Recorder, kind: &'static str, key: &CacheKey) {
    if recorder.is_enabled() {
        recorder.emit(
            0,
            kind,
            vec![
                ("entry", Value::str(key.id.name())),
                ("corun", Value::U64(u64::from(key.corun))),
            ],
        );
    }
}

/// Return the counter block for `key`, simulating via `compute` only on
/// a miss.
///
/// The lock is *not* held during `compute` so parallel workers can miss
/// on different keys concurrently; two threads racing on the same key
/// both simulate and insert the identical deterministic block — wasted
/// work in a pathological schedule, never wrong data.
///
/// Every lookup emits one `cache_hit` or `cache_miss` event through
/// `recorder` (a miss is exactly one real simulation), mirroring the
/// [`sim_invocations`]/[`cache_hits`] lifetime counters.
pub(crate) fn counts_for(
    key: CacheKey,
    recorder: &Recorder,
    compute: impl FnOnce() -> PerfCounts,
) -> PerfCounts {
    counts_vec_for(key, recorder, || vec![compute()])[0]
}

/// Vector-valued variant for chip co-runs: one counter block per core,
/// indexed by core, under one key. Solo lookups are the one-element
/// special case, so a width-1 co-run and a plain run share hits.
pub(crate) fn counts_vec_for(
    key: CacheKey,
    recorder: &Recorder,
    compute: impl FnOnce() -> Vec<PerfCounts>,
) -> Vec<PerfCounts> {
    if let Some(hit) = lock().get(&key).cloned() {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        emit_lookup(recorder, "cache_hit", &key);
        return hit;
    }
    note_simulation();
    emit_lookup(recorder, "cache_miss", &key);
    let counts = compute();
    lock().insert(key, counts.clone());
    counts
}

/// Total simulations executed by this process (misses + uncached runs).
pub fn sim_invocations() -> u64 {
    SIM_INVOCATIONS.load(Ordering::Relaxed)
}

/// Total lookups satisfied from the cache.
pub fn cache_hits() -> u64 {
    CACHE_HITS.load(Ordering::Relaxed)
}

/// Number of distinct measurements currently cached.
pub fn len() -> usize {
    lock().len()
}

/// Whether the cache is empty.
pub fn is_empty() -> bool {
    lock().is_empty()
}

/// Drop every cached measurement (the invocation/hit counters keep
/// counting — they are lifetime telemetry, not cache state). The bench
/// harness clears between timed phases so "parallel" never reads
/// "sequential"'s results.
pub fn clear() {
    lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645(),
            &SimOptions::quick(),
            seed,
        )
    }

    #[test]
    fn key_separates_config_window_and_seed() {
        let base = key(1);
        assert_eq!(base, key(1));
        assert_ne!(base, key(2));
        let fatter_l3 = CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645().with_l3_bytes(24 << 20),
            &SimOptions::quick(),
            1,
        );
        assert_ne!(base, fatter_l3);
        let longer = CacheKey::new(
            BenchmarkId::Sort,
            &CpuConfig::westmere_e5645(),
            &SimOptions {
                max_ops: 1,
                warmup_ops: 0,
            },
            1,
        );
        assert_ne!(base, longer);
        let other_entry = CacheKey {
            id: BenchmarkId::Grep,
            ..base
        };
        assert_ne!(base, other_entry);
        assert_ne!(base, base.with_corun(4), "co-run width is part of the key");
        assert_eq!(base, base.with_corun(1), "width 1 is the solo key");
    }

    #[test]
    fn corun_vectors_round_trip() {
        let k = key(0xC05E_EDC0_5EED).with_corun(3);
        let blocks: Vec<PerfCounts> = (1..=3)
            .map(|i| PerfCounts {
                cycles: i,
                ..PerfCounts::default()
            })
            .collect();
        let mut computed = 0u32;
        let rec = Recorder::disabled();
        let a = counts_vec_for(k, &rec, || {
            computed += 1;
            blocks.clone()
        });
        let b = counts_vec_for(k, &rec, || {
            computed += 1;
            Vec::new()
        });
        assert_eq!(computed, 1, "warm lookup must not recompute");
        assert_eq!(a, blocks);
        assert_eq!(b, blocks);
    }

    #[test]
    fn miss_computes_then_hit_reuses() {
        // A seed no other test uses, so this binary's concurrency
        // cannot interleave on the same key.
        let k = key(0xDEAD_BEEF_0BAD_F00D);
        let mut computed = 0u32;
        let rec = Recorder::disabled();
        let a = counts_for(k, &rec, || {
            computed += 1;
            PerfCounts {
                cycles: 7,
                instructions: 3,
                ..PerfCounts::default()
            }
        });
        assert_eq!(computed, 1);
        let b = counts_for(k, &rec, || {
            computed += 1;
            PerfCounts::default()
        });
        assert_eq!(computed, 1, "second lookup must not recompute");
        assert_eq!(a, b);
    }

    #[test]
    fn lookups_emit_matching_telemetry_events() {
        // A seed no other test uses (same-key isolation).
        let k = key(0x0B5E_C0DE_2026);
        let (rec, buf) = Recorder::ring(64);
        let _ = counts_for(k, &rec, PerfCounts::default);
        let _ = counts_for(k, &rec, PerfCounts::default);
        let _ = counts_for(k, &rec, PerfCounts::default);
        assert_eq!(buf.count_kind("cache_miss"), 1);
        assert_eq!(buf.count_kind("cache_hit"), 2);
        let events = buf.snapshot();
        assert_eq!(events[0].kind, "cache_miss");
        assert_eq!(
            events[0].field("entry").and_then(Value::as_str),
            Some(BenchmarkId::Sort.name())
        );
        assert_eq!(events[0].field("corun").and_then(Value::as_u64), Some(1));
    }
}
