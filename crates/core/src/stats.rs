//! dc-stats: std-only statistics for workload subsetting (Exhibit SS).
//!
//! The source paper's follow-ups ("Characterizing and Subsetting Big
//! Data Workloads", IISWC 2014) normalize the per-workload counter
//! matrix, run PCA, and hierarchically cluster the principal-component
//! scores to pick a representative subset. This module is that
//! pipeline, self-contained and dependency-free:
//!
//! ```text
//! metric matrix → z-score → covariance → Jacobi PCA → PC scores
//!              → Euclidean distances → agglomerative clustering
//!              → medoid per cluster at K = chosen subset
//! ```
//!
//! # Float determinism
//!
//! Every consumer (the `subsetting` example, the golden tests, the
//! `subset` server verb) must render byte-identical output across
//! processes and `DCBENCH_JOBS` settings, so the whole pipeline is
//! deterministic by construction:
//!
//! * the metric matrix has a **fixed column order**
//!   ([`metric_columns`]) and rows arrive in registry order;
//! * the Jacobi eigensolver sweeps rotations in a **fixed (p, q)
//!   order** and uses only IEEE-exact primitives (`+ - * /`, `sqrt`) —
//!   no `atan2`, whose libm rounding varies across platforms;
//! * eigenpairs are sorted by descending eigenvalue (ties by original
//!   index) and **sign-canonicalized** (the component of largest
//!   magnitude is made non-negative), removing the eigenvector sign
//!   ambiguity;
//! * clustering scans candidate pairs in ascending node-id order and
//!   breaks distance ties toward the first pair scanned; medoid ties
//!   break toward the smallest row index;
//! * rendered floats go through Rust's shortest-round-trip `Display`
//!   (JSON) or fixed-precision formatting (text), both deterministic.

use dc_perfmon::Metrics;
use std::fmt::Write as _;

/// Cumulative-variance retention target for the PCA: keep the leading
/// components until they explain at least this fraction of the total
/// variance (the follow-up papers' 85% rule).
pub const VARIANCE_TARGET: f64 = 0.85;

/// One named column of the metric matrix: a label plus the projection
/// that reads it out of a characterized [`Metrics`] row.
pub type MetricColumn = (&'static str, fn(&Metrics) -> f64);

/// The metric-matrix columns, in fixed order: one derived metric per
/// figure of the paper (stall behavior folded into the out-of-order
/// share so the breakdown's six simplex-constrained columns do not
/// dominate the variance).
pub fn metric_columns() -> [MetricColumn; 10] {
    [
        ("ipc", |m| m.ipc),
        ("kernel", |m| m.kernel_fraction),
        ("ooo_stall", |m| m.ooo_stall_share()),
        ("l1i_mpki", |m| m.l1i_mpki),
        ("itlb_pki", |m| m.itlb_walk_pki),
        ("l2_mpki", |m| m.l2_mpki),
        ("l3_mpki", |m| m.l3_mpki),
        ("l3_hit", |m| m.l3_hit_ratio),
        ("dtlb_pki", |m| m.dtlb_walk_pki),
        ("br_misp", |m| m.branch_misprediction),
    ]
}

/// The workloads × metrics matrix in [`metric_columns`] order.
pub fn metric_matrix(rows: &[Metrics]) -> Vec<Vec<f64>> {
    rows.iter()
        .map(|m| metric_columns().iter().map(|(_, f)| f(m)).collect())
        .collect()
}

/// Z-score each column: subtract the column mean, divide by the sample
/// standard deviation (n−1). A constant column (zero variance) maps to
/// zeros rather than NaN, so degenerate metrics drop out of the
/// distance geometry instead of poisoning it.
pub fn zscore(matrix: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = matrix.len();
    if n < 2 {
        return matrix.iter().map(|r| vec![0.0; r.len()]).collect();
    }
    let cols = matrix[0].len();
    let mut out = vec![vec![0.0; cols]; n];
    for j in 0..cols {
        let mean = matrix.iter().map(|r| r[j]).sum::<f64>() / n as f64;
        let var = matrix
            .iter()
            .map(|r| (r[j] - mean) * (r[j] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        if var > 0.0 {
            let std = var.sqrt();
            for (i, row) in matrix.iter().enumerate() {
                out[i][j] = (row[j] - mean) / std;
            }
        }
    }
    out
}

/// Sample covariance (n−1 denominator) of an already-centered matrix.
/// For a z-scored input this is the correlation matrix.
pub fn covariance(z: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = z.len();
    assert!(n >= 2, "covariance needs at least two rows");
    let cols = z[0].len();
    let mut cov = vec![vec![0.0; cols]; cols];
    for j in 0..cols {
        for k in j..cols {
            let s = z.iter().map(|r| r[j] * r[k]).sum::<f64>() / (n - 1) as f64;
            cov[j][k] = s;
            cov[k][j] = s;
        }
    }
    cov
}

/// An eigendecomposition of a symmetric matrix: `values[i]` belongs to
/// the unit eigenvector `vectors[i]`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted descending (ties keep original order).
    pub values: Vec<f64>,
    /// Unit eigenvectors, row per eigenvalue, sign-canonicalized so the
    /// component of largest magnitude is non-negative.
    pub vectors: Vec<Vec<f64>>,
}

/// Flip `v` so its largest-magnitude component (first on ties) is
/// non-negative — the sign canonicalization that makes eigenvectors,
/// and everything rendered from them, byte-stable.
fn canonicalize_sign(v: &mut [f64]) {
    let mut best = 0usize;
    for (i, x) in v.iter().enumerate() {
        if x.abs() > v[best].abs() {
            best = i;
        }
    }
    if v[best] < 0.0 {
        for x in v.iter_mut() {
            *x = -*x;
        }
    }
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi
/// method: sweep every (p, q) pair in fixed ascending order, rotating
/// the off-diagonal element to zero, until the off-diagonal norm is
/// negligible. Only `+ - * /` and `sqrt` are used (all IEEE
/// correctly-rounded), so results are bit-identical across platforms.
pub fn jacobi_eigen(matrix: &[Vec<f64>]) -> Eigen {
    let n = matrix.len();
    assert!(n > 0, "eigendecomposition of an empty matrix");
    for (i, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), n, "matrix must be square");
        for (j, x) in row.iter().enumerate() {
            let diff = (x - matrix[j][i]).abs();
            assert!(
                diff <= 1e-9 * (1.0 + x.abs()),
                "matrix must be symmetric (a[{i}][{j}] != a[{j}][{i}])"
            );
        }
    }
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let scale = a
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |acc, x| acc.max(x.abs()))
        .max(1e-300);
    for _sweep in 0..64 {
        let off: f64 = (0..n)
            .flat_map(|p| ((p + 1)..n).map(move |q| (p, q)))
            .map(|(p, q)| a[p][q] * a[p][q])
            .sum();
        if off.sqrt() <= 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p][q];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                // tan of the annihilating rotation, via the stable
                // closed form (no trig calls).
                let theta = (a[q][q] - a[p][p]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    1.0 / (theta - (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for row in a.iter_mut() {
                    let (rp, rq) = (row[p], row[q]);
                    row[p] = c * rp - s * rq;
                    row[q] = s * rp + c * rq;
                }
                // Rows p and q update in lockstep; indexing keeps the
                // paired reads symmetrical with the column loop above.
                #[allow(clippy::needless_range_loop)]
                for k in 0..n {
                    let (pk, qk) = (a[p][k], a[q][k]);
                    a[p][k] = c * pk - s * qk;
                    a[q][k] = s * pk + c * qk;
                }
                for row in v.iter_mut() {
                    let (rp, rq) = (row[p], row[q]);
                    row[p] = c * rp - s * rq;
                    row[q] = s * rp + c * rq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    // Descending eigenvalue; ties keep ascending index (stable sort).
    order.sort_by(|&i, &j| a[j][j].partial_cmp(&a[i][i]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&i| {
            let mut col: Vec<f64> = v.iter().map(|row| row[i]).collect();
            canonicalize_sign(&mut col);
            col
        })
        .collect();
    Eigen { values, vectors }
}

/// A fitted PCA of a metric matrix: the z-scored data, the
/// eigenstructure of its correlation matrix, and the PC scores of the
/// components retained to reach [`VARIANCE_TARGET`].
#[derive(Debug, Clone)]
pub struct Pca {
    /// Eigenvalues of the correlation matrix, descending, clamped at 0
    /// (Jacobi rounding can leave −1e−17-scale values on rank-deficient
    /// input).
    pub eigenvalues: Vec<f64>,
    /// Principal axes: `components[c][j]` is the loading of metric
    /// column `j` on component `c`.
    pub components: Vec<Vec<f64>>,
    /// Per-component share of the total variance, descending, summing
    /// to 1 (all zeros if the matrix is constant).
    pub variance_fraction: Vec<f64>,
    /// Components kept: the smallest prefix whose cumulative variance
    /// share reaches the target (0 only for a constant matrix).
    pub retained: usize,
    /// PC scores of each input row over the retained components.
    pub scores: Vec<Vec<f64>>,
}

impl Pca {
    /// Fit a PCA to `matrix` (rows = workloads, columns = metrics):
    /// z-score, eigendecompose the correlation matrix, and retain the
    /// leading components reaching `target` cumulative variance.
    pub fn fit(matrix: &[Vec<f64>], target: f64) -> Pca {
        assert!(matrix.len() >= 2, "PCA needs at least two rows");
        assert!(!matrix[0].is_empty(), "PCA needs at least one column");
        let z = zscore(matrix);
        let eigen = jacobi_eigen(&covariance(&z));
        let eigenvalues: Vec<f64> = eigen.values.iter().map(|&v| v.max(0.0)).collect();
        let total: f64 = eigenvalues.iter().sum();
        let variance_fraction: Vec<f64> = if total > 0.0 {
            eigenvalues.iter().map(|&v| v / total).collect()
        } else {
            vec![0.0; eigenvalues.len()]
        };
        let mut retained = 0usize;
        if total > 0.0 {
            let mut cum = 0.0;
            for &f in &variance_fraction {
                retained += 1;
                cum += f;
                if cum >= target {
                    break;
                }
            }
        }
        let scores = z
            .iter()
            .map(|row| {
                eigen.vectors[..retained]
                    .iter()
                    .map(|axis| row.iter().zip(axis).map(|(x, w)| x * w).sum())
                    .collect()
            })
            .collect();
        Pca {
            eigenvalues,
            components: eigen.vectors,
            variance_fraction,
            retained,
            scores,
        }
    }

    /// Cumulative variance share of the first `k` components.
    pub fn cumulative(&self, k: usize) -> f64 {
        self.variance_fraction[..k].iter().sum()
    }
}

/// Pairwise Euclidean distances between score rows (columns summed in
/// fixed order; `d[i][j] == d[j][i]`, zero diagonal).
pub fn score_distances(scores: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = scores.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s: f64 = scores[i]
                .iter()
                .zip(&scores[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let dist = s.sqrt();
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

/// How the distance between two merged clusters is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Nearest members (chaining-prone, fine-grained).
    Single,
    /// Farthest members (compact clusters).
    Complete,
    /// Unweighted average over member pairs (UPGMA).
    Average,
}

impl Linkage {
    /// All linkages, in wire-name order.
    pub const ALL: [Linkage; 3] = [Linkage::Single, Linkage::Complete, Linkage::Average];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
        }
    }

    /// Inverse of [`Linkage::as_str`].
    pub fn from_name(name: &str) -> Option<Linkage> {
        Linkage::ALL.into_iter().find(|l| l.as_str() == name)
    }

    /// Lance–Williams update: distance from the merge of clusters with
    /// `size_a`/`size_b` members (at distances `da`/`db` from some
    /// other cluster) to that other cluster.
    fn merge_distance(self, da: f64, db: f64, size_a: usize, size_b: usize) -> f64 {
        match self {
            Linkage::Single => da.min(db),
            Linkage::Complete => da.max(db),
            Linkage::Average => {
                (size_a as f64 * da + size_b as f64 * db) / (size_a + size_b) as f64
            }
        }
    }
}

/// One agglomeration step: nodes `left` and `right` merge at `height`
/// into a cluster of `size` leaves. Leaves are nodes `0..n`; merge `m`
/// creates node `n + m`.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// Smaller-id merged node.
    pub left: usize,
    /// Larger-id merged node.
    pub right: usize,
    /// Linkage distance at which the merge happened. Monotone
    /// non-decreasing over the merge sequence for all three linkages.
    pub height: f64,
    /// Leaves under the new node.
    pub size: usize,
}

/// The full merge tree of an agglomerative clustering run.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n: usize,
    /// The `n − 1` merges, in agglomeration order.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cut the tree into `k` clusters: apply the first `n − k` merges.
    /// Each cluster is its sorted leaf indices; clusters are ordered by
    /// their smallest member.
    pub fn cut(&self, k: usize) -> Vec<Vec<usize>> {
        assert!(k >= 1 && k <= self.n, "k must be in [1, {}]", self.n);
        let mut groups: Vec<(usize, Vec<usize>)> = (0..self.n).map(|i| (i, vec![i])).collect();
        for (m, merge) in self.merges.iter().take(self.n - k).enumerate() {
            let right_at = groups.iter().position(|(id, _)| *id == merge.right);
            let (_, right) = groups.remove(right_at.expect("right node is live"));
            let left_at = groups.iter().position(|(id, _)| *id == merge.left);
            let entry = &mut groups[left_at.expect("left node is live")];
            entry.0 = self.n + m;
            entry.1.extend(right);
            entry.1.sort_unstable();
        }
        let mut out: Vec<Vec<usize>> = groups.into_iter().map(|(_, g)| g).collect();
        out.sort_by_key(|g| g[0]);
        out
    }
}

/// Agglomerative hierarchical clustering over a symmetric distance
/// matrix. At every step the globally closest active pair merges;
/// candidate pairs are scanned in ascending node-id order and ties
/// break toward the first pair scanned, so the merge sequence is a
/// deterministic function of the distances.
pub fn cluster(dist: &[Vec<f64>], linkage: Linkage) -> Dendrogram {
    let n = dist.len();
    assert!(n >= 1, "clustering needs at least one row");
    // Active clusters in ascending node-id order: (node id, leaf count,
    // distances to every *other* active cluster by its position).
    struct Active {
        id: usize,
        size: usize,
        d: Vec<f64>,
    }
    let mut active: Vec<Active> = (0..n)
        .map(|i| Active {
            id: i,
            size: 1,
            d: dist[i].clone(),
        })
        .collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    for m in 0..n.saturating_sub(1) {
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                if active[i].d[j] < best {
                    (bi, bj, best) = (i, j, active[i].d[j]);
                }
            }
        }
        let new_id = n + m;
        let (size_a, size_b) = (active[bi].size, active[bj].size);
        let merged_d: Vec<f64> = (0..active.len())
            .map(|k| linkage.merge_distance(active[k].d[bi], active[k].d[bj], size_a, size_b))
            .collect();
        merges.push(Merge {
            left: active[bi].id,
            right: active[bj].id,
            height: best,
            size: size_a + size_b,
        });
        // Drop the larger position first so the smaller stays valid,
        // then append the merged cluster (ids only ever grow, keeping
        // the ascending scan order).
        let mut d = merged_d;
        d.remove(bj);
        d.remove(bi);
        d.push(0.0);
        active.remove(bj);
        active.remove(bi);
        for (k, row) in active.iter_mut().enumerate() {
            row.d.remove(bj);
            row.d.remove(bi);
            row.d.push(d[k]);
        }
        active.push(Active {
            id: new_id,
            size: size_a + size_b,
            d,
        });
    }
    Dendrogram { n, merges }
}

/// The medoid of `members`: the member minimizing its summed distance
/// to the others (ties toward the smallest index; `members` is sorted).
pub fn medoid(members: &[usize], dist: &[Vec<f64>]) -> usize {
    assert!(!members.is_empty(), "medoid of an empty cluster");
    let (mut best, mut best_sum) = (members[0], f64::INFINITY);
    for &i in members {
        let sum: f64 = members.iter().map(|&j| dist[i][j]).sum();
        if sum < best_sum {
            (best, best_sum) = (i, sum);
        }
    }
    best
}

/// One cluster of the chosen cut: its sorted member rows and the
/// representative medoid.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCluster {
    /// Sorted leaf indices into the label/matrix rows.
    pub members: Vec<usize>,
    /// The representative member (index into the same rows).
    pub medoid: usize,
}

/// The full Exhibit SS result: PCA, merge tree, and the K-cluster cut
/// with one representative workload per cluster.
#[derive(Debug, Clone)]
pub struct Subset {
    /// Row labels (workload names, registry order).
    pub labels: Vec<String>,
    /// Chosen cluster count.
    pub k: usize,
    /// Linkage the tree was built with.
    pub linkage: Linkage,
    /// The fitted PCA.
    pub pca: Pca,
    /// Pairwise PC-score distances (what the tree and medoids use).
    pub distances: Vec<Vec<f64>>,
    /// The full merge tree.
    pub dendrogram: Dendrogram,
    /// The K clusters, ordered by smallest member.
    pub clusters: Vec<WorkloadCluster>,
}

/// Run the whole pipeline: z-score `matrix`, PCA to
/// [`VARIANCE_TARGET`], cluster the PC scores under `linkage`, cut at
/// `k`, and pick each cluster's medoid.
pub fn subset(labels: Vec<String>, matrix: &[Vec<f64>], k: usize, linkage: Linkage) -> Subset {
    let n = labels.len();
    assert_eq!(n, matrix.len(), "one label per matrix row");
    assert!(n >= 2, "subsetting needs at least two workloads");
    assert!(k >= 1 && k <= n, "k must be in [1, {n}]");
    let pca = Pca::fit(matrix, VARIANCE_TARGET);
    let distances = score_distances(&pca.scores);
    let dendrogram = cluster(&distances, linkage);
    let clusters = dendrogram
        .cut(k)
        .into_iter()
        .map(|members| {
            let medoid = medoid(&members, &distances);
            WorkloadCluster { members, medoid }
        })
        .collect();
    Subset {
        labels,
        k,
        linkage,
        pca,
        distances,
        dendrogram,
        clusters,
    }
}

/// Append a JSON number: Rust's shortest-round-trip `Display` for
/// finite values, `null` otherwise — the same rule as `dc-obs` and the
/// server protocol, so every float this crate emits renders one way.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl Subset {
    /// The chosen representative workloads (medoid labels, cluster
    /// order).
    pub fn chosen(&self) -> Vec<&str> {
        self.clusters
            .iter()
            .map(|c| self.labels[c.medoid].as_str())
            .collect()
    }

    /// Render Exhibit SS as text: the PC variance table (with a
    /// sparkline over the variance shares), the ASCII distance
    /// dendrogram, and the chosen subset with per-cluster membership.
    /// Fixed-precision formatting on deterministic values — the bytes
    /// are identical across processes and worker counts.
    pub fn render_text(&self, window: &str, seed: u64) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "Exhibit SS — PCA + hierarchical subsetting of the data-analysis workloads"
        );
        let _ = writeln!(
            out,
            "window {window}, seed {seed}, linkage {}, K = {}",
            self.linkage.as_str(),
            self.k
        );
        let cols = metric_columns().len();
        let _ = writeln!(
            out,
            "\nPrincipal components of the z-scored {}x{cols} metric matrix",
            self.labels.len()
        );
        let _ = writeln!(
            out,
            "  {:>4} {:>12} {:>11} {:>11}",
            "PC", "eigenvalue", "var share", "cumulative"
        );
        let mut cum = 0.0;
        for (i, (&val, &frac)) in self
            .pca
            .eigenvalues
            .iter()
            .zip(&self.pca.variance_fraction)
            .enumerate()
        {
            cum += frac;
            let _ = writeln!(out, "  {:>4} {val:>12.4} {frac:>11.4} {cum:>11.4}", i + 1);
        }
        let per_mille: Vec<u64> = self
            .pca
            .variance_fraction
            .iter()
            .map(|f| (f * 1000.0).round() as u64)
            .collect();
        let _ = writeln!(
            out,
            "  var share  |{}|",
            dc_obs::metrics::sparkline(&per_mille, per_mille.len())
        );
        let _ = writeln!(
            out,
            "  retained {} of {} components (cumulative variance {:.4} >= {VARIANCE_TARGET})",
            self.pca.retained,
            self.pca.eigenvalues.len(),
            self.pca.cumulative(self.pca.retained),
        );
        let _ = writeln!(
            out,
            "\nDistance dendrogram ({} linkage over {}-dim PC scores)",
            self.linkage.as_str(),
            self.pca.retained
        );
        self.render_tree(&mut out);
        let _ = writeln!(
            out,
            "\nChosen subset (medoid of each of the {} clusters)",
            self.k
        );
        for (c, cl) in self.clusters.iter().enumerate() {
            let members: Vec<&str> = cl
                .members
                .iter()
                .map(|&i| self.labels[i].as_str())
                .collect();
            let _ = writeln!(
                out,
                "  cluster {}: medoid {} — members {}",
                c + 1,
                self.labels[cl.medoid],
                members.join(", ")
            );
        }
        let _ = writeln!(out, "  subset: {}", self.chosen().join(", "));
        out
    }

    /// Render the merge tree as an ASCII dendrogram (internal nodes
    /// labelled with their merge height, leaves with their workload).
    fn render_tree(&self, out: &mut String) {
        let root = self.dendrogram.n + self.dendrogram.merges.len() - 1;
        self.render_node(out, root, "", "└─ ", "   ");
    }

    fn render_node(&self, out: &mut String, node: usize, pad: &str, tee: &str, cont: &str) {
        let n = self.dendrogram.n;
        if node < n {
            let _ = writeln!(out, "{pad}{tee}{}", self.labels[node]);
            return;
        }
        let merge = &self.dendrogram.merges[node - n];
        let _ = writeln!(out, "{pad}{tee}{:.4}", merge.height);
        let child_pad = format!("{pad}{cont}");
        self.render_node(out, merge.left, &child_pad, "├─ ", "│  ");
        self.render_node(out, merge.right, &child_pad, "└─ ", "   ");
    }

    /// Render the canonical JSON result object — the byte-deterministic
    /// payload the `subsetting --jsonl` artifact stores and the
    /// `subset` server verb returns as `result.output`. Floats use
    /// shortest-round-trip rendering ([`push_f64`]).
    pub fn to_json(&self, window: &str, seed: u64) -> String {
        let mut out = String::with_capacity(2048);
        let _ = write!(
            out,
            "{{\"kind\":\"subset\",\"window\":\"{window}\",\"seed\":{seed},\"k\":{},\"linkage\":\"{}\"",
            self.k,
            self.linkage.as_str()
        );
        out.push_str(",\"entries\":[");
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            dc_store::json::write_json_string(&mut out, label);
        }
        out.push_str("],\"metrics\":[");
        for (i, (name, _)) in metric_columns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\"");
        }
        out.push_str("],\"eigenvalues\":[");
        for (i, v) in self.pca.eigenvalues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64(&mut out, *v);
        }
        out.push_str("],\"variance_fraction\":[");
        for (i, v) in self.pca.variance_fraction.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64(&mut out, *v);
        }
        let _ = write!(out, "],\"retained\":{},\"merges\":[", self.pca.retained);
        for (i, m) in self.dendrogram.merges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"left\":{},\"right\":{},\"height\":",
                m.left, m.right
            );
            push_f64(&mut out, m.height);
            let _ = write!(out, ",\"size\":{}}}", m.size);
        }
        out.push_str("],\"clusters\":[");
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"medoid\":");
            dc_store::json::write_json_string(&mut out, &self.labels[c.medoid]);
            out.push_str(",\"members\":[");
            for (j, &m) in c.members.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                dc_store::json::write_json_string(&mut out, &self.labels[m]);
            }
            out.push_str("]}");
        }
        out.push_str("],\"subset\":[");
        for (i, name) in self.chosen().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            dc_store::json::write_json_string(&mut out, name);
        }
        out.push_str("]}");
        out
    }
}

/// [`subset`] over characterized metric rows: labels from the row
/// names, matrix from [`metric_matrix`]. The shared entry point of
/// `report::subset_exhibit` and the server's `subset` verb, so both
/// render byte-identical exhibits from the same cached rows.
pub fn subset_of_metrics(rows: &[Metrics], k: usize, linkage: Linkage) -> Subset {
    let labels = rows.iter().map(|m| m.name.clone()).collect();
    subset(labels, &metric_matrix(rows), k, linkage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zscore_centers_and_scales() {
        let m = vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]];
        let z = zscore(&m);
        // Column 0: mean 3, sample std 2.
        assert!(approx(z[0][0], -1.0, 1e-12));
        assert!(approx(z[1][0], 0.0, 1e-12));
        assert!(approx(z[2][0], 1.0, 1e-12));
        // Constant column maps to zeros, not NaN.
        assert!(z.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn jacobi_solves_a_known_3x3() {
        // Block diagonal: [[2,1],[1,2]] (eigenvalues 3, 1 with vectors
        // [1,1]/√2 and [1,−1]/√2) plus a lone 5.
        let a = vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 0.0, 5.0],
        ];
        let eig = jacobi_eigen(&a);
        assert!(approx(eig.values[0], 5.0, 1e-10));
        assert!(approx(eig.values[1], 3.0, 1e-10));
        assert!(approx(eig.values[2], 1.0, 1e-10));
        let r = 1.0 / 2.0f64.sqrt();
        for (got, want) in [
            (&eig.vectors[0], [0.0, 0.0, 1.0]),
            (&eig.vectors[1], [r, r, 0.0]),
            (&eig.vectors[2], [r, -r, 0.0]),
        ] {
            for (g, w) in got.iter().zip(want) {
                assert!(approx(*g, w, 1e-10), "vector {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn sign_canonicalization_prefers_first_on_ties() {
        let mut v = [-0.5, 0.5];
        canonicalize_sign(&mut v);
        // Largest magnitude is a tie; the first (negative) wins and the
        // vector flips.
        assert_eq!(v, [0.5, -0.5]);
    }

    #[test]
    fn pca_of_a_rank_one_matrix() {
        // Second column is constant: all variance lives on one axis.
        let m = vec![
            vec![1.0, 7.0],
            vec![-1.0, 7.0],
            vec![2.0, 7.0],
            vec![-2.0, 7.0],
        ];
        let pca = Pca::fit(&m, VARIANCE_TARGET);
        assert!(approx(pca.eigenvalues[0], 1.0, 1e-12));
        assert!(approx(pca.eigenvalues[1], 0.0, 1e-12));
        assert_eq!(pca.retained, 1);
        assert!(approx(pca.variance_fraction[0], 1.0, 1e-12));
        // Scores are the z-scored first column (axis [1, 0]).
        let z = zscore(&m);
        for (s, zr) in pca.scores.iter().zip(&z) {
            assert_eq!(s.len(), 1);
            assert!(approx(s[0], zr[0], 1e-12));
        }
    }

    #[test]
    fn clustering_merges_closest_first_and_cuts() {
        // Three points on a line: 0 and 1 are closest, 2 is far.
        let d = score_distances(&[vec![0.0], vec![1.0], vec![10.0]]);
        for linkage in Linkage::ALL {
            let tree = cluster(&d, linkage);
            assert_eq!(tree.merges.len(), 2);
            assert_eq!((tree.merges[0].left, tree.merges[0].right), (0, 1));
            assert!(approx(tree.merges[0].height, 1.0, 1e-12));
            assert_eq!(tree.cut(2), vec![vec![0, 1], vec![2]]);
            assert_eq!(tree.cut(1), vec![vec![0, 1, 2]]);
            assert_eq!(tree.cut(3), vec![vec![0], vec![1], vec![2]]);
        }
    }

    #[test]
    fn linkages_differ_on_elongated_clusters() {
        // Chain 0—1—2 with a point 3 far away: single linkage sees the
        // chain as one tight cluster, complete penalizes its span.
        let d = score_distances(&[vec![0.0], vec![1.0], vec![2.0], vec![10.0]]);
        let single = cluster(&d, Linkage::Single);
        let complete = cluster(&d, Linkage::Complete);
        // Heights after merging {0,1} with {2}: single 1, complete 2.
        assert!(approx(single.merges[1].height, 1.0, 1e-12));
        assert!(approx(complete.merges[1].height, 2.0, 1e-12));
    }

    #[test]
    fn medoid_minimizes_total_distance() {
        let d = score_distances(&[vec![0.0], vec![1.0], vec![1.5]]);
        assert_eq!(medoid(&[0, 1, 2], &d), 1);
        assert_eq!(medoid(&[2], &d), 2);
    }

    #[test]
    fn subset_pipeline_shapes_and_chosen_members() {
        let labels: Vec<String> = (0..5).map(|i| format!("w{i}")).collect();
        // Two tight groups and a loner.
        let m = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![-9.0, 9.0],
        ];
        let sub = subset(labels, &m, 3, Linkage::Average);
        assert_eq!(sub.clusters.len(), 3);
        let all: Vec<usize> = sub
            .clusters
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "clusters partition the rows");
        for c in &sub.clusters {
            assert!(c.members.contains(&c.medoid), "medoid is a member");
        }
        let text = sub.render_text("quick", 2013);
        assert!(text.contains("Exhibit SS"));
        assert!(text.contains("subset:"));
        let json = sub.to_json("quick", 2013);
        assert!(json.starts_with("{\"kind\":\"subset\",\"window\":\"quick\""));
        assert!(json.contains("\"clusters\":["));
    }
}
