//! The benchmark registry: every entry on the paper's figure x-axes.

use dc_analytics::Workload;
use std::fmt;

/// Suite taxonomy used throughout the paper's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The paper's eleven data-analysis workloads (DCBench analysis side).
    DataAnalysis,
    /// CloudSuite scale-out benchmarks.
    CloudSuite,
    /// SPEC CPU2006 aggregates.
    SpecCpu,
    /// SPECweb2005.
    SpecWeb,
    /// HPCC 1.4 kernels.
    Hpcc,
}

/// One bar on the figures' x-axes, in the paper's left-to-right order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the figure labels 1:1
pub enum BenchmarkId {
    NaiveBayes,
    Svm,
    Grep,
    WordCount,
    KMeans,
    FuzzyKMeans,
    PageRank,
    Sort,
    HiveBench,
    Ibcf,
    Hmm,
    SoftwareTesting,
    MediaStreaming,
    DataServing,
    WebSearch,
    WebServing,
    SpecFp,
    SpecInt,
    SpecWeb,
    HpccComm,
    HpccDgemm,
    HpccFft,
    HpccHpl,
    HpccPtrans,
    HpccRandomAccess,
    HpccStream,
}

impl BenchmarkId {
    /// All 26 named entries in figure order (Naive Bayes … HPCC-STREAM);
    /// the figures additionally show a computed data-analysis `avg` bar.
    pub fn all() -> &'static [BenchmarkId] {
        use BenchmarkId::*;
        &[
            NaiveBayes,
            Svm,
            Grep,
            WordCount,
            KMeans,
            FuzzyKMeans,
            PageRank,
            Sort,
            HiveBench,
            Ibcf,
            Hmm,
            SoftwareTesting,
            MediaStreaming,
            DataServing,
            WebSearch,
            WebServing,
            SpecFp,
            SpecInt,
            SpecWeb,
            HpccComm,
            HpccDgemm,
            HpccFft,
            HpccHpl,
            HpccPtrans,
            HpccRandomAccess,
            HpccStream,
        ]
    }

    /// The eleven data-analysis entries, in figure order.
    pub fn data_analysis() -> &'static [BenchmarkId] {
        use BenchmarkId::*;
        &[
            NaiveBayes,
            Svm,
            Grep,
            WordCount,
            KMeans,
            FuzzyKMeans,
            PageRank,
            Sort,
            HiveBench,
            Ibcf,
            Hmm,
        ]
    }

    /// The service workloads: four CloudSuite services + SPECweb (the
    /// grouping the paper reasons about).
    pub fn services() -> &'static [BenchmarkId] {
        use BenchmarkId::*;
        &[MediaStreaming, DataServing, WebSearch, WebServing, SpecWeb]
    }

    /// The seven HPCC kernels.
    pub fn hpcc() -> &'static [BenchmarkId] {
        use BenchmarkId::*;
        &[
            HpccComm,
            HpccDgemm,
            HpccFft,
            HpccHpl,
            HpccPtrans,
            HpccRandomAccess,
            HpccStream,
        ]
    }

    /// Figure label.
    pub fn name(&self) -> &'static str {
        use BenchmarkId::*;
        match self {
            NaiveBayes => "Naive Bayes",
            Svm => "SVM",
            Grep => "Grep",
            WordCount => "WordCount",
            KMeans => "K-means",
            FuzzyKMeans => "Fuzzy K-means",
            PageRank => "PageRank",
            Sort => "Sort",
            HiveBench => "Hive-bench",
            Ibcf => "IBCF",
            Hmm => "HMM",
            SoftwareTesting => "Software Testing",
            MediaStreaming => "Media Streaming",
            DataServing => "Data Serving",
            WebSearch => "Web Search",
            WebServing => "Web Serving",
            SpecFp => "SPECFP",
            SpecInt => "SPECINT",
            SpecWeb => "SPECWeb",
            HpccComm => "HPCC-COMM",
            HpccDgemm => "HPCC-DGEMM",
            HpccFft => "HPCC-FFT",
            HpccHpl => "HPCC-HPL",
            HpccPtrans => "HPCC-PTRANS",
            HpccRandomAccess => "HPCC-RandomAccess",
            HpccStream => "HPCC-STREAM",
        }
    }

    /// Inverse of [`BenchmarkId::name`]: resolve a figure label back to
    /// its entry. The persistent store keys records by this stable name
    /// (it cannot depend on the enum), so loading a store record means
    /// mapping the name back; unknown names (e.g. from a foreign or
    /// future store file) are `None`, not a panic.
    pub fn from_name(name: &str) -> Option<BenchmarkId> {
        BenchmarkId::all()
            .iter()
            .copied()
            .find(|id| id.name() == name)
    }

    /// The suite this entry belongs to.
    pub fn suite(&self) -> Suite {
        use BenchmarkId::*;
        match self {
            NaiveBayes | Svm | Grep | WordCount | KMeans | FuzzyKMeans | PageRank | Sort
            | HiveBench | Ibcf | Hmm => Suite::DataAnalysis,
            SoftwareTesting | MediaStreaming | DataServing | WebSearch | WebServing => {
                Suite::CloudSuite
            }
            SpecFp | SpecInt => Suite::SpecCpu,
            SpecWeb => Suite::SpecWeb,
            HpccComm | HpccDgemm | HpccFft | HpccHpl | HpccPtrans | HpccRandomAccess
            | HpccStream => Suite::Hpcc,
        }
    }

    /// Whether the paper classifies this entry as a *service* workload
    /// (the four CloudSuite services plus SPECweb).
    pub fn is_service(&self) -> bool {
        BenchmarkId::services().contains(self)
    }

    /// The corresponding real analytics workload, for data-analysis
    /// entries.
    pub fn analytics_workload(&self) -> Option<Workload> {
        use BenchmarkId::*;
        Some(match self {
            NaiveBayes => Workload::NaiveBayes,
            Svm => Workload::Svm,
            Grep => Workload::Grep,
            WordCount => Workload::WordCount,
            KMeans => Workload::KMeans,
            FuzzyKMeans => Workload::FuzzyKMeans,
            PageRank => Workload::PageRank,
            Sort => Workload::Sort,
            HiveBench => Workload::HiveBench,
            Ibcf => Workload::Ibcf,
            Hmm => Workload::Hmm,
            _ => return None,
        })
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_named_entries_in_figure_order() {
        // 26 named bars; the figures' 27th bar is the computed DA `avg`.
        assert_eq!(BenchmarkId::all().len(), 26);
        assert_eq!(BenchmarkId::all()[0], BenchmarkId::NaiveBayes);
        assert_eq!(
            *BenchmarkId::all().last().expect("nonempty"),
            BenchmarkId::HpccStream
        );
    }

    #[test]
    fn data_analysis_group_has_eleven() {
        assert_eq!(BenchmarkId::data_analysis().len(), 11);
        for id in BenchmarkId::data_analysis() {
            assert_eq!(id.suite(), Suite::DataAnalysis);
            assert!(id.analytics_workload().is_some());
        }
    }

    #[test]
    fn services_grouping_matches_paper() {
        let services = BenchmarkId::services();
        assert_eq!(services.len(), 5);
        assert!(services.contains(&BenchmarkId::SpecWeb));
        assert!(!services.contains(&BenchmarkId::SoftwareTesting));
        for s in services {
            assert!(s.is_service());
        }
        assert!(!BenchmarkId::Sort.is_service());
    }

    #[test]
    fn hpcc_has_seven_kernels() {
        assert_eq!(BenchmarkId::hpcc().len(), 7);
        for id in BenchmarkId::hpcc() {
            assert_eq!(id.suite(), Suite::Hpcc);
            assert!(id.analytics_workload().is_none());
        }
    }

    #[test]
    fn names_match_figure_labels() {
        assert_eq!(BenchmarkId::NaiveBayes.name(), "Naive Bayes");
        assert_eq!(BenchmarkId::HpccRandomAccess.name(), "HPCC-RandomAccess");
        assert_eq!(BenchmarkId::FuzzyKMeans.to_string(), "Fuzzy K-means");
    }
}
