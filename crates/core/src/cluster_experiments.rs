//! Figures 2 and 5: cluster-scale experiments.
//!
//! Methodology: each data-analysis workload is executed **for real** on
//! the local MapReduce engine at laptop scale, which yields measured
//! dataflow ratios (shuffle bytes / input byte, output ratio, map vs
//! reduce CPU split). CPU volume at paper scale comes from Table I's
//! retired-instruction counts (measured per workload by the authors)
//! divided over the cluster's cores. The discrete cluster model in
//! `dc-mapreduce::cluster` then produces the 1/4/8-slave makespans
//! behind Figure 2 and the per-node disk-write rates behind Figure 5.

use dc_analytics::Workload;
use dc_datagen::Scale;
use dc_mapreduce::cluster::{
    simulate, simulate_with_failures, ClusterConfig, FailureModel, JobModel,
};
use dc_mapreduce::engine::JobConfig;

/// Effective IPC used to convert Table I instruction counts into CPU
/// seconds at 2.4 GHz (the DA-average IPC the paper reports).
const ASSUMED_IPC: f64 = 0.78;
/// Node clock in Hz (Xeon E5645).
const CLOCK_HZ: f64 = 2.4e9;

/// One workload's scaled cluster job model, built from a real local run.
pub fn job_model(workload: Workload, scale: Scale) -> JobModel {
    let cfg = JobConfig::default();
    let run = workload
        .run(scale, &cfg)
        .expect("local measurement runs are fault-free");
    let stats = &run.stats;

    let input_gb = workload.paper_input_gb() as f64;
    // Total CPU seconds at paper scale from Table I's measured
    // instruction volume.
    let total_cpu_secs = workload.paper_giga_instructions() as f64 * 1e9 / (ASSUMED_IPC * CLOCK_HZ);
    // Split CPU between map and reduce phases as measured locally; the
    // +1 smoothing keeps sub-millisecond smoke runs well-defined.
    let map_share = (stats.map_ms + 1) as f64 / (stats.map_ms + stats.reduce_ms + 2) as f64;
    let iterations = workload.typical_iterations();

    let input_bytes = stats.map_input_bytes.max(1) as f64;
    JobModel {
        name: workload.name().to_string(),
        input_gb,
        map_cpu_secs_per_gb: total_cpu_secs * map_share / input_gb / f64::from(iterations),
        shuffle_ratio: stats.shuffle_bytes as f64 / input_bytes,
        reduce_cpu_secs_per_gb: {
            let shuffle_gb = input_gb * (stats.shuffle_bytes as f64 / input_bytes);
            total_cpu_secs * (1.0 - map_share) / shuffle_gb.max(1e-3) / f64::from(iterations)
        },
        output_ratio: stats.reduce_output_bytes as f64 / input_bytes,
        iterations,
    }
}

/// Figure 2: speed-up of each workload on 1, 4 and 8 slaves.
pub fn figure2_speedups(scale: Scale) -> Vec<(Workload, [f64; 3])> {
    Workload::all()
        .iter()
        .map(|&w| {
            let model = job_model(w, scale);
            let t1 = simulate(&ClusterConfig::paper(1), &model).makespan_secs;
            let t4 = simulate(&ClusterConfig::paper(4), &model).makespan_secs;
            let t8 = simulate(&ClusterConfig::paper(8), &model).makespan_secs;
            (w, [1.0, t1 / t4, t1 / t8])
        })
        .collect()
}

/// One row of the node-loss experiment: a workload's 8-slave speedup
/// healthy vs. with one slave lost mid-map.
#[derive(Debug, Clone)]
pub struct NodeLossRow {
    /// Which workload.
    pub workload: Workload,
    /// 8-slave speedup over 1 slave with all nodes healthy (Figure 2's
    /// right-most bar).
    pub healthy_speedup: f64,
    /// The same speedup when one slave dies halfway through the map
    /// phase and its map output must be re-executed and re-replicated.
    pub degraded_speedup: f64,
    /// Slave-seconds of map work re-executed after the loss.
    pub reexecuted_work_secs: f64,
    /// Megabytes of HDFS re-replication traffic triggered by the loss.
    pub rereplicated_mb: f64,
}

/// Fault-tolerance companion to Figure 2: every workload's 8-slave
/// speedup when one slave fails halfway through the map phase. Jobs
/// always complete — Hadoop re-runs the lost waves on the survivors —
/// but the speedup degrades by the re-executed work plus the HDFS
/// re-replication traffic.
pub fn speedups_under_node_loss(scale: Scale) -> Vec<NodeLossRow> {
    Workload::all()
        .iter()
        .map(|&w| {
            let model = job_model(w, scale);
            let t1 = simulate(&ClusterConfig::paper(1), &model).makespan_secs;
            let healthy = simulate(&ClusterConfig::paper(8), &model);
            // Kill one slave halfway through the healthy map phase.
            let failures = FailureModel::single_loss(healthy.map_secs / 2.0);
            let degraded = simulate_with_failures(&ClusterConfig::paper(8), &model, &failures);
            NodeLossRow {
                workload: w,
                healthy_speedup: t1 / healthy.makespan_secs,
                degraded_speedup: t1 / degraded.makespan_secs,
                reexecuted_work_secs: degraded.reexecuted_work_secs,
                rereplicated_mb: degraded.rereplicated_mb,
            }
        })
        .collect()
}

/// Figure 5: disk writes per second per node on the paper's 4-slave
/// cluster.
pub fn figure5_disk_writes(scale: Scale) -> Vec<(Workload, f64)> {
    let cluster = ClusterConfig::paper(4);
    Workload::all()
        .iter()
        .map(|&w| {
            let model = job_model(w, scale);
            let run = simulate(&cluster, &model);
            (w, run.disk_writes_per_sec_per_node)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale::bytes(48 << 10)
    }

    #[test]
    fn job_models_have_sane_ratios() {
        let sort = job_model(Workload::Sort, tiny());
        assert!(
            sort.shuffle_ratio > 0.9,
            "sort shuffles its whole input: {}",
            sort.shuffle_ratio
        );
        let grep = job_model(Workload::Grep, tiny());
        assert!(
            grep.shuffle_ratio < 0.3,
            "grep is selective: {}",
            grep.shuffle_ratio
        );
        assert!(grep.map_cpu_secs_per_gb > 0.0);
    }

    #[test]
    fn figure2_shape_matches_paper() {
        let rows = figure2_speedups(tiny());
        assert_eq!(rows.len(), 11);
        for (w, s) in &rows {
            assert_eq!(s[0], 1.0);
            assert!(s[1] > 1.2, "{w}: 4-slave speedup {}", s[1]);
            assert!(s[2] > s[1], "{w}: speedup grows with slaves");
            assert!(s[2] <= 8.6, "{w}: cannot superlinear: {}", s[2]);
        }
        // The paper's spread: 3.3x–8.2x at 8 slaves.
        let min8 = rows.iter().map(|(_, s)| s[2]).fold(f64::INFINITY, f64::min);
        let max8 = rows.iter().map(|(_, s)| s[2]).fold(0.0, f64::max);
        assert!(min8 < 5.5, "some workload scales poorly: min={min8}");
        assert!(max8 > 6.0, "some workload scales well: max={max8}");
    }

    #[test]
    fn node_loss_degrades_every_workload_but_completes() {
        for row in speedups_under_node_loss(tiny()) {
            let w = row.workload;
            assert!(
                row.degraded_speedup.is_finite() && row.degraded_speedup > 0.9,
                "{w}: degraded speedup {} must stay meaningful",
                row.degraded_speedup
            );
            assert!(
                row.degraded_speedup < row.healthy_speedup,
                "{w}: losing a slave must cost speedup ({} vs {})",
                row.degraded_speedup,
                row.healthy_speedup
            );
            assert!(row.reexecuted_work_secs > 0.0, "{w}: no rework recorded");
            assert!(row.rereplicated_mb > 0.0, "{w}: no re-replication recorded");
        }
    }

    #[test]
    fn figure5_sort_writes_most() {
        // Probed above the 48 KiB smoke scale: below ~96 KiB the text
        // workloads' vocabularies have not saturated, which inflates
        // their measured shuffle ratios enough to put Naive Bayes in a
        // dead heat with Sort (a tiny-scale artifact, not the paper's
        // ordering).
        let rows = figure5_disk_writes(Scale::bytes(128 << 10));
        let sort = rows
            .iter()
            .find(|(w, _)| *w == Workload::Sort)
            .expect("sort present")
            .1;
        for (w, rate) in &rows {
            if *w != Workload::Sort {
                assert!(
                    sort >= *rate,
                    "Sort must have the highest disk-write rate: {w}={rate} vs sort={sort}"
                );
            }
        }
    }
}
