//! The measurement pipeline (paper Section III-D).
//!
//! For each benchmark entry: build its calibrated profile, synthesize
//! the instruction stream, run it through the Westmere-like out-of-order
//! core after a warm-up ramp (the paper performs "a ramp-up period for
//! each application, and then start\[s\] collecting"), read the ~20 events
//! through the PMU layer, and derive the per-figure metrics.

use crate::profiles::profile;
use crate::registry::BenchmarkId;
use dc_cpu::{core::SimOptions, Core, CpuConfig};
use dc_perfmon::{msr, Metrics, PerfEvent};
use dc_trace::SyntheticTrace;

/// Characterization harness: machine config + measurement window.
#[derive(Debug, Clone)]
pub struct Characterizer {
    cfg: CpuConfig,
    opts: SimOptions,
    seed: u64,
}

impl Default for Characterizer {
    fn default() -> Self {
        Characterizer::new(CpuConfig::westmere_e5645(), SimOptions::default(), 2013)
    }
}

impl Characterizer {
    /// Build a harness with an explicit machine, window and seed.
    pub fn new(cfg: CpuConfig, opts: SimOptions, seed: u64) -> Self {
        Characterizer { cfg, opts, seed }
    }

    /// Short windows for tests and smoke runs.
    pub fn quick() -> Self {
        Characterizer::new(
            CpuConfig::westmere_e5645(),
            SimOptions { max_ops: 300_000, warmup_ops: 500_000 },
            2013,
        )
    }

    /// Full windows (used by the figures and benches).
    pub fn full() -> Self {
        Characterizer::new(
            CpuConfig::westmere_e5645(),
            SimOptions { max_ops: 1_200_000, warmup_ops: 2_000_000 },
            2013,
        )
    }

    /// The machine configuration being measured.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Characterize one benchmark entry.
    pub fn run(&self, id: BenchmarkId) -> Metrics {
        let prof = profile(id);
        let trace = SyntheticTrace::new(&prof, self.seed ^ (id as u64) << 3);
        let counts = Core::new(self.cfg.clone()).run(trace, &self.opts);
        Metrics::from_counts(id.name(), &counts)
    }

    /// Characterize one entry and also return the raw PMU event dump
    /// (the `perf stat`-shaped view).
    pub fn run_with_events(&self, id: BenchmarkId) -> (Metrics, Vec<(PerfEvent, u64)>) {
        let prof = profile(id);
        let trace = SyntheticTrace::new(&prof, self.seed ^ (id as u64) << 3);
        let counts = Core::new(self.cfg.clone()).run(trace, &self.opts);
        (Metrics::from_counts(id.name(), &counts), msr::collect_all(&counts))
    }

    /// Raw counter block for one entry (for debugging/calibration).
    pub fn raw_counts(&self, id: BenchmarkId) -> dc_cpu::PerfCounts {
        let prof = profile(id);
        let trace = SyntheticTrace::new(&prof, self.seed ^ (id as u64) << 3);
        Core::new(self.cfg.clone()).run(trace, &self.opts)
    }

    /// Characterize every entry in figure order.
    pub fn run_all(&self) -> Vec<Metrics> {
        BenchmarkId::all().iter().map(|&id| self.run(id)).collect()
    }

    /// Characterize the eleven data-analysis entries plus their `avg`
    /// bar (the paper inserts the average after HMM).
    pub fn run_data_analysis_with_avg(&self) -> Vec<Metrics> {
        let mut rows: Vec<Metrics> = BenchmarkId::data_analysis()
            .iter()
            .map(|&id| self.run(id))
            .collect();
        let avg = dc_perfmon::metrics::average("avg", &rows);
        rows.push(avg);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_is_deterministic() {
        let c = Characterizer::quick();
        let a = c.run(BenchmarkId::Sort);
        let b = c.run(BenchmarkId::Sort);
        assert_eq!(a, b);
    }

    #[test]
    fn events_dump_is_consistent_with_metrics() {
        let c = Characterizer::quick();
        let (m, events) = c.run_with_events(BenchmarkId::Grep);
        let get = |e: PerfEvent| {
            events.iter().find(|(x, _)| *x == e).expect("event present").1
        };
        let ipc = get(PerfEvent::InstructionsRetired) as f64
            / get(PerfEvent::UnhaltedCycles) as f64;
        assert!((ipc - m.ipc).abs() < 1e-9);
    }

    #[test]
    fn avg_bar_is_appended() {
        let c = Characterizer::quick();
        let rows = c.run_data_analysis_with_avg();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows.last().expect("nonempty").name, "avg");
    }
}
