//! The measurement pipeline (paper Section III-D).
//!
//! For each benchmark entry: build its calibrated profile, synthesize
//! the instruction stream, run it through the Westmere-like out-of-order
//! core after a warm-up ramp (the paper performs "a ramp-up period for
//! each application, and then start\[s\] collecting"), read the ~20 events
//! through the PMU layer, and derive the per-figure metrics.
//!
//! # Parallelism and caching
//!
//! Each entry's simulation is a pure function of `(entry, machine
//! config, window, seed)` — the per-entry trace seed is derived from
//! the master seed and the entry id, nothing is shared between entries
//! — so the multi-entry drivers ([`Characterizer::run_all`],
//! [`Characterizer::run_many`], …) fan the jobs out across
//! [`crate::pool::jobs`] worker threads and collect results in entry
//! order: output is **bit-identical** to the sequential reference path
//! at any worker count (set `DCBENCH_JOBS=1` to force sequential).
//! Measured counter blocks are memoized process-wide in
//! [`crate::cache`], so regenerating several figures in one invocation
//! simulates each entry once, not once per figure.

use crate::cache::{self, CacheKey};
use crate::pool;
use crate::profiles::profile;
use crate::registry::BenchmarkId;
use dc_cpu::{core::SimOptions, Chip, Core, CpuConfig, PerfCounts};
use dc_obs::{Recorder, Value};
use dc_perfmon::{msr, Metrics, PerfEvent, SampledMetrics};
use dc_trace::SyntheticTrace;

/// Characterization harness: machine config + measurement window.
#[derive(Debug, Clone)]
pub struct Characterizer {
    cfg: CpuConfig,
    opts: SimOptions,
    seed: u64,
    recorder: Recorder,
}

impl Default for Characterizer {
    fn default() -> Self {
        Characterizer::new(CpuConfig::westmere_e5645(), SimOptions::default(), 2013)
    }
}

impl Characterizer {
    /// Build a harness with an explicit machine, window and seed. The
    /// recorder starts disabled; see [`Characterizer::with_recorder`].
    pub fn new(cfg: CpuConfig, opts: SimOptions, seed: u64) -> Self {
        Characterizer {
            cfg,
            opts,
            seed,
            recorder: Recorder::disabled(),
        }
    }

    /// Attach an observability recorder: cache hits/misses, uncached
    /// simulations and interval samples are emitted as [`dc_obs`]
    /// events. The disabled default costs one branch per would-be
    /// event and leaves every measured counter bit-identical.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The recorder events are emitted through.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Short windows for tests and smoke runs.
    pub fn quick() -> Self {
        Characterizer::new(
            CpuConfig::westmere_e5645(),
            SimOptions::exact(500_000, 300_000),
            2013,
        )
    }

    /// Full windows (used by the figures and benches).
    pub fn full() -> Self {
        Characterizer::new(
            CpuConfig::westmere_e5645(),
            SimOptions::exact(1_200_000, 2_000_000),
            2013,
        )
    }

    /// The machine configuration being measured.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// The same harness measuring a different machine. Seed, window and
    /// recorder are preserved, so per-entry trace seeds — and therefore
    /// the instruction streams — are identical across configurations:
    /// the property [`crate::sweep`] builds its sensitivity curves on.
    pub fn with_config(mut self, cfg: CpuConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The same harness with SMARTS-style systematic sampling enabled:
    /// every measurement window alternates `detail_ops` µops of full
    /// pipeline detail with `ffwd_ops` µops of functional fast-forward
    /// (caches/TLBs/predictor stay warm, no timing), and the counters
    /// are extrapolated to the whole window. Sampled blocks are keyed
    /// separately in the memo/store — they never satisfy an exact
    /// lookup — and flow through every driver ([`Characterizer::run`],
    /// [`Characterizer::corun`], [`Characterizer::run_many`], …)
    /// unchanged.
    pub fn with_sampling(mut self, detail_ops: u64, ffwd_ops: u64) -> Self {
        self.opts = self.opts.with_sampling(detail_ops, ffwd_ops);
        self
    }

    /// [`Characterizer::quick`] with the default SMARTS plan enabled.
    pub fn quick_sampled() -> Self {
        let plan = dc_cpu::SamplePlan::DEFAULT;
        Characterizer::quick().with_sampling(plan.detail_ops, plan.ffwd_ops)
    }

    /// [`Characterizer::full`] with the default SMARTS plan enabled.
    pub fn full_sampled() -> Self {
        let plan = dc_cpu::SamplePlan::DEFAULT;
        Characterizer::full().with_sampling(plan.detail_ops, plan.ffwd_ops)
    }

    /// The master seed entry seeds are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The measurement window in use.
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    /// The per-entry trace seed (master seed mixed with the entry id).
    fn entry_seed(&self, id: BenchmarkId) -> u64 {
        self.seed ^ (id as u64) << 3
    }

    /// Simulate one entry, unconditionally (no cache lookup, no
    /// insertion). The sequential reference path the parallel/cached
    /// pipeline is verified against.
    fn simulate(&self, id: BenchmarkId) -> PerfCounts {
        let prof = profile(id);
        let trace = SyntheticTrace::new(&prof, self.entry_seed(id));
        Core::new(self.cfg.clone()).run(trace, &self.opts)
    }

    /// Counter block for one entry through the memoizing cache.
    fn counts(&self, id: BenchmarkId) -> PerfCounts {
        let key = CacheKey::new(id, &self.cfg, &self.opts, self.entry_seed(id));
        cache::counts_for(key, &self.recorder, || self.simulate(id))
    }

    /// Characterize one benchmark entry.
    pub fn run(&self, id: BenchmarkId) -> Metrics {
        Metrics::from_counts(id.name(), &self.counts(id))
    }

    /// Characterize one entry bypassing the result cache: always
    /// simulates, never reads or populates cached blocks.
    pub fn run_uncached(&self, id: BenchmarkId) -> Metrics {
        cache::note_simulation();
        if self.recorder.is_enabled() {
            self.recorder.emit(
                0,
                "sim_uncached",
                vec![("entry", Value::str(id.name())), ("corun", Value::U64(1))],
            );
        }
        Metrics::from_counts(id.name(), &self.simulate(id))
    }

    /// Characterize one entry and also return the raw PMU event dump
    /// (the `perf stat`-shaped view).
    pub fn run_with_events(&self, id: BenchmarkId) -> (Metrics, Vec<(PerfEvent, u64)>) {
        let counts = self.counts(id);
        (
            Metrics::from_counts(id.name(), &counts),
            msr::collect_all(&counts),
        )
    }

    /// Raw counter block for one entry (for debugging/calibration).
    pub fn raw_counts(&self, id: BenchmarkId) -> dc_cpu::PerfCounts {
        self.counts(id)
    }

    /// Trace seed for co-runner `k` of an entry: co-runner 0 reuses the
    /// solo seed (so a width-1 co-run *is* the solo measurement), the
    /// rest decorrelate via a splitmix-style odd-constant mix.
    fn corun_seed(&self, id: BenchmarkId, k: usize) -> u64 {
        self.entry_seed(id) ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Simulate `n` copies of one entry co-running on a shared-L3 chip,
    /// unconditionally (no cache). One counter block per core.
    fn simulate_corun(&self, id: BenchmarkId, n: usize) -> Vec<PerfCounts> {
        let prof = profile(id);
        let traces = (0..n)
            .map(|k| SyntheticTrace::new(&prof, self.corun_seed(id, k)))
            .collect();
        Chip::new(self.cfg.clone(), n).run(traces, &self.opts)
    }

    /// Per-core counter blocks for an `n`-wide co-run of one entry,
    /// through the memoizing cache (keyed on co-run width).
    pub fn corun_counts(&self, id: BenchmarkId, n: usize) -> Vec<PerfCounts> {
        assert!(n > 0, "co-run width must be at least 1");
        let key =
            CacheKey::new(id, &self.cfg, &self.opts, self.entry_seed(id)).with_corun(n as u32);
        cache::counts_vec_for(key, &self.recorder, || self.simulate_corun(id, n))
    }

    /// Characterize `n` co-running copies of one entry on a shared-L3
    /// chip ([`dc_cpu::Chip`]), modelling `n` Hadoop task slots of the
    /// same workload. Returns the metric row of **core 0** — the
    /// observed task, whose trace is identical at every width — so rows
    /// at widths 1, 4, 8 isolate the cost of contention. `corun(id, 1)`
    /// equals `run(id)` bit-for-bit.
    pub fn corun(&self, id: BenchmarkId, n: usize) -> Metrics {
        Metrics::from_counts(id.name(), &self.corun_counts(id, n)[0])
    }

    /// Characterize one entry with **interval PMU sampling**: snapshot
    /// the counters every `every_cycles` simulated cycles (the
    /// `perf stat -I` view) and derive per-interval IPC / L2 MPKI /
    /// L3 MPKI / branch MPKI.
    ///
    /// Sampling is observation-only — the aggregate block inside the
    /// returned [`SampledMetrics`] is bit-identical to
    /// [`Characterizer::raw_counts`] for the same entry — and the
    /// per-interval deltas telescope to that aggregate exactly. The
    /// sampled path always simulates (series are not memoized; the
    /// simulation is counted in [`crate::cache::sim_invocations`]).
    /// With a recorder attached, one `interval_sample` event per
    /// interval plus a `workload_sampled` summary are emitted, all
    /// timestamped in **simulated cycles** since the warm-up boundary.
    pub fn run_sampled(&self, id: BenchmarkId, every_cycles: u64) -> SampledMetrics {
        let run = self.raw_sampled(id, every_cycles);
        let sampled = SampledMetrics::from_run(id.name(), &run);
        self.emit_samples(&sampled);
        sampled
    }

    /// The raw counter-level sampled run behind
    /// [`Characterizer::run_sampled`] (for validation/calibration, the
    /// way [`Characterizer::raw_counts`] sits behind
    /// [`Characterizer::run`]). Emits no events.
    pub fn raw_sampled(&self, id: BenchmarkId, every_cycles: u64) -> dc_cpu::SampledRun {
        cache::note_simulation();
        let prof = profile(id);
        let trace = SyntheticTrace::new(&prof, self.entry_seed(id));
        Core::new(self.cfg.clone()).run_sampled(trace, &self.opts, every_cycles)
    }

    /// Emit one `interval_sample` event per interval plus the
    /// `workload_sampled` summary for an already-computed series (used
    /// by [`crate::report::phase_exhibit`], which samples workloads in
    /// parallel but must emit in deterministic workload order).
    pub(crate) fn emit_samples(&self, sampled: &SampledMetrics) {
        if !self.recorder.is_enabled() {
            return;
        }
        for iv in &sampled.intervals {
            self.recorder.emit(
                iv.end_cycle,
                "interval_sample",
                vec![
                    ("workload", Value::str(sampled.name.clone())),
                    ("interval", Value::U64(iv.index as u64)),
                    ("start_cycle", Value::U64(iv.start_cycle)),
                    ("end_cycle", Value::U64(iv.end_cycle)),
                    ("instructions", Value::U64(iv.instructions)),
                    ("ipc", Value::F64(iv.ipc)),
                    ("l2_mpki", Value::F64(iv.l2_mpki)),
                    ("l3_mpki", Value::F64(iv.l3_mpki)),
                    ("branch_mpki", Value::F64(iv.branch_mpki)),
                ],
            );
        }
        self.recorder.emit(
            sampled.aggregate.cycles,
            "workload_sampled",
            vec![
                ("workload", Value::str(sampled.name.clone())),
                ("intervals", Value::U64(sampled.intervals.len() as u64)),
                ("every_cycles", Value::U64(sampled.every_cycles)),
                ("instructions", Value::U64(sampled.aggregate.instructions)),
                ("ipc", Value::F64(sampled.aggregate.ipc())),
                ("ipc_spread", Value::F64(sampled.ipc_spread())),
            ],
        );
    }

    /// Characterize a set of entries in parallel, returning metric rows
    /// in the same order as `ids`. Bit-identical to mapping [`run`]
    /// over `ids` sequentially.
    ///
    /// [`run`]: Characterizer::run
    pub fn run_many(&self, ids: &[BenchmarkId]) -> Vec<Metrics> {
        pool::parallel_map(ids.to_vec(), |_, id| self.run(id))
    }

    /// Characterize every entry in figure order (in parallel).
    pub fn run_all(&self) -> Vec<Metrics> {
        self.run_many(BenchmarkId::all())
    }

    /// Characterize every entry in figure order on the caller thread
    /// only, bypassing both the worker pool and the result cache: the
    /// reference the parallel pipeline is timed and verified against.
    pub fn run_all_sequential(&self) -> Vec<Metrics> {
        BenchmarkId::all()
            .iter()
            .map(|&id| self.run_uncached(id))
            .collect()
    }

    /// Characterize the eleven data-analysis entries plus their `avg`
    /// bar (the paper inserts the average after HMM).
    pub fn run_data_analysis_with_avg(&self) -> Vec<Metrics> {
        let mut rows = self.run_many(BenchmarkId::data_analysis());
        let avg = dc_perfmon::metrics::average("avg", &rows);
        rows.push(avg);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_is_deterministic() {
        let c = Characterizer::quick();
        let a = c.run(BenchmarkId::Sort);
        let b = c.run(BenchmarkId::Sort);
        assert_eq!(a, b);
        // And the uncached reference path agrees with the cached one.
        assert_eq!(a, c.run_uncached(BenchmarkId::Sort));
    }

    #[test]
    fn events_dump_is_consistent_with_metrics() {
        let c = Characterizer::quick();
        let (m, events) = c.run_with_events(BenchmarkId::Grep);
        let get = |e: PerfEvent| {
            events
                .iter()
                .find(|(x, _)| *x == e)
                .expect("event present")
                .1
        };
        let ipc =
            get(PerfEvent::InstructionsRetired) as f64 / get(PerfEvent::UnhaltedCycles) as f64;
        assert!((ipc - m.ipc).abs() < 1e-9);
    }

    #[test]
    fn avg_bar_is_appended() {
        let c = Characterizer::quick();
        let rows = c.run_data_analysis_with_avg();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows.last().expect("nonempty").name, "avg");
    }

    #[test]
    fn corun_width_one_equals_solo_run() {
        // A seed no other test uses, so the shared cache cannot satisfy
        // either path from the other's fill: the chip path simulates
        // first, then the uncached Core reference path must agree
        // bit-for-bit.
        let c = Characterizer::new(
            CpuConfig::westmere_e5645(),
            SimOptions::exact(80_000, 20_000),
            0x00C0_9013,
        );
        let co = c.corun(BenchmarkId::KMeans, 1);
        assert_eq!(co, c.run_uncached(BenchmarkId::KMeans));
        assert_eq!(
            c.corun_counts(BenchmarkId::KMeans, 1).len(),
            1,
            "one block per core"
        );
    }

    #[test]
    fn corun_is_deterministic_and_cached() {
        let c = Characterizer::quick();
        let a = c.corun_counts(BenchmarkId::Sort, 3);
        assert_eq!(a.len(), 3);
        let before = cache::sim_invocations();
        let b = c.corun_counts(BenchmarkId::Sort, 3);
        assert_eq!(
            cache::sim_invocations(),
            before,
            "warm co-run lookup must not re-simulate"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_harness_is_keyed_separately_from_exact() {
        let exact = Characterizer::quick();
        let sampled = Characterizer::quick_sampled();
        let a = exact.raw_counts(BenchmarkId::Sort);
        let b = sampled.raw_counts(BenchmarkId::Sort);
        // Both modes stop within one retire group of `max_ops`, but on
        // different cycle boundaries, so the counts can differ by up to
        // the retire width — never more.
        assert!(
            a.instructions.abs_diff(b.instructions) <= 8,
            "instruction counts diverged: exact {} vs sampled {}",
            a.instructions,
            b.instructions
        );
        assert_ne!(
            a.cycles, b.cycles,
            "a sampled block is an extrapolation, not the exact block"
        );
        // Warm lookups on both keys hit without re-simulating — and
        // each returns its own block, not the other mode's.
        let before = cache::sim_invocations();
        assert_eq!(exact.raw_counts(BenchmarkId::Sort), a);
        assert_eq!(sampled.raw_counts(BenchmarkId::Sort), b);
        assert_eq!(cache::sim_invocations(), before);
    }

    #[test]
    fn sampled_corun_width_one_equals_sampled_solo() {
        // The chip lockstep and the single-core loop must agree in
        // sampled mode exactly as they do in exact mode. Seed unique to
        // this test so the cache cannot cross-satisfy the two paths.
        let c = Characterizer::new(
            CpuConfig::westmere_e5645(),
            SimOptions::exact(80_000, 20_000).with_sampling(10_000, 30_000),
            0x5A3D_9013,
        );
        assert_eq!(
            c.corun(BenchmarkId::KMeans, 1),
            c.run_uncached(BenchmarkId::KMeans)
        );
    }

    #[test]
    fn run_many_matches_per_entry_runs() {
        let c = Characterizer::quick();
        let ids = [BenchmarkId::Sort, BenchmarkId::Grep, BenchmarkId::SpecInt];
        let batch = c.run_many(&ids);
        assert_eq!(batch.len(), 3);
        for (row, &id) in batch.iter().zip(&ids) {
            assert_eq!(*row, c.run(id));
        }
    }
}
