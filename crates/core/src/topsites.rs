//! Figure 1: the top-site census.
//!
//! The paper classifies Alexa's global top-20 sites (February 2013) into
//! five categories and reports each category's share, which motivates
//! the three application domains (search engine, social network,
//! electronic commerce). Alexa's historical rankings are not
//! redistributable, so we carry a synthetic-but-faithful snapshot of the
//! early-2013 top-20 with plausible traffic weights; the *computation*
//! (rank by combined daily visitors × page views, classify, share) is
//! the paper's.

/// Site categories used in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Search engines.
    SearchEngine,
    /// Social networks.
    SocialNetwork,
    /// Electronic commerce.
    ElectronicCommerce,
    /// Media streaming.
    MediaStreaming,
    /// Everything else.
    Others,
}

impl Category {
    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            Category::SearchEngine => "Search Engine",
            Category::SocialNetwork => "Social Network",
            Category::ElectronicCommerce => "Electronic Commerce",
            Category::MediaStreaming => "Media Streaming",
            Category::Others => "Others",
        }
    }
}

/// One site in the census.
#[derive(Debug, Clone)]
pub struct Site {
    /// Domain name.
    pub domain: &'static str,
    /// Category.
    pub category: Category,
    /// Relative daily visitors (arbitrary units).
    pub daily_visitors: f64,
    /// Relative page views (arbitrary units).
    pub page_views: f64,
}

/// The synthetic early-2013 top-site snapshot (see module docs).
pub fn census() -> Vec<Site> {
    use Category::*;
    let s = |domain, category, dv, pv| Site {
        domain,
        category,
        daily_visitors: dv,
        page_views: pv,
    };
    vec![
        s("google.com", SearchEngine, 100.0, 98.0),
        s("facebook.com", SocialNetwork, 95.0, 100.0),
        s("youtube.com", MediaStreaming, 85.0, 80.0),
        s("yahoo.com", SearchEngine, 70.0, 60.0),
        s("baidu.com", SearchEngine, 68.0, 75.0),
        s("wikipedia.org", Others, 55.0, 40.0),
        s("qq.com", SocialNetwork, 50.0, 55.0),
        s("taobao.com", ElectronicCommerce, 45.0, 50.0),
        s("live.com", Others, 44.0, 35.0),
        s("twitter.com", SocialNetwork, 42.0, 38.0),
        s("amazon.com", ElectronicCommerce, 40.0, 42.0),
        s("linkedin.com", SocialNetwork, 35.0, 28.0),
        s("google.co.in", SearchEngine, 33.0, 30.0),
        s("sina.com.cn", Others, 30.0, 32.0), // portal/news
        s("ebay.com", ElectronicCommerce, 28.0, 30.0),
        s("yandex.ru", SearchEngine, 26.0, 24.0),
        s("bing.com", SearchEngine, 25.0, 20.0),
        s("vk.com", SocialNetwork, 24.0, 26.0),
        s("sogou.com", SearchEngine, 22.0, 21.0),
        s("blogspot.com", SearchEngine, 20.0, 15.0),
    ]
}

/// Alexa-style rank score: combination of average daily visitors and
/// page views (geometric mean, as Alexa describes its methodology).
pub fn rank_score(site: &Site) -> f64 {
    (site.daily_visitors * site.page_views).sqrt()
}

/// Category shares over the top-`n` sites by rank score (Figure 1's
/// numbers; the paper uses n = 20).
pub fn category_shares(n: usize) -> Vec<(Category, f64)> {
    let mut sites = census();
    sites.sort_by(|a, b| {
        rank_score(b)
            .partial_cmp(&rank_score(a))
            .expect("finite scores")
    });
    sites.truncate(n);
    let total = sites.len().max(1) as f64;
    use Category::*;
    [
        SearchEngine,
        SocialNetwork,
        ElectronicCommerce,
        MediaStreaming,
        Others,
    ]
    .into_iter()
    .map(|cat| {
        let count = sites.iter().filter(|s| s.category == cat).count();
        (cat, count as f64 / total)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_has_twenty_sites() {
        assert_eq!(census().len(), 20);
    }

    #[test]
    fn shares_match_figure_1() {
        // Paper: search 40 %, social 25 %, e-commerce 15 %, media 5 %,
        // others 15 %.
        let shares = category_shares(20);
        let get = |c: Category| shares.iter().find(|(x, _)| *x == c).expect("category").1;
        assert!((get(Category::SearchEngine) - 0.40).abs() < 1e-9);
        assert!((get(Category::SocialNetwork) - 0.25).abs() < 1e-9);
        assert!((get(Category::Others) - 0.15).abs() < 1e-9);
        assert!((get(Category::ElectronicCommerce) - 0.15).abs() < 1e-9);
        assert!((get(Category::MediaStreaming) - 0.05).abs() < 1e-9);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_three_domains_are_the_papers_focus() {
        // Search + social + e-commerce should dominate (80 %).
        let shares = category_shares(20);
        let focus: f64 = shares
            .iter()
            .filter(|(c, _)| {
                matches!(
                    c,
                    Category::SearchEngine | Category::SocialNetwork | Category::ElectronicCommerce
                )
            })
            .map(|(_, s)| s)
            .sum();
        assert!(focus >= 0.75);
    }

    #[test]
    fn rank_score_orders_google_first() {
        let sites = census();
        let top = sites
            .iter()
            .max_by(|a, b| rank_score(a).partial_cmp(&rank_score(b)).expect("finite"))
            .expect("nonempty");
        assert_eq!(top.domain, "google.com");
    }
}
