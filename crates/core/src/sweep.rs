//! Microarchitectural sensitivity sweeps (Exhibit SW).
//!
//! The paper measures the eleven data-analysis workloads on one fixed
//! Westmere configuration (Table III), but its architectural claims —
//! L2-pressure dominance, low ILP utilization, regular branch behavior
//! — are claims about how the metrics *move* as the machine changes.
//! The follow-up work ("Understanding Big Data Analytic Workloads on
//! Modern Processors", "Characterizing and Subsetting Big Data
//! Workloads") studies exactly those sensitivities. This module is the
//! sweep engine behind them:
//!
//! * a [`SweepAxis`] names one machine knob (L3 capacity, ROB entries,
//!   RS entries, predictor history bits, prefetch on/off) plus the grid
//!   of values to visit, each validated through the fallible
//!   `CpuConfig::try_with_*` builders at expansion time;
//! * [`run`] expands `(workload × axis-point)` into a flat job grid and
//!   fans it out across [`crate::pool`] workers. Every job is a pure
//!   function of `(entry, config, window, seed)`: the per-entry trace
//!   seed depends only on the master seed and the entry id — **not** on
//!   the swept configuration — so every point of a curve executes the
//!   identical instruction stream, and results are bit-identical to the
//!   sequential reference order at any `DCBENCH_JOBS` width;
//! * every point goes through the memoizing counter cache
//!   ([`crate::cache`], keyed on `CpuConfig::stable_hash`), so the
//!   baseline point shared by several axes simulates once, and
//!   regenerating the exhibit from a warm cache costs lookups only;
//! * with a recorder attached to the harness, one `sweep_point` event
//!   per grid cell plus one `sweep_axis` summary per axis are emitted
//!   **after** the parallel phase, on the caller thread, in fixed
//!   (axis, point, workload) order — so the JSONL artifact is
//!   byte-deterministic run to run at any worker count.

use crate::characterize::Characterizer;
use crate::pool;
use crate::registry::BenchmarkId;
use dc_cpu::{ConfigError, CpuConfig, PerfCounts};
use dc_obs::{Recorder, Value};
use dc_perfmon::Metrics;

/// Which machine knob a sweep axis varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// Last-level cache capacity in bytes (`try_with_l3_bytes`).
    L3Bytes,
    /// Re-order buffer entries (`try_with_rob_entries`).
    RobEntries,
    /// Reservation-station entries (`try_with_rs_entries`).
    RsEntries,
    /// Branch-predictor global-history bits (`try_with_predictor_bits`;
    /// 0 = static not-taken).
    PredictorBits,
    /// L2 stream prefetcher on/off (`with_prefetch`; 0 = off, 1 = on).
    Prefetch,
}

impl AxisKind {
    /// Stable identifier used in event fields and exhibit titles.
    pub fn name(&self) -> &'static str {
        match self {
            AxisKind::L3Bytes => "l3_bytes",
            AxisKind::RobEntries => "rob_entries",
            AxisKind::RsEntries => "rs_entries",
            AxisKind::PredictorBits => "predictor_bits",
            AxisKind::Prefetch => "prefetch",
        }
    }

    /// Human axis description for exhibit titles.
    pub fn title(&self) -> &'static str {
        match self {
            AxisKind::L3Bytes => "L3 capacity",
            AxisKind::RobEntries => "ROB entries",
            AxisKind::RsEntries => "RS entries",
            AxisKind::PredictorBits => "predictor history bits",
            AxisKind::Prefetch => "L2 prefetcher",
        }
    }

    /// Column label for one grid value of this axis.
    pub fn label(&self, value: u64) -> String {
        match self {
            AxisKind::L3Bytes => {
                if value >= 1 << 20 && value.is_multiple_of(1 << 20) {
                    format!("{}M", value >> 20)
                } else {
                    format!("{}K", value >> 10)
                }
            }
            AxisKind::Prefetch => (if value == 0 { "off" } else { "on" }).to_string(),
            _ => value.to_string(),
        }
    }
}

/// One sweep axis: a knob plus the ordered grid of values to visit.
///
/// Grids must be non-empty and strictly increasing — the order the
/// monotonicity properties in `tests/sweep_properties.rs` are stated
/// in. Values are validated against the base machine when the axis is
/// expanded ([`SweepAxis::configs`]), through the same fallible
/// builders callers use directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    kind: AxisKind,
    points: Vec<u64>,
}

impl SweepAxis {
    fn new(kind: AxisKind, points: Vec<u64>) -> Self {
        assert!(!points.is_empty(), "a sweep axis needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "sweep grid must be strictly increasing: {points:?}"
        );
        SweepAxis { kind, points }
    }

    /// An L3-capacity axis over `bytes` (each a whole number of sets).
    pub fn l3_bytes(bytes: Vec<u64>) -> Self {
        SweepAxis::new(AxisKind::L3Bytes, bytes)
    }

    /// A ROB-size axis over `entries`.
    pub fn rob_entries(entries: Vec<u64>) -> Self {
        SweepAxis::new(AxisKind::RobEntries, entries)
    }

    /// An RS-size axis over `entries`.
    pub fn rs_entries(entries: Vec<u64>) -> Self {
        SweepAxis::new(AxisKind::RsEntries, entries)
    }

    /// A predictor-history axis over `bits` (0 = static not-taken).
    pub fn predictor_bits(bits: Vec<u64>) -> Self {
        SweepAxis::new(AxisKind::PredictorBits, bits)
    }

    /// The prefetcher off/on axis.
    pub fn prefetch() -> Self {
        SweepAxis::new(AxisKind::Prefetch, vec![0, 1])
    }

    /// The knob this axis varies.
    pub fn kind(&self) -> AxisKind {
        self.kind
    }

    /// The grid values, in sweep order.
    pub fn points(&self) -> &[u64] {
        &self.points
    }

    /// Column labels for the grid.
    pub fn labels(&self) -> Vec<String> {
        self.points.iter().map(|&v| self.kind.label(v)).collect()
    }

    /// Apply one grid value to the base machine.
    pub fn apply(&self, base: &CpuConfig, value: u64) -> Result<CpuConfig, ConfigError> {
        let base = base.clone();
        match self.kind {
            AxisKind::L3Bytes => base.try_with_l3_bytes(value),
            AxisKind::RobEntries => base.try_with_rob_entries(value as u32),
            AxisKind::RsEntries => base.try_with_rs_entries(value as u32),
            AxisKind::PredictorBits => base.try_with_predictor_bits(value as u32),
            AxisKind::Prefetch => Ok(base.with_prefetch(value != 0)),
        }
    }

    /// Expand the axis into one full machine description per point.
    pub fn configs(&self, base: &CpuConfig) -> Result<Vec<CpuConfig>, ConfigError> {
        self.points.iter().map(|&v| self.apply(base, v)).collect()
    }

    /// The default grid for each axis: the paper's Table III value
    /// bracketed both ways, so every curve crosses the measured
    /// machine.
    pub fn default_axes() -> Vec<SweepAxis> {
        vec![
            SweepAxis::l3_bytes(vec![1536 << 10, 3 << 20, 6 << 20, 12 << 20, 24 << 20]),
            SweepAxis::rob_entries(vec![32, 64, 128, 256]),
            SweepAxis::rs_entries(vec![12, 24, 36, 72]),
            SweepAxis::predictor_bits(vec![0, 4, 8, 12]),
            SweepAxis::prefetch(),
        ]
    }

    /// A reduced grid (two points per axis, three axes) for smoke runs
    /// and CI determinism checks.
    pub fn reduced_axes() -> Vec<SweepAxis> {
        vec![
            SweepAxis::l3_bytes(vec![6 << 20, 12 << 20]),
            SweepAxis::rob_entries(vec![64, 128]),
            SweepAxis::predictor_bits(vec![0, 12]),
        ]
    }
}

/// One workload's curve along one axis: the measured counter block and
/// derived metric row at every grid point, in axis order.
#[derive(Debug, Clone)]
pub struct WorkloadCurve {
    /// The workload swept.
    pub id: BenchmarkId,
    /// Raw counter block per grid point (the monotonicity properties
    /// are stated on these).
    pub counts: Vec<PerfCounts>,
    /// Derived metric row per grid point.
    pub metrics: Vec<Metrics>,
}

/// The full result of sweeping a set of workloads along one axis.
#[derive(Debug, Clone)]
pub struct AxisSweep {
    /// The knob varied.
    pub kind: AxisKind,
    /// Grid values, in sweep order.
    pub values: Vec<u64>,
    /// Column labels for the grid.
    pub labels: Vec<String>,
    /// One curve per swept workload, in input order.
    pub curves: Vec<WorkloadCurve>,
}

/// Sweep `ids` along every axis in `axes` against `bench`'s machine,
/// window and seed.
///
/// The whole `(workload × point)` grid across all axes is flattened
/// into one job list and fanned out over [`crate::pool::jobs`] workers;
/// each job reads or fills the process-wide counter cache under its
/// config's `stable_hash` key. Results are reassembled in `(axis,
/// point, workload)` order, so output is bit-identical to the
/// sequential reference at any worker count.
///
/// With a recorder attached to `bench`, `sweep_point` / `sweep_axis`
/// events are emitted after the parallel phase in that same fixed
/// order (`ts` is 0 throughout — sweep events live in the host's
/// logical time, like the cache telemetry; ordering comes from `seq`).
///
/// Returns the first [`ConfigError`] if any grid value is invalid for
/// the base machine; no simulation runs in that case.
pub fn run(
    bench: &Characterizer,
    ids: &[BenchmarkId],
    axes: &[SweepAxis],
) -> Result<Vec<AxisSweep>, ConfigError> {
    // Expand and validate the whole grid before simulating anything.
    let expanded: Vec<Vec<CpuConfig>> = axes
        .iter()
        .map(|axis| axis.configs(bench.config()))
        .collect::<Result<_, _>>()?;

    // Flat job list in (axis, point, workload) order. Workers measure
    // through a recorder-less clone so no event reaches the sink from
    // a nondeterministic thread interleaving.
    let quiet = bench.clone().with_recorder(Recorder::disabled());
    let jobs: Vec<(BenchmarkId, CpuConfig)> = expanded
        .iter()
        .flat_map(|configs| {
            configs
                .iter()
                .flat_map(|cfg| ids.iter().map(move |&id| (id, cfg.clone())))
        })
        .collect();
    let blocks = pool::parallel_map(jobs, move |_, (id, cfg)| {
        quiet.clone().with_config(cfg).raw_counts(id)
    });

    // Reassemble: blocks[axis][point][workload] in emission order.
    let mut sweeps = Vec::with_capacity(axes.len());
    let mut flat = blocks.into_iter();
    for (axis, configs) in axes.iter().zip(&expanded) {
        let mut curves: Vec<WorkloadCurve> = ids
            .iter()
            .map(|&id| WorkloadCurve {
                id,
                counts: Vec::with_capacity(configs.len()),
                metrics: Vec::with_capacity(configs.len()),
            })
            .collect();
        for _ in configs {
            for curve in curves.iter_mut() {
                let counts = flat.next().expect("one block per grid cell");
                curve
                    .metrics
                    .push(Metrics::from_counts(curve.id.name(), &counts));
                curve.counts.push(counts);
            }
        }
        sweeps.push(AxisSweep {
            kind: axis.kind,
            values: axis.points.clone(),
            labels: axis.labels(),
            curves,
        });
    }

    emit_sweep_events(bench.recorder(), &sweeps);
    Ok(sweeps)
}

/// Emit the deterministic event stream for an already-computed sweep:
/// per axis, one `sweep_point` per (point, workload) cell in grid
/// order, then the `sweep_axis` summary.
fn emit_sweep_events(recorder: &Recorder, sweeps: &[AxisSweep]) {
    if !recorder.is_enabled() {
        return;
    }
    for sweep in sweeps {
        for (p, label) in sweep.labels.iter().enumerate() {
            for curve in &sweep.curves {
                let m = &curve.metrics[p];
                let c = &curve.counts[p];
                recorder.emit(
                    0,
                    "sweep_point",
                    vec![
                        ("axis", Value::str(sweep.kind.name())),
                        ("point", Value::str(label.clone())),
                        ("value", Value::U64(sweep.values[p])),
                        ("workload", Value::str(curve.id.name())),
                        ("ipc", Value::F64(m.ipc)),
                        ("l2_mpki", Value::F64(m.l2_mpki)),
                        ("l3_mpki", Value::F64(m.l3_mpki)),
                        ("l3_misses", Value::U64(c.l3_misses)),
                        ("misp_ratio", Value::F64(m.branch_misprediction)),
                        ("instructions", Value::U64(m.instructions)),
                    ],
                );
            }
        }
        recorder.emit(
            0,
            "sweep_axis",
            vec![
                ("axis", Value::str(sweep.kind.name())),
                ("points", Value::U64(sweep.values.len() as u64)),
                ("workloads", Value::U64(sweep.curves.len() as u64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_cpu::core::SimOptions;

    fn harness() -> Characterizer {
        Characterizer::new(
            CpuConfig::westmere_e5645(),
            SimOptions::exact(30_000, 10_000),
            0x53EE_2013,
        )
    }

    #[test]
    fn axis_labels_and_names() {
        let l3 = SweepAxis::l3_bytes(vec![1536 << 10, 12 << 20]);
        assert_eq!(l3.labels(), vec!["1536K", "12M"]);
        assert_eq!(l3.kind().name(), "l3_bytes");
        let pf = SweepAxis::prefetch();
        assert_eq!(pf.labels(), vec!["off", "on"]);
        assert_eq!(
            SweepAxis::rob_entries(vec![32, 64]).labels(),
            vec!["32", "64"]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_grid_is_rejected() {
        let _ = SweepAxis::rob_entries(vec![64, 32]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_grid_is_rejected() {
        let _ = SweepAxis::l3_bytes(Vec::new());
    }

    #[test]
    fn invalid_grid_value_surfaces_the_config_error() {
        let bench = harness();
        // 1000 bytes is not a whole number of L3 sets.
        let err = run(
            &bench,
            &[BenchmarkId::Sort],
            &[SweepAxis::l3_bytes(vec![1000])],
        )
        .unwrap_err();
        assert_eq!(err.param, "l3.size_bytes");
    }

    #[test]
    fn grid_shape_and_baseline_point_match_plain_runs() {
        let bench = harness();
        let axes = [SweepAxis::l3_bytes(vec![6 << 20, 12 << 20])];
        let ids = [BenchmarkId::Sort, BenchmarkId::Grep];
        let sweeps = run(&bench, &ids, &axes).expect("valid grid");
        assert_eq!(sweeps.len(), 1);
        let sweep = &sweeps[0];
        assert_eq!(sweep.curves.len(), 2);
        for (curve, &id) in sweep.curves.iter().zip(&ids) {
            assert_eq!(curve.id, id);
            assert_eq!(curve.counts.len(), 2);
            assert_eq!(curve.metrics.len(), 2);
            // The 12 MB point *is* the paper's machine: identical to a
            // plain (unswept) run of the same harness.
            assert_eq!(curve.counts[1], bench.raw_counts(id), "{id:?}");
        }
    }

    #[test]
    fn rob_32_sweep_point_runs_on_exact_capacity_rings() {
        // The SoA backend rings are allocated at exactly the configured
        // capacity (no pow2 rounding, no slack slot), so the smallest
        // grid point in the default ROB axis exercises a 32-entry ring
        // end to end. Regression test for the flat-array refactor: the
        // window must still complete, with the shrunken ROB visible as
        // added stall pressure, and the baseline point bit-identical to
        // the unswept machine.
        let bench = harness();
        let sweeps = run(
            &bench,
            &[BenchmarkId::Sort],
            &[SweepAxis::rob_entries(vec![32, 128])],
        )
        .expect("valid grid");
        let curve = &sweeps[0].curves[0];
        let (small, base) = (&curve.counts[0], &curve.counts[1]);
        assert!(
            small.instructions >= 30_000,
            "the measured window must complete at ROB=32"
        );
        assert!(
            small.cycles > base.cycles,
            "a quarter-size ROB cannot be as fast as the full one"
        );
        assert!(
            small.rob_full_stall_cycles > base.rob_full_stall_cycles,
            "the shrunken ring must surface as ROB-full stalls"
        );
        assert_eq!(
            *base,
            bench.raw_counts(BenchmarkId::Sort),
            "the 128-entry point is the paper's machine"
        );
    }

    #[test]
    fn sampled_sweeps_flow_through_the_grid() {
        // A sampled harness sweeps exactly like an exact one — same
        // grid shape, same baseline identity — with every point keyed
        // separately from its exact twin in the shared cache.
        let exact = harness();
        let sampled = harness().with_sampling(5_000, 10_000);
        let axes = [SweepAxis::l3_bytes(vec![6 << 20, 12 << 20])];
        let s = run(&sampled, &[BenchmarkId::Grep], &axes).expect("valid grid");
        let e = run(&exact, &[BenchmarkId::Grep], &axes).expect("valid grid");
        let (sc, ec) = (&s[0].curves[0], &e[0].curves[0]);
        assert_eq!(sc.counts.len(), 2);
        assert_eq!(
            sc.counts[1],
            sampled.raw_counts(BenchmarkId::Grep),
            "baseline point matches the unswept sampled run"
        );
        assert_ne!(
            sc.counts[1], ec.counts[1],
            "sampled and exact grids must not share cache entries"
        );
    }

    #[test]
    fn sweep_events_are_emitted_in_grid_order() {
        let (recorder, ring) = dc_obs::Recorder::ring(1 << 10);
        let bench = harness().with_recorder(recorder);
        let axes = [SweepAxis::predictor_bits(vec![0, 12])];
        let ids = [BenchmarkId::Sort, BenchmarkId::WordCount];
        run(&bench, &ids, &axes).expect("valid grid");
        let events = ring.snapshot();
        let points: Vec<(String, String)> = events
            .iter()
            .filter(|e| e.kind == "sweep_point")
            .map(|e| {
                (
                    e.field("point").and_then(Value::as_str).unwrap().to_owned(),
                    e.field("workload")
                        .and_then(Value::as_str)
                        .unwrap()
                        .to_owned(),
                )
            })
            .collect();
        assert_eq!(
            points,
            vec![
                ("0".to_owned(), "Sort".to_owned()),
                ("0".to_owned(), "WordCount".to_owned()),
                ("12".to_owned(), "Sort".to_owned()),
                ("12".to_owned(), "WordCount".to_owned()),
            ]
        );
        let summaries = events.iter().filter(|e| e.kind == "sweep_axis").count();
        assert_eq!(summaries, 1);
    }
}
