//! # dc-cpu — cycle-level out-of-order CPU model
//!
//! The micro-architecture substrate of the dcbench-rs reproduction of
//! "Characterizing Data Analysis Workloads in Data Centers" (IISWC 2013).
//! The paper reads ~20 hardware events from Intel Xeon E5645 (Westmere)
//! performance counters; this crate provides the machine those events
//! come from:
//!
//! * [`config::CpuConfig`] — Table III's machine description (caches,
//!   TLBs, window sizes, latencies) plus ablation knobs;
//! * [`cache`] — set-associative LRU caches, the three-level hierarchy
//!   and the L2 stream prefetcher;
//! * [`tlb`] — split L1 TLBs with a shared second level and page-walk
//!   accounting;
//! * [`branch`] — gshare + BTB branch prediction;
//! * [`core`] — the timestamp-based out-of-order pipeline model with
//!   paper-style stall attribution (fetch / RAT / RS / ROB / load /
//!   store buffer);
//! * [`chip`] — N cores in deterministic lockstep behind one shared,
//!   contended L3, modelling co-running Hadoop task slots;
//! * [`counters::PerfCounts`] — every event the paper reports, with the
//!   derived metrics used by each figure.
//!
//! ```
//! use dc_cpu::{config::CpuConfig, core::{simulate, SimOptions}};
//! use dc_trace::{profile::WorkloadProfile, synth::SyntheticTrace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = WorkloadProfile::builder("demo").build()?;
//! let trace = SyntheticTrace::new(&profile, 42);
//! let counts = simulate(trace, &CpuConfig::westmere_e5645(), &SimOptions::quick());
//! assert!(counts.ipc() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod chip;
pub mod config;
pub mod core;
pub mod counters;
pub mod sampling;
pub mod tlb;

pub use crate::chip::Chip;
pub use crate::config::{ConfigError, CpuConfig};
pub use crate::core::{simulate, Core, SamplePlan, SimOptions};
pub use crate::counters::PerfCounts;
pub use crate::sampling::{IntervalSample, SampledRun};
