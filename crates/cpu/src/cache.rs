//! Set-associative caches and the three-level hierarchy.
//!
//! True LRU within a set, write-allocate, and an optional L2 stream
//! prefetcher (Westmere's DCU/L2 streamer class): demand misses that form
//! an ascending line stream trigger prefetches of the next few lines into
//! L2 and L3. Prefetch fills are tracked separately so demand-miss
//! counters match what hardware counters report.
//!
//! Ownership mirrors the E5645 die: [`PrivateHierarchy`] holds the
//! structures each core owns alone (split L1s, unified L2, the stream
//! prefetcher, and this core's share of the L3 demand statistics), while
//! [`SharedL3`] holds what the whole chip contends for (the 12 MB L3 and
//! the DRAM channel). [`Hierarchy`] composes one of each for the
//! single-core [`Core`](crate::core::Core) path; [`Chip`](crate::chip::Chip)
//! points N private hierarchies at one shared level.

use crate::config::{CacheConfig, CpuConfig, PrefetchConfig};

/// One set-associative, true-LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two (the common
    /// case); lets the hot set-index computation be a mask instead of
    /// a 64-bit modulo. The L3's 12288 sets take the modulo path.
    set_mask: u64,
    sets_pow2: bool,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    /// Demand accesses.
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
}

impl Cache {
    /// Build a cache from its geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        let assoc = cfg.assoc as usize;
        Cache {
            sets,
            assoc,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            sets_pow2: sets.is_power_of_two(),
            tags: vec![u64::MAX; sets * assoc],
            stamps: vec![0; sets * assoc],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.sets_pow2 {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets as u64) as usize
        }
    }

    /// Demand access to byte address `addr`; returns `true` on hit.
    /// Misses allocate the line (LRU victim).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let hit = self.touch_line(addr >> self.line_shift);
        if !hit {
            self.misses += 1;
        }
        hit
    }

    /// Fill without counting stats (prefetch). Returns `true` if the line
    /// was already present.
    pub fn fill(&mut self, addr: u64) -> bool {
        self.touch_line(addr >> self.line_shift)
    }

    /// Probe without allocating or counting; `true` if present.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    #[inline]
    fn touch_line(&mut self, line: u64) -> bool {
        self.clock += 1;
        let set = self.set_of(line);
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            return true;
        }
        // Miss: evict LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Demand miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Reset statistics (cache contents are kept — used after warm-up).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

/// Ascending-stream prefetcher, Intel-streamer style.
///
/// Streams are tracked per 4 KiB page region with a confidence counter:
/// a slot is allocated on the first demand line in a page, and only
/// after a second *ascending* line in the same region does it start
/// prefetching (then following the stream across page boundaries).
/// Random traffic inside hot pages almost never ascends consistently,
/// so it cannot create junk streams that pollute the L2 or burn memory
/// bandwidth.
#[derive(Debug, Clone)]
struct StreamTable {
    /// Page currently tracked per slot (`u64::MAX` = free).
    page: Vec<u64>,
    /// Next expected line per slot.
    next_line: Vec<u64>,
    /// Consecutive ascending matches per slot.
    confidence: Vec<u8>,
    /// Last-match stamp per slot (LRU victim selection).
    last_match: Vec<u64>,
    clock: u64,
    depth: u32,
}

/// Lines per 4 KiB tracking region.
const LINES_PER_PAGE: u64 = 64;

impl StreamTable {
    fn new(cfg: &PrefetchConfig) -> Self {
        let slots = cfg.streams.max(1) as usize;
        StreamTable {
            page: vec![u64::MAX; slots],
            next_line: vec![0; slots],
            confidence: vec![0; slots],
            last_match: vec![0; slots],
            clock: 0,
            depth: cfg.depth,
        }
    }

    /// Observe a demand line; return how many lines ahead to prefetch
    /// (0 = no confident stream match).
    fn observe(&mut self, line: u64) -> u32 {
        self.clock += 1;
        let page = line / LINES_PER_PAGE;
        for i in 0..self.page.len() {
            if self.page[i] == u64::MAX {
                continue;
            }
            let same_region = page == self.page[i] || page == self.page[i] + 1;
            if !same_region {
                continue;
            }
            self.last_match[i] = self.clock;
            if line == self.next_line[i] || line == self.next_line[i] + 1 {
                // The stream advances (one-line jitter allowed), possibly
                // into the next page.
                self.page[i] = page;
                self.next_line[i] = line + 1;
                self.confidence[i] = self.confidence[i].saturating_add(1);
                return if self.confidence[i] >= 2 {
                    self.depth
                } else {
                    0
                };
            }
            if line < self.next_line[i] {
                // Re-miss of an already-streamed line (evicted from L1 by
                // unrelated traffic): benign, leave the stream alone.
                return 0;
            }
            // Jump ahead within the region: resync without judging.
            self.next_line[i] = line + 1;
            self.page[i] = page;
            return 0;
        }
        // Allocate the least-recently-matched slot for this page.
        let victim = (0..self.page.len())
            .min_by_key(|&i| self.last_match[i])
            .expect("slots exist");
        self.page[victim] = page;
        self.next_line[victim] = line + 1;
        self.confidence[victim] = 1;
        self.last_match[victim] = self.clock;
        0
    }
}

/// Where a memory access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// First-level cache (L1-I or L1-D depending on the access).
    L1,
    /// Unified private L2.
    L2,
    /// Shared last-level cache.
    L3,
    /// Main memory.
    Memory,
}

/// The chip-shared memory system: the last-level cache plus the DRAM
/// channel every core's misses queue on.
///
/// Holds no per-core statistics — demand accesses and misses are
/// attributed by the [`PrivateHierarchy`] that issued them, the way
/// per-core PMU events attribute LLC traffic on real hardware. The
/// embedded [`Cache`]'s own counters accumulate chip-wide totals and are
/// never read by the simulation.
#[derive(Debug, Clone)]
pub struct SharedL3 {
    /// The shared last-level cache.
    pub l3: Cache,
    lat_l3: u32,
    lat_mem: u32,
    /// Minimum cycles between line transfers from memory (the channel is
    /// shared: co-running cores queue on the same slots).
    mem_line_gap: u64,
    /// Cycle at which the memory channel is next free.
    next_mem_slot: u64,
}

impl SharedL3 {
    /// Build the shared level from a machine config.
    pub fn new(cfg: &CpuConfig) -> Self {
        SharedL3 {
            l3: Cache::new(&cfg.l3),
            lat_l3: cfg.l3.latency,
            lat_mem: cfg.mem.memory,
            mem_line_gap: u64::from(cfg.mem.line_gap),
            next_mem_slot: 0,
        }
    }

    /// Whether the memory channel already has a deep backlog at `now`.
    fn channel_saturated(&self, now: u64) -> bool {
        self.next_mem_slot.saturating_sub(now) >= 4 * self.mem_line_gap
    }

    /// Charge one line transfer on the memory channel at time `now`;
    /// returns the queueing delay in cycles.
    ///
    /// The controller queue is bounded (MSHR-limited): outstanding
    /// transfers never book the channel more than a few line slots into
    /// the future, so oversubscription throttles bandwidth consumers
    /// without starving later demand requests behind an unbounded queue.
    fn charge_memory(&mut self, now: u64) -> u64 {
        let delay = self.next_mem_slot.saturating_sub(now);
        let horizon = now + 6 * self.mem_line_gap;
        self.next_mem_slot = (self.next_mem_slot.max(now) + self.mem_line_gap).min(horizon);
        delay
    }

    /// The earliest cycle at which the channel backlog has drained
    /// below the saturation threshold. Fast-forward paces its synthetic
    /// clock past this point before each op: on the detailed machine a
    /// saturated channel stalls retire, which advances time — without
    /// mirroring that feedback, the synthetic clock would sit inside a
    /// permanently-saturated channel and drop prefetches the detailed
    /// run would have issued.
    pub(crate) fn channel_relief(&self) -> u64 {
        self.next_mem_slot.saturating_sub(4 * self.mem_line_gap)
    }

    /// Re-anchor the channel backlog after a functional fast-forward
    /// burst advanced a synthetic clock to `virtual_now` while the
    /// global clock stayed at `now`: the backlog (bounded by the
    /// controller horizon) is preserved relative to the real clock, so
    /// resumed detailed execution sees neither a phantom idle channel
    /// nor bookings stranded far in the future.
    pub(crate) fn rewind_channel(&mut self, virtual_now: u64, now: u64) {
        let backlog = self.next_mem_slot.saturating_sub(virtual_now);
        self.next_mem_slot = self.next_mem_slot.min(now + backlog);
    }

    /// Reset the embedded cache's chip-wide counters, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l3.reset_stats();
    }
}

/// The structures one core owns alone: split L1s, unified L2, the L2
/// stream prefetcher, and this core's attribution counters for traffic
/// it sends to the shared level.
#[derive(Debug, Clone)]
pub struct PrivateHierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    streams: StreamTable,
    prefetch_enabled: bool,
    line_bytes: u64,
    lat_l1: u32,
    lat_l2: u32,
    /// Physical-address salt applied to every shared-L3/DRAM address:
    /// co-running tasks execute identical virtual working sets, but each
    /// process is backed by its own physical pages, so their lines index
    /// distinct L3 sets and contend for capacity instead of aliasing.
    salt: u64,
    /// Prefetch lines issued by this core.
    pub prefetches: u64,
    /// Demand L3 accesses issued by this core (its L2 demand misses).
    pub l3_accesses: u64,
    /// Demand L3 misses suffered by this core.
    pub l3_misses: u64,
}

impl PrivateHierarchy {
    /// Build one core's private hierarchy (no address salt: core 0 of a
    /// chip, or a standalone core, sees raw addresses).
    pub fn new(cfg: &CpuConfig) -> Self {
        PrivateHierarchy::with_salt(cfg, 0)
    }

    /// Build a private hierarchy whose shared-level traffic is offset by
    /// `salt` (distinct physical backing per co-running core).
    pub fn with_salt(cfg: &CpuConfig, salt: u64) -> Self {
        PrivateHierarchy {
            l1i: Cache::new(&cfg.l1i),
            l1d: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            streams: StreamTable::new(&cfg.prefetch),
            prefetch_enabled: cfg.prefetch.enabled,
            line_bytes: u64::from(cfg.l2.line_bytes),
            lat_l1: cfg.l1d.latency,
            lat_l2: cfg.l2.latency,
            salt,
            prefetches: 0,
            l3_accesses: 0,
            l3_misses: 0,
        }
    }

    #[inline]
    fn salted(&self, addr: u64) -> u64 {
        // Kernel addresses sit near the top of the address space, so the
        // offset must wrap rather than saturate.
        addr.wrapping_add(self.salt)
    }

    /// Demand L3 access with per-core attribution.
    fn l3_access(&mut self, shared: &mut SharedL3, addr: u64) -> bool {
        self.l3_accesses += 1;
        let hit = shared.l3.access(self.salted(addr));
        if !hit {
            self.l3_misses += 1;
        }
        hit
    }

    /// Instruction fetch of `addr` at cycle `now`: `(level, latency)`.
    ///
    /// On a miss, the front end's next-line prefetcher also fills
    /// `addr + line` (sequential code fetch is essentially free on real
    /// machines).
    pub fn fetch_inst(&mut self, shared: &mut SharedL3, addr: u64, now: u64) -> (MemLevel, u32) {
        if self.l1i.access(addr) {
            return (MemLevel::L1, 0); // hit latency hidden by pipelining
        }
        let out = self.beyond_l1(shared, addr, now);
        if self.prefetch_enabled {
            let next = addr + self.line_bytes;
            let next_salted = self.salted(next);
            if shared.l3.probe(next_salted) || !shared.channel_saturated(now) {
                self.prefetches += 1;
                if !shared.l3.probe(next_salted) {
                    shared.charge_memory(now);
                }
                self.l1i.fill(next);
                self.l2.fill(next);
                shared.l3.fill(next_salted);
            }
        }
        out
    }

    /// Data access of `addr` at cycle `now` (loads and store-drains):
    /// `(level, latency)`.
    pub fn access_data(&mut self, shared: &mut SharedL3, addr: u64, now: u64) -> (MemLevel, u32) {
        if self.l1d.access(addr) {
            return (MemLevel::L1, self.lat_l1);
        }
        let (lvl, lat) = self.beyond_l1(shared, addr, now);
        (lvl, lat + self.lat_l1)
    }

    fn beyond_l1(&mut self, shared: &mut SharedL3, addr: u64, now: u64) -> (MemLevel, u32) {
        let line = addr / self.line_bytes;
        let l2_hit = self.l2.access(addr);
        if self.prefetch_enabled {
            let ahead = self.streams.observe(line);
            for i in 1..=ahead {
                let pf = addr + u64::from(i) * self.line_bytes;
                // Prefetches are dropped when the memory channel is
                // saturated: demand requests keep priority, so heavy
                // streams degrade to demand misses once bandwidth-bound.
                if !shared.l3.probe(self.salted(pf)) {
                    if shared.channel_saturated(now) {
                        continue;
                    }
                    shared.charge_memory(now);
                }
                self.prefetches += 1;
                self.l2.fill(pf);
                shared.l3.fill(self.salted(pf));
            }
        }
        if l2_hit {
            return (MemLevel::L2, self.lat_l2);
        }
        if self.l3_access(shared, addr) {
            return (MemLevel::L3, shared.lat_l3);
        }
        let queue = shared.charge_memory(now);
        (MemLevel::Memory, shared.lat_mem + queue as u32)
    }

    /// Reset this core's statistics (after warm-up), keeping contents.
    /// The shared level is untouched: other cores' warm-up boundaries
    /// are their own.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.prefetches = 0;
        self.l3_accesses = 0;
        self.l3_misses = 0;
    }
}

/// Three-level hierarchy for a standalone core: one private hierarchy
/// composed with its own (uncontended) shared level.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// The core-private structures (L1s, L2, prefetcher, attribution).
    pub private: PrivateHierarchy,
    /// The L3 + DRAM channel, exclusive to this core here.
    pub shared: SharedL3,
}

impl Hierarchy {
    /// Build the hierarchy from a machine config.
    pub fn new(cfg: &CpuConfig) -> Self {
        Hierarchy {
            private: PrivateHierarchy::new(cfg),
            shared: SharedL3::new(cfg),
        }
    }

    /// Instruction fetch of `addr` at cycle `now`: `(level, latency)`.
    pub fn fetch_inst(&mut self, addr: u64, now: u64) -> (MemLevel, u32) {
        self.private.fetch_inst(&mut self.shared, addr, now)
    }

    /// Data access of `addr` at cycle `now` (loads and store-drains):
    /// `(level, latency)`.
    pub fn access_data(&mut self, addr: u64, now: u64) -> (MemLevel, u32) {
        self.private.access_data(&mut self.shared, addr, now)
    }

    /// Reset all statistics (after warm-up), keeping contents.
    pub fn reset_stats(&mut self) {
        self.private.reset_stats();
        self.shared.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    fn tiny() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        }
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(&tiny());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x108)); // same line
        assert_eq!(c.accesses, 3);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1024B / 64B / 2-way = 8 sets. Lines mapping to set 0: 0, 8, 16…
        let mut c = Cache::new(&tiny());
        let line = |i: u64| i * 8 * 64; // all map to set 0
        assert!(!c.access(line(0)));
        assert!(!c.access(line(1)));
        assert!(c.access(line(0))); // refresh 0; LRU is 1
        assert!(!c.access(line(2))); // evicts 1
        assert!(c.access(line(0)));
        assert!(!c.access(line(1))); // 1 was evicted
    }

    #[test]
    fn fill_does_not_count_stats() {
        let mut c = Cache::new(&tiny());
        c.fill(0x40);
        assert_eq!(c.accesses, 0);
        assert!(c.access(0x40));
        assert_eq!(c.misses, 0);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let c0 = Cache::new(&tiny());
        assert!(!c0.probe(0x40));
        let mut c = Cache::new(&tiny());
        c.access(0x40);
        assert!(c.probe(0x40));
        assert_eq!(c.accesses, 1);
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = Cache::new(&tiny());
        // 64 distinct lines (4 KiB) round-robin in a 1 KiB cache.
        for round in 0..10 {
            for i in 0..64u64 {
                let hit = c.access(i * 64);
                if round > 0 {
                    assert!(!hit, "capacity thrash must keep missing");
                }
            }
        }
        assert!(c.miss_ratio() > 0.99);
    }

    #[test]
    fn hierarchy_miss_path_and_inclusion() {
        let mut h = Hierarchy::new(&CpuConfig::westmere_e5645().with_prefetch(false));
        let (lvl, lat) = h.access_data(0x1234_5678, 0);
        assert_eq!(lvl, MemLevel::Memory);
        assert!(lat >= 200);
        let (lvl2, _) = h.access_data(0x1234_5678, 0);
        assert_eq!(lvl2, MemLevel::L1);
    }

    #[test]
    fn l2_feeds_l1_misses() {
        let mut h = Hierarchy::new(&CpuConfig::westmere_e5645().with_prefetch(false));
        // Touch 64 KiB of lines: fits L2 (256K) not L1D (32K).
        for i in 0..1024u64 {
            h.access_data(i * 64, 0);
        }
        let (l1_misses, l2_misses) = (h.private.l1d.misses, h.private.l2.misses);
        // Second sweep: L1 thrash continues, L2 absorbs everything.
        for i in 0..1024u64 {
            h.access_data(i * 64, 0);
        }
        assert!(h.private.l1d.misses > l1_misses, "L1 keeps missing");
        assert_eq!(h.private.l2.misses, l2_misses, "L2 fully captures the set");
    }

    #[test]
    fn prefetcher_hides_streaming_l2_misses() {
        let mut on = Hierarchy::new(&CpuConfig::westmere_e5645());
        let mut off = Hierarchy::new(&CpuConfig::westmere_e5645().with_prefetch(false));
        for i in 0..200_000u64 {
            let a = i * 64; // pure ascending stream, 12.8 MB > L3
                            // One line every ~40 cycles: within channel bandwidth.
            on.access_data(a, i * 40);
            off.access_data(a, i * 40);
        }
        assert!(on.private.prefetches > 0);
        assert!(
            (on.private.l2.misses as f64) < 0.25 * off.private.l2.misses as f64,
            "streamer should absorb most sequential demand misses: on={} off={}",
            on.private.l2.misses,
            off.private.l2.misses
        );
    }

    #[test]
    fn prefetcher_ignores_random_streams() {
        let mut h = Hierarchy::new(&CpuConfig::westmere_e5645());
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.access_data((x >> 16) % (256 << 20), 0);
        }
        // Random traffic should not trigger meaningful prefetching.
        assert!(
            h.private.prefetches < 5_000,
            "prefetches={}",
            h.private.prefetches
        );
    }

    #[test]
    fn fetch_inst_uses_l1i() {
        let mut h = Hierarchy::new(&CpuConfig::westmere_e5645());
        h.fetch_inst(0x40_0000, 0);
        assert_eq!(h.private.l1i.accesses, 1);
        assert_eq!(h.private.l1d.accesses, 0);
        let (lvl, lat) = h.fetch_inst(0x40_0000, 0);
        assert_eq!(lvl, MemLevel::L1);
        assert_eq!(lat, 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = Hierarchy::new(&CpuConfig::westmere_e5645());
        h.access_data(0x8000, 0);
        h.reset_stats();
        assert_eq!(h.private.l1d.accesses, 0);
        let (lvl, _) = h.access_data(0x8000, 0);
        assert_eq!(lvl, MemLevel::L1, "contents preserved across reset");
    }
}
