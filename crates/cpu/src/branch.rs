//! Branch prediction: gshare direction predictor + branch target buffer.
//!
//! The paper's Figure 12 reports misprediction ratios and concludes that
//! data-analysis branch behaviour is regular enough that "a simpler
//! branch predictor may be preferred". We model a gshare predictor with
//! configurable history length (`history_bits == 0` degenerates to a
//! static not-taken predictor, the simplest possible design, used by the
//! predictor ablation bench).

use crate::config::CpuConfig;

/// Tournament predictor (bimodal + gshare with a per-PC chooser) + BTB.
///
/// The bimodal side captures strongly-biased branches regardless of
/// history interleaving (the dominant population in datacenter code);
/// the gshare side captures history-correlated patterns; the chooser
/// learns which component to trust per branch. `history_bits == 0`
/// degenerates to static not-taken.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// Per-PC 2-bit counters.
    bimodal: Vec<u8>,
    /// History-indexed 2-bit counters.
    gshare: Vec<u8>,
    /// Per-PC 2-bit chooser: >=2 trusts gshare.
    chooser: Vec<u8>,
    history: u64,
    history_mask: u64,
    table_mask: u64,
    /// BTB: tag + target per entry, direct-mapped.
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    /// Predicted branches.
    pub branches: u64,
    /// Direction mispredictions.
    pub mispredicts: u64,
    /// Branches whose target was present in the BTB.
    pub btb_hits: u64,
}

impl BranchPredictor {
    /// Build from a machine config. Tables hold `2^max(history_bits+4,16)`
    /// entries so per-PC state does not alias destructively across large
    /// static branch working sets.
    pub fn new(cfg: &CpuConfig) -> Self {
        let hist_bits = cfg.predictor_history_bits.min(20);
        let table_bits = (hist_bits + 4).clamp(16, 22);
        let table = if hist_bits == 0 {
            1
        } else {
            1usize << table_bits
        };
        let btb = cfg.btb_entries.next_power_of_two().max(2) as usize;
        BranchPredictor {
            bimodal: vec![1; table],
            gshare: vec![1; table],
            chooser: vec![1; table], // start trusting bimodal
            history: 0,
            history_mask: if hist_bits == 0 {
                0
            } else {
                (1u64 << hist_bits) - 1
            },
            table_mask: (table as u64) - 1,
            btb_tags: vec![u64::MAX; btb],
            btb_targets: vec![0; btb],
            branches: 0,
            mispredicts: 0,
            btb_hits: 0,
        }
    }

    #[inline]
    fn pc_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.table_mask) as usize
    }

    #[inline]
    fn gshare_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (self.history << 4)) & self.table_mask) as usize
    }

    /// Predict and train on one branch; returns `true` if the prediction
    /// (direction *and* target when taken) was correct.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.branches += 1;
        let static_nt = self.history_mask == 0;
        let pi = self.pc_index(pc);
        let gi = self.gshare_index(pc);
        let bim_taken = self.bimodal[pi] >= 2;
        let gsh_taken = self.gshare[gi] >= 2;
        let predicted_taken = if static_nt {
            false
        } else if self.chooser[pi] >= 2 {
            gsh_taken
        } else {
            bim_taken
        };

        // Only *direction* mispredicts count (and trigger redirects):
        // direct-branch targets are recomputed at decode on a BTB miss at
        // negligible cost, so hardware BR_MISP counters don't see them.
        // The BTB is still maintained for the `btb_hit_ratio` statistic.
        let btb_idx = ((pc >> 2) as usize) & (self.btb_tags.len() - 1);
        if self.btb_tags[btb_idx] == pc && self.btb_targets[btb_idx] == target {
            self.btb_hits += 1;
        }

        let correct = predicted_taken == taken;
        if !correct {
            self.mispredicts += 1;
        }

        // Train direction tables and the chooser.
        if !static_nt {
            let up = |c: &mut u8| *c = (*c + 1).min(3);
            let down = |c: &mut u8| *c = c.saturating_sub(1);
            if taken {
                up(&mut self.bimodal[pi]);
                up(&mut self.gshare[gi]);
            } else {
                down(&mut self.bimodal[pi]);
                down(&mut self.gshare[gi]);
            }
            if bim_taken != gsh_taken {
                if gsh_taken == taken {
                    up(&mut self.chooser[pi]);
                } else {
                    down(&mut self.chooser[pi]);
                }
            }
            self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        }
        if taken {
            self.btb_tags[btb_idx] = pc;
            self.btb_targets[btb_idx] = target;
        }
        correct
    }

    /// Misprediction ratio so far.
    pub fn misprediction_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// BTB target hit ratio so far.
    pub fn btb_hit_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.btb_hits as f64 / self.branches as f64
        }
    }

    /// Reset statistics, keeping learned state (post-warm-up).
    pub fn reset_stats(&mut self) {
        self.branches = 0;
        self.mispredicts = 0;
        self.btb_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(&CpuConfig::westmere_e5645())
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut p = predictor();
        for _ in 0..1000 {
            p.predict_and_train(0x400, true, 0x800);
        }
        assert!(
            p.misprediction_ratio() < 0.02,
            "ratio={}",
            p.misprediction_ratio()
        );
    }

    #[test]
    fn learns_never_taken_branch() {
        let mut p = predictor();
        for _ in 0..1000 {
            p.predict_and_train(0x400, false, 0);
        }
        assert!(p.misprediction_ratio() < 0.01);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = predictor();
        let mut toggle = false;
        for _ in 0..4000 {
            toggle = !toggle;
            p.predict_and_train(0x400, toggle, 0x800);
        }
        // gshare captures strict alternation after warm-up.
        p.reset_stats();
        for _ in 0..4000 {
            toggle = !toggle;
            p.predict_and_train(0x400, toggle, 0x800);
        }
        assert!(
            p.misprediction_ratio() < 0.05,
            "ratio={}",
            p.misprediction_ratio()
        );
    }

    #[test]
    fn random_branches_mispredict_heavily() {
        let mut p = predictor();
        let mut x = 777u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.predict_and_train(0x400, (x >> 33) & 1 == 1, 0x800);
        }
        assert!(
            p.misprediction_ratio() > 0.35,
            "ratio={}",
            p.misprediction_ratio()
        );
    }

    #[test]
    fn btb_tracks_targets() {
        let mut p = predictor();
        for _ in 0..100 {
            p.predict_and_train(0x400, true, 0x800);
        }
        assert!(p.btb_hit_ratio() > 0.9);
        p.reset_stats();
        // Same direction, new target: direction still predicted, BTB cold.
        p.predict_and_train(0x400, true, 0xC00);
        assert_eq!(p.mispredicts, 0);
        assert_eq!(p.btb_hits, 0);
    }

    #[test]
    fn static_not_taken_predictor() {
        let mut p = BranchPredictor::new(&CpuConfig::westmere_e5645().with_predictor_bits(0));
        for _ in 0..100 {
            p.predict_and_train(0x10, false, 0);
        }
        assert_eq!(p.mispredicts, 0);
        for _ in 0..100 {
            p.predict_and_train(0x20, true, 0x40);
        }
        assert_eq!(
            p.mispredicts, 100,
            "static NT mispredicts every taken branch"
        );
    }

    #[test]
    fn biased_branches_mostly_predicted() {
        let mut p = predictor();
        let mut x = 9u64;
        for i in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // 95 % taken bias across 64 static branches.
            let pc = 0x1000 + (i % 64) * 4;
            let taken = (x >> 40) % 100 < 95;
            p.predict_and_train(pc, taken, pc + 0x100);
        }
        let r = p.misprediction_ratio();
        assert!(r < 0.15, "ratio={r}");
    }
}
