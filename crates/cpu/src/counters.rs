//! Performance-counter state: every event the paper reads, in raw form.
//!
//! `dc-perfmon` layers the MSR/event-select interface and derived metrics
//! on top; this struct is what the core fills in during simulation.

/// Raw event counts collected by one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounts {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Retired µops (instructions in the paper's PKI denominators).
    pub instructions: u64,
    /// Retired user-mode µops.
    pub user_instructions: u64,
    /// Retired kernel-mode µops.
    pub kernel_instructions: u64,

    /// Cycles rename made zero progress because the decode queue was
    /// empty (front-end / instruction-fetch stall).
    pub fetch_stall_cycles: u64,
    /// Cycles rename was blocked by a RAT hazard.
    pub rat_stall_cycles: u64,
    /// Cycles rename was blocked because the RS was full.
    pub rs_full_stall_cycles: u64,
    /// Cycles rename was blocked because the ROB was full.
    pub rob_full_stall_cycles: u64,
    /// Cycles rename was blocked because the load buffer was full.
    pub load_buf_stall_cycles: u64,
    /// Cycles rename was blocked because the store buffer was full.
    pub store_buf_stall_cycles: u64,

    /// L1-I demand accesses.
    pub l1i_accesses: u64,
    /// L1-I demand misses.
    pub l1i_misses: u64,
    /// ITLB translations.
    pub itlb_accesses: u64,
    /// ITLB first-level misses.
    pub itlb_misses: u64,
    /// Completed page walks caused by ITLB misses.
    pub itlb_walks: u64,

    /// L1-D demand accesses.
    pub l1d_accesses: u64,
    /// L1-D demand misses.
    pub l1d_misses: u64,
    /// DTLB translations.
    pub dtlb_accesses: u64,
    /// DTLB first-level misses.
    pub dtlb_misses: u64,
    /// Completed page walks caused by DTLB misses.
    pub dtlb_walks: u64,

    /// Unified L2 demand accesses.
    pub l2_accesses: u64,
    /// Unified L2 demand misses.
    pub l2_misses: u64,
    /// L3 demand accesses.
    pub l3_accesses: u64,
    /// L3 demand misses.
    pub l3_misses: u64,
    /// Prefetch lines issued by the L2 streamer.
    pub prefetches: u64,

    /// Retired branch instructions.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,

    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
}

impl PerfCounts {
    /// Add every event from `other` into `self` (chip-level
    /// aggregation across cores; `cycles` sums like the rest, so
    /// divide by the core count for wall-clock-style cycle figures).
    pub fn accumulate(&mut self, other: &PerfCounts) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.user_instructions += other.user_instructions;
        self.kernel_instructions += other.kernel_instructions;
        self.fetch_stall_cycles += other.fetch_stall_cycles;
        self.rat_stall_cycles += other.rat_stall_cycles;
        self.rs_full_stall_cycles += other.rs_full_stall_cycles;
        self.rob_full_stall_cycles += other.rob_full_stall_cycles;
        self.load_buf_stall_cycles += other.load_buf_stall_cycles;
        self.store_buf_stall_cycles += other.store_buf_stall_cycles;
        self.l1i_accesses += other.l1i_accesses;
        self.l1i_misses += other.l1i_misses;
        self.itlb_accesses += other.itlb_accesses;
        self.itlb_misses += other.itlb_misses;
        self.itlb_walks += other.itlb_walks;
        self.l1d_accesses += other.l1d_accesses;
        self.l1d_misses += other.l1d_misses;
        self.dtlb_accesses += other.dtlb_accesses;
        self.dtlb_misses += other.dtlb_misses;
        self.dtlb_walks += other.dtlb_walks;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.l3_accesses += other.l3_accesses;
        self.l3_misses += other.l3_misses;
        self.prefetches += other.prefetches;
        self.branches += other.branches;
        self.branch_mispredicts += other.branch_mispredicts;
        self.loads += other.loads;
        self.stores += other.stores;
    }

    /// Event-wise difference `self - earlier`, for interval sampling:
    /// `earlier` is a snapshot of the same monotonically counting block
    /// taken previously, so every field of `self` is `>=` its
    /// counterpart. Deltas over consecutive snapshots telescope —
    /// summing them with [`PerfCounts::accumulate`] reproduces the
    /// final block bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds
    /// `self`'s (i.e. the arguments are not snapshots of one run in
    /// chronological order).
    pub fn delta_since(&self, earlier: &PerfCounts) -> PerfCounts {
        PerfCounts {
            cycles: self.cycles - earlier.cycles,
            instructions: self.instructions - earlier.instructions,
            user_instructions: self.user_instructions - earlier.user_instructions,
            kernel_instructions: self.kernel_instructions - earlier.kernel_instructions,
            fetch_stall_cycles: self.fetch_stall_cycles - earlier.fetch_stall_cycles,
            rat_stall_cycles: self.rat_stall_cycles - earlier.rat_stall_cycles,
            rs_full_stall_cycles: self.rs_full_stall_cycles - earlier.rs_full_stall_cycles,
            rob_full_stall_cycles: self.rob_full_stall_cycles - earlier.rob_full_stall_cycles,
            load_buf_stall_cycles: self.load_buf_stall_cycles - earlier.load_buf_stall_cycles,
            store_buf_stall_cycles: self.store_buf_stall_cycles - earlier.store_buf_stall_cycles,
            l1i_accesses: self.l1i_accesses - earlier.l1i_accesses,
            l1i_misses: self.l1i_misses - earlier.l1i_misses,
            itlb_accesses: self.itlb_accesses - earlier.itlb_accesses,
            itlb_misses: self.itlb_misses - earlier.itlb_misses,
            itlb_walks: self.itlb_walks - earlier.itlb_walks,
            l1d_accesses: self.l1d_accesses - earlier.l1d_accesses,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            dtlb_accesses: self.dtlb_accesses - earlier.dtlb_accesses,
            dtlb_misses: self.dtlb_misses - earlier.dtlb_misses,
            dtlb_walks: self.dtlb_walks - earlier.dtlb_walks,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l3_accesses: self.l3_accesses - earlier.l3_accesses,
            l3_misses: self.l3_misses - earlier.l3_misses,
            prefetches: self.prefetches - earlier.prefetches,
            branches: self.branches - earlier.branches,
            branch_mispredicts: self.branch_mispredicts - earlier.branch_mispredicts,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    fn pki(&self, count: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L1 instruction-cache misses per thousand instructions (Figure 7).
    pub fn l1i_mpki(&self) -> f64 {
        self.pki(self.l1i_misses)
    }

    /// ITLB-miss-caused completed page walks per thousand instructions
    /// (Figure 8).
    pub fn itlb_walk_pki(&self) -> f64 {
        self.pki(self.itlb_walks)
    }

    /// L2 misses per thousand instructions (Figure 9).
    pub fn l2_mpki(&self) -> f64 {
        self.pki(self.l2_misses)
    }

    /// L3 misses per thousand instructions (the shared-cache pressure
    /// metric of Exhibit CO; rises as co-runners contend for the L3).
    pub fn l3_mpki(&self) -> f64 {
        self.pki(self.l3_misses)
    }

    /// Branch mispredictions per thousand instructions (the
    /// phase-exhibit series; the per-branch ratio is
    /// [`PerfCounts::branch_misprediction_ratio`]).
    pub fn branch_mpki(&self) -> f64 {
        self.pki(self.branch_mispredicts)
    }

    /// Ratio of L2 misses satisfied by the L3 (Figure 10, Equation 1).
    pub fn l3_hit_ratio_of_l2_misses(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            (self.l2_misses.saturating_sub(self.l3_misses)) as f64 / self.l2_misses as f64
        }
    }

    /// DTLB-miss-caused completed page walks per thousand instructions
    /// (Figure 11).
    pub fn dtlb_walk_pki(&self) -> f64 {
        self.pki(self.dtlb_walks)
    }

    /// Branch misprediction ratio (Figure 12).
    pub fn branch_misprediction_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Kernel-mode instruction fraction (Figure 4).
    pub fn kernel_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.kernel_instructions as f64 / self.instructions as f64
        }
    }

    /// Total attributed stall cycles (the paper's normalization base for
    /// Figure 6).
    pub fn total_stall_cycles(&self) -> u64 {
        self.fetch_stall_cycles
            + self.rat_stall_cycles
            + self.rs_full_stall_cycles
            + self.rob_full_stall_cycles
            + self.load_buf_stall_cycles
            + self.store_buf_stall_cycles
    }

    /// Normalized stall breakdown in the paper's Figure 6 order:
    /// `[fetch, rat, load, rs, store, rob]`. Sums to 1 when any stalls
    /// occurred.
    pub fn stall_breakdown(&self) -> [f64; 6] {
        let total = self.total_stall_cycles();
        if total == 0 {
            return [0.0; 6];
        }
        let t = total as f64;
        [
            self.fetch_stall_cycles as f64 / t,
            self.rat_stall_cycles as f64 / t,
            self.load_buf_stall_cycles as f64 / t,
            self.rs_full_stall_cycles as f64 / t,
            self.store_buf_stall_cycles as f64 / t,
            self.rob_full_stall_cycles as f64 / t,
        ]
    }

    /// Share of stalls occurring in the out-of-order part of the pipeline
    /// (RS + ROB + load + store buffers) — the paper's headline contrast
    /// between data-analysis (≈57 %) and service (≈27 %) workloads.
    pub fn ooo_stall_share(&self) -> f64 {
        let total = self.total_stall_cycles();
        if total == 0 {
            return 0.0;
        }
        (self.rs_full_stall_cycles
            + self.rob_full_stall_cycles
            + self.load_buf_stall_cycles
            + self.store_buf_stall_cycles) as f64
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfCounts {
        PerfCounts {
            cycles: 2000,
            instructions: 1000,
            user_instructions: 900,
            kernel_instructions: 100,
            fetch_stall_cycles: 100,
            rat_stall_cycles: 50,
            rs_full_stall_cycles: 200,
            rob_full_stall_cycles: 100,
            load_buf_stall_cycles: 30,
            store_buf_stall_cycles: 20,
            l1i_misses: 23,
            l2_misses: 11,
            l3_misses: 2,
            itlb_walks: 1,
            dtlb_walks: 3,
            branches: 160,
            branch_mispredicts: 4,
            ..PerfCounts::default()
        }
    }

    #[test]
    fn derived_ratios() {
        let c = sample();
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.cpi() - 2.0).abs() < 1e-12);
        assert!((c.l1i_mpki() - 23.0).abs() < 1e-12);
        assert!((c.l2_mpki() - 11.0).abs() < 1e-12);
        assert!((c.l3_hit_ratio_of_l2_misses() - 9.0 / 11.0).abs() < 1e-12);
        assert!((c.dtlb_walk_pki() - 3.0).abs() < 1e-12);
        assert!((c.itlb_walk_pki() - 1.0).abs() < 1e-12);
        assert!((c.branch_misprediction_ratio() - 0.025).abs() < 1e-12);
        assert!((c.kernel_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn stall_breakdown_sums_to_one() {
        let c = sample();
        let b = c.stall_breakdown();
        let sum: f64 = b.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((c.ooo_stall_share() - 350.0 / 500.0).abs() < 1e-12);
    }

    /// Every field nonzero and distinct, written as a full struct
    /// literal (no `..Default::default()`): adding a counter field
    /// without teaching `accumulate`/`delta_since` about it fails to
    /// compile here.
    fn every_field() -> PerfCounts {
        PerfCounts {
            cycles: 1,
            instructions: 2,
            user_instructions: 3,
            kernel_instructions: 4,
            fetch_stall_cycles: 5,
            rat_stall_cycles: 6,
            rs_full_stall_cycles: 7,
            rob_full_stall_cycles: 8,
            load_buf_stall_cycles: 9,
            store_buf_stall_cycles: 10,
            l1i_accesses: 11,
            l1i_misses: 12,
            itlb_accesses: 13,
            itlb_misses: 14,
            itlb_walks: 15,
            l1d_accesses: 16,
            l1d_misses: 17,
            dtlb_accesses: 18,
            dtlb_misses: 19,
            dtlb_walks: 20,
            l2_accesses: 21,
            l2_misses: 22,
            l3_accesses: 23,
            l3_misses: 24,
            prefetches: 25,
            branches: 26,
            branch_mispredicts: 27,
            loads: 28,
            stores: 29,
        }
    }

    #[test]
    fn delta_since_inverts_accumulate_on_every_field() {
        let earlier = sample();
        let step = every_field();
        let mut later = earlier;
        later.accumulate(&step);
        assert_eq!(later.delta_since(&earlier), step);
        assert_eq!(later.delta_since(&later), PerfCounts::default());
        // And deltas re-accumulate to the final block (telescoping).
        let mut rebuilt = earlier;
        rebuilt.accumulate(&later.delta_since(&earlier));
        assert_eq!(rebuilt, later);
    }

    #[test]
    fn branch_mpki_is_mispredicts_per_kilo_instruction() {
        let c = PerfCounts {
            instructions: 4000,
            branch_mispredicts: 6,
            ..PerfCounts::default()
        };
        assert!((c.branch_mpki() - 1.5).abs() < 1e-12);
        assert_eq!(PerfCounts::default().branch_mpki(), 0.0);
    }

    #[test]
    fn zero_counts_are_safe() {
        let c = PerfCounts::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.cpi(), 0.0);
        assert_eq!(c.l1i_mpki(), 0.0);
        assert_eq!(c.l3_hit_ratio_of_l2_misses(), 0.0);
        assert_eq!(c.branch_misprediction_ratio(), 0.0);
        assert_eq!(c.stall_breakdown(), [0.0; 6]);
        assert_eq!(c.ooo_stall_share(), 0.0);
    }
}
