//! Interval PMU sampling: counter snapshots every N simulated cycles.
//!
//! The paper's methodology is `perf stat` over a whole run — one
//! aggregate block per workload. Its successor work (Jia et al., 2015)
//! stresses that data-analysis workloads move through *phases* (map,
//! shuffle, reduce; scan vs. aggregate) with distinct micro-
//! architectural behavior, the thing `perf stat -I <ms>` shows on real
//! hardware. This module is the simulated equivalent: while a
//! [`Pipeline`] runs, a [`Sampler`] snapshots the counter block every
//! `every_cycles` simulated cycles and keeps the per-interval *deltas*.
//!
//! Two invariants make the series trustworthy:
//!
//! * **Observation only.** Sampling reads pipeline/hierarchy statistics
//!   and never writes simulator state, so a sampled run's aggregate is
//!   bit-identical to the unsampled run of the same trace.
//! * **Telescoping.** Interval `k`'s delta is `snapshot(k) −
//!   snapshot(k−1)`; the final partial interval tops the series up to
//!   the aggregate. Accumulating every delta therefore reproduces the
//!   aggregate **exactly**, field for field — there is no second
//!   accounting path that could drift.
//!
//! Timestamps (`start_cycle`/`end_cycle`) are **simulated cycles
//! relative to the warm-up boundary** — the measured window's own
//! clock, never wall time — so the series is deterministic for a given
//! (trace, config, window, seed).
//!
//! [`Pipeline`]: crate::core::Pipeline

use crate::branch::BranchPredictor;
use crate::cache::PrivateHierarchy;
use crate::core::Pipeline;
use crate::counters::PerfCounts;
use crate::tlb::Mmu;

/// One interval of a sampled run: the counter *deltas* accumulated in
/// `start_cycle..end_cycle` (cycles since the warm-up boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSample {
    /// Position in the series (0-based).
    pub index: usize,
    /// Measured-window cycle at which the interval opened.
    pub start_cycle: u64,
    /// Measured-window cycle at which the interval closed.
    pub end_cycle: u64,
    /// Events observed within the interval (deltas, not cumulative).
    pub counts: PerfCounts,
}

/// The result of a sampled simulation: the per-interval series plus
/// the aggregate block (bit-identical to the unsampled run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledRun {
    /// The sampling period, in simulated cycles.
    pub every_cycles: u64,
    /// Whole-window counters, exactly as the unsampled run reports.
    pub aggregate: PerfCounts,
    /// Per-interval deltas; the last interval is usually partial.
    pub samples: Vec<IntervalSample>,
}

impl SampledRun {
    /// Accumulate every interval delta: equals
    /// [`SampledRun::aggregate`] bit-for-bit, by construction.
    pub fn summed(&self) -> PerfCounts {
        let mut total = PerfCounts::default();
        for s in &self.samples {
            total.accumulate(&s.counts);
        }
        total
    }
}

/// Drives interval collection for one pipeline. The caller steps the
/// pipeline; the sampler only reads.
#[derive(Debug)]
pub(crate) struct Sampler {
    every: u64,
    /// Next *global* cycle to snapshot at.
    next_at: u64,
    /// The previous snapshot (cumulative), the subtrahend of the next
    /// delta. Its `cycles` field doubles as the interval start.
    prev: PerfCounts,
    samples: Vec<IntervalSample>,
}

impl Sampler {
    pub(crate) fn new(every_cycles: u64) -> Self {
        assert!(every_cycles > 0, "sampling interval must be positive");
        Sampler {
            every: every_cycles,
            next_at: every_cycles,
            prev: PerfCounts::default(),
            samples: Vec::new(),
        }
    }

    /// Next global cycle at which a snapshot fires; idle skipping is
    /// fenced here so every interval closes at exactly the cycle the
    /// per-cycle loop would close it.
    pub(crate) fn next_at(&self) -> u64 {
        self.next_at
    }

    /// The pipeline crossed its warm-up boundary at global cycle
    /// `cycle_base` and reset its statistics: drop warm-up samples and
    /// restart the interval clock at the boundary.
    pub(crate) fn rearm(&mut self, cycle_base: u64) {
        self.samples.clear();
        self.prev = PerfCounts::default();
        self.next_at = cycle_base.saturating_add(self.every);
    }

    /// Called once per (not-done) cycle after the pipeline stepped;
    /// snapshots when the global clock reaches the next boundary.
    pub(crate) fn observe(
        &mut self,
        cycle: u64,
        pipe: &Pipeline,
        hier: &PrivateHierarchy,
        mmu: &Mmu,
        bp: &BranchPredictor,
    ) {
        if cycle < self.next_at {
            return;
        }
        let snap = pipe.snapshot(cycle, hier, mmu, bp);
        self.push_delta(snap);
        self.next_at = self.next_at.saturating_add(self.every);
    }

    /// Close the series with the final (usually partial) interval up
    /// to the aggregate block, and return the samples.
    pub(crate) fn finish(mut self, aggregate: PerfCounts) -> Vec<IntervalSample> {
        if self.samples.is_empty() || aggregate != self.prev {
            self.push_delta(aggregate);
        }
        self.samples
    }

    fn push_delta(&mut self, snap: PerfCounts) {
        let counts = snap.delta_since(&self.prev);
        self.samples.push(IntervalSample {
            index: self.samples.len(),
            start_cycle: self.prev.cycles,
            end_cycle: snap.cycles,
            counts,
        });
        self.prev = snap;
    }
}

#[cfg(test)]
mod tests {
    use crate::chip::Chip;
    use crate::config::CpuConfig;
    use crate::core::{Core, SimOptions};
    use dc_trace::profile::{AccessPattern, WorkloadProfile};
    use dc_trace::SyntheticTrace;

    fn profile() -> WorkloadProfile {
        WorkloadProfile::builder("sampled")
            .region(4 << 20, 1.0, AccessPattern::Random)
            .build()
            .expect("valid test profile")
    }

    fn opts() -> SimOptions {
        SimOptions::exact(60_000, 10_000)
    }

    #[test]
    fn deltas_sum_to_aggregate_bit_for_bit() {
        let cfg = CpuConfig::westmere_e5645();
        let run = Core::new(cfg).run_sampled(SyntheticTrace::new(&profile(), 7), &opts(), 10_000);
        assert!(
            run.samples.len() > 1,
            "window should span several intervals"
        );
        assert_eq!(run.summed(), run.aggregate);
    }

    #[test]
    fn sampling_does_not_perturb_the_aggregate() {
        let cfg = CpuConfig::westmere_e5645();
        let plain = Core::new(cfg.clone()).run(SyntheticTrace::new(&profile(), 7), &opts());
        for every in [1, 977, 10_000, u64::MAX] {
            let sampled = Core::new(cfg.clone()).run_sampled(
                SyntheticTrace::new(&profile(), 7),
                &opts(),
                every,
            );
            assert_eq!(sampled.aggregate, plain, "every={every}");
            assert_eq!(sampled.summed(), plain, "every={every}");
        }
    }

    #[test]
    fn intervals_are_contiguous_and_cover_the_window() {
        let cfg = CpuConfig::westmere_e5645();
        let run = Core::new(cfg).run_sampled(SyntheticTrace::new(&profile(), 3), &opts(), 7_500);
        assert_eq!(run.samples[0].start_cycle, 0);
        for w in run.samples.windows(2) {
            assert_eq!(w[0].end_cycle, w[1].start_cycle);
        }
        for (i, s) in run.samples.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.counts.cycles, s.end_cycle - s.start_cycle);
            assert!(s.end_cycle > s.start_cycle);
        }
        let last = run.samples.last().expect("nonempty");
        assert_eq!(last.end_cycle, run.aggregate.cycles);
        // Full interior intervals span exactly the sampling period.
        for s in &run.samples[..run.samples.len() - 1] {
            assert_eq!(s.counts.cycles, 7_500);
        }
    }

    #[test]
    fn oversized_interval_yields_one_sample() {
        let cfg = CpuConfig::westmere_e5645();
        let run = Core::new(cfg).run_sampled(SyntheticTrace::new(&profile(), 5), &opts(), u64::MAX);
        assert_eq!(run.samples.len(), 1);
        assert_eq!(run.samples[0].counts, run.aggregate);
        assert_eq!(run.samples[0].start_cycle, 0);
        assert_eq!(run.samples[0].end_cycle, run.aggregate.cycles);
    }

    #[test]
    fn trace_draining_inside_warmup_still_telescopes() {
        let cfg = CpuConfig::westmere_e5645();
        let short = SimOptions::exact(1_000_000, 1_000_000);
        let run = Core::new(cfg.clone()).run_sampled(
            SyntheticTrace::new(&profile(), 9).take(20_000),
            &short,
            5_000,
        );
        let plain = Core::new(cfg).run(SyntheticTrace::new(&profile(), 9).take(20_000), &short);
        assert_eq!(run.aggregate, plain);
        assert_eq!(run.summed(), run.aggregate);
        assert!(run.samples.len() > 1);
    }

    #[test]
    fn chip_sampling_matches_chip_run_per_core() {
        let cfg = CpuConfig::westmere_e5645();
        let traces = |n: u64| {
            (0..n)
                .map(|k| SyntheticTrace::new(&profile(), 11 + k))
                .collect::<Vec<_>>()
        };
        let plain = Chip::new(cfg.clone(), 3).run(traces(3), &opts());
        let sampled = Chip::new(cfg.clone(), 3).run_sampled(traces(3), &opts(), 9_000);
        assert_eq!(sampled.len(), 3);
        for (core, (s, p)) in sampled.iter().zip(&plain).enumerate() {
            assert_eq!(s.aggregate, *p, "core {core} aggregate");
            assert_eq!(s.summed(), *p, "core {core} telescoping");
            assert!(s.samples.len() > 1, "core {core} series");
        }
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_interval_panics() {
        let cfg = CpuConfig::westmere_e5645();
        Core::new(cfg).run_sampled(SyntheticTrace::new(&profile(), 1), &opts(), 0);
    }
}
