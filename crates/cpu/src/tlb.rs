//! Two-level TLB with a shared second level and page-walk accounting.
//!
//! Matches the paper's machine: 64-entry 4-way first-level I and D TLBs
//! and a 512-entry 4-way second-level TLB shared between instruction and
//! data translations (so heavy data paging evicts instruction entries —
//! the interaction behind Figure 8's service-workload walk rates).

use crate::config::{CpuConfig, TlbConfig};

/// One set-associative TLB level (LRU).
#[derive(Debug, Clone)]
pub struct TlbLevel {
    sets: usize,
    assoc: usize,
    /// `sets - 1` when the set count is a power of two: the set index
    /// becomes a mask instead of a 64-bit modulo on the hot path.
    set_mask: u64,
    sets_pow2: bool,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
}

impl TlbLevel {
    /// Build a level from its geometry.
    pub fn new(cfg: &TlbConfig) -> Self {
        let assoc = cfg.assoc.max(1) as usize;
        let sets = (cfg.entries as usize / assoc).max(1);
        TlbLevel {
            sets,
            assoc,
            set_mask: sets as u64 - 1,
            sets_pow2: sets.is_power_of_two(),
            tags: vec![u64::MAX; sets * assoc],
            stamps: vec![0; sets * assoc],
            clock: 0,
        }
    }

    /// Access a page number; `true` on hit. Misses allocate.
    #[inline]
    pub fn access(&mut self, page: u64) -> bool {
        self.clock += 1;
        let set = if self.sets_pow2 {
            (page & self.set_mask) as usize
        } else {
            (page % self.sets as u64) as usize
        };
        let base = set * self.assoc;
        if let Some(w) = self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == page)
        {
            self.stamps[base + w] = self.clock;
            return true;
        }
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = page;
        self.stamps[base + victim] = self.clock;
        false
    }
}

/// Outcome of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// First-level TLB hit (free).
    L1Hit,
    /// Second-level (shared) TLB hit.
    StlbHit,
    /// Full page walk completed.
    Walk,
}

/// Statistics for one translation side (instruction or data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// First-level misses.
    pub l1_misses: u64,
    /// Completed page walks (second-level misses).
    pub walks: u64,
}

/// The full MMU: split L1 TLBs, shared second level, walk latencies.
#[derive(Debug, Clone)]
pub struct Mmu {
    itlb: TlbLevel,
    dtlb: TlbLevel,
    stlb: TlbLevel,
    page_shift: u32,
    stlb_latency: u32,
    walk_latency: u32,
    /// Instruction-side statistics.
    pub istats: TlbStats,
    /// Data-side statistics.
    pub dstats: TlbStats,
}

impl Mmu {
    /// Build the MMU from a machine config.
    pub fn new(cfg: &CpuConfig) -> Self {
        Mmu {
            itlb: TlbLevel::new(&cfg.itlb),
            dtlb: TlbLevel::new(&cfg.dtlb),
            stlb: TlbLevel::new(&cfg.stlb),
            page_shift: cfg.page_bytes.trailing_zeros(),
            stlb_latency: cfg.mem.stlb_hit,
            walk_latency: cfg.mem.page_walk,
            istats: TlbStats::default(),
            dstats: TlbStats::default(),
        }
    }

    /// Translate an instruction address: `(outcome, latency)`.
    pub fn translate_inst(&mut self, addr: u64) -> (TlbOutcome, u32) {
        let page = addr >> self.page_shift;
        self.istats.accesses += 1;
        if self.itlb.access(page) {
            return (TlbOutcome::L1Hit, 0);
        }
        self.istats.l1_misses += 1;
        if self.stlb.access(page) {
            return (TlbOutcome::StlbHit, self.stlb_latency);
        }
        self.istats.walks += 1;
        (TlbOutcome::Walk, self.walk_latency)
    }

    /// Translate a data address: `(outcome, latency)`.
    pub fn translate_data(&mut self, addr: u64) -> (TlbOutcome, u32) {
        let page = addr >> self.page_shift;
        self.dstats.accesses += 1;
        if self.dtlb.access(page) {
            return (TlbOutcome::L1Hit, 0);
        }
        self.dstats.l1_misses += 1;
        if self.stlb.access(page) {
            return (TlbOutcome::StlbHit, self.stlb_latency);
        }
        self.dstats.walks += 1;
        (TlbOutcome::Walk, self.walk_latency)
    }

    /// Reset statistics, keeping TLB contents (post-warm-up).
    pub fn reset_stats(&mut self) {
        self.istats = TlbStats::default();
        self.dstats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    #[test]
    fn repeated_translation_hits_l1() {
        let mut m = Mmu::new(&CpuConfig::westmere_e5645());
        let (o1, l1) = m.translate_data(0x1000);
        assert_eq!(o1, TlbOutcome::Walk);
        assert!(l1 >= 30);
        let (o2, l2) = m.translate_data(0x1008);
        assert_eq!(o2, TlbOutcome::L1Hit);
        assert_eq!(l2, 0);
        assert_eq!(m.dstats.walks, 1);
        assert_eq!(m.dstats.accesses, 2);
    }

    #[test]
    fn stlb_catches_l1_overflow() {
        let mut m = Mmu::new(&CpuConfig::westmere_e5645());
        // Touch 256 pages (1 MiB): overflows 64-entry DTLB, fits 512-entry STLB.
        for i in 0..256u64 {
            m.translate_data(i * 4096);
        }
        let walks_after_first = m.dstats.walks;
        assert_eq!(walks_after_first, 256, "first touch always walks");
        for i in 0..256u64 {
            m.translate_data(i * 4096);
        }
        assert_eq!(m.dstats.walks, 256, "second sweep never walks (STLB)");
        assert!(m.dstats.l1_misses > 256, "DTLB keeps missing");
    }

    #[test]
    fn big_footprint_keeps_walking() {
        let mut m = Mmu::new(&CpuConfig::westmere_e5645());
        for round in 0..3 {
            for i in 0..4096u64 {
                m.translate_data(i * 4096); // 16 MiB of pages, > STLB reach
            }
            if round == 0 {
                assert_eq!(m.dstats.walks, 4096);
            }
        }
        assert!(m.dstats.walks > 10_000, "STLB cannot hold 4096 pages");
    }

    #[test]
    fn instruction_and_data_share_stlb() {
        let mut m = Mmu::new(&CpuConfig::westmere_e5645());
        // Prime STLB with an instruction page, then miss DTLB on it: the
        // shared level must hit.
        m.translate_inst(0x40_0000);
        // Evict the DTLB? Page not in DTLB yet, so data access misses L1
        // but hits the shared level.
        let (o, _) = m.translate_data(0x40_0000);
        assert_eq!(o, TlbOutcome::StlbHit);
        assert_eq!(m.dstats.walks, 0);
    }

    #[test]
    fn data_pressure_evicts_instruction_stlb_entries() {
        let mut m = Mmu::new(&CpuConfig::westmere_e5645());
        m.translate_inst(0x40_0000);
        // Flood the shared TLB with 8192 data pages.
        for i in 0..8192u64 {
            m.translate_data(0x1000_0000 + i * 4096);
        }
        // Instruction page should have been evicted from both levels…
        // it may also have been evicted from the ITLB by nothing (ITLB is
        // untouched), so force an L1 miss by flooding ITLB too.
        for i in 1..128u64 {
            m.translate_inst(0x40_0000 + i * 4096);
        }
        let walks_before = m.istats.walks;
        m.translate_inst(0x40_0000);
        assert_eq!(
            m.istats.walks,
            walks_before + 1,
            "shared-TLB eviction causes a walk"
        );
    }

    #[test]
    fn reset_keeps_contents() {
        let mut m = Mmu::new(&CpuConfig::westmere_e5645());
        m.translate_data(0x5000);
        m.reset_stats();
        assert_eq!(m.dstats.accesses, 0);
        let (o, _) = m.translate_data(0x5008);
        assert_eq!(o, TlbOutcome::L1Hit);
    }
}
