//! Machine configuration.
//!
//! [`CpuConfig::westmere_e5645`] reproduces Table III of the paper: the
//! Intel Xeon E5645 (Westmere-EP) machine the authors measured. All
//! geometry and latency parameters are exposed so the benchmark harness
//! can run the ablation studies the paper's recommendations imply (LLC
//! capacity, predictor simplification, ROB/RS sizing).

use std::fmt;

/// A rejected machine-description parameter: which knob, what value,
/// and why the geometry cannot be built from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The builder/parameter that rejected its input.
    pub param: &'static str,
    /// The offending value, rendered.
    pub value: String,
    /// Why it is invalid.
    pub reason: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}: {} ({})",
            self.param, self.value, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles (hit latency at this level).
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / u64::from(self.line_bytes) / u64::from(self.assoc)).max(1) as usize
    }
}

/// Geometry of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub assoc: u32,
}

/// Out-of-order engine geometry and penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// Fetch width (µops per cycle delivered by the front end).
    pub fetch_width: u32,
    /// Rename/dispatch width.
    pub rename_width: u32,
    /// Retire width.
    pub retire_width: u32,
    /// Decode-queue capacity between fetch and rename.
    pub decode_queue: u32,
    /// Re-order buffer entries.
    pub rob_entries: u32,
    /// Reservation-station entries.
    pub rs_entries: u32,
    /// Load-buffer entries.
    pub load_buffer: u32,
    /// Store-buffer entries.
    pub store_buffer: u32,
    /// Branch misprediction (pipeline redirect) penalty in cycles.
    pub mispredict_penalty: u32,
    /// Cycles a RAT (partial-register / read-port) hazard blocks rename.
    pub rat_hazard_penalty: u32,
}

/// Execution latencies by functional class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecLatencies {
    /// Simple integer ALU.
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Divide.
    pub div: u32,
    /// FP add/mul.
    pub fp_alu: u32,
}

/// Memory-system latencies beyond the cache-hit latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemLatencies {
    /// Main-memory access latency in cycles.
    pub memory: u32,
    /// Completed page-walk latency in cycles.
    pub page_walk: u32,
    /// Second-level (shared) TLB hit latency in cycles.
    pub stlb_hit: u32,
    /// Minimum cycles between line transfers from memory: the per-core
    /// DRAM bandwidth share when all cores are loaded (as in the paper's
    /// fully-subscribed cluster nodes).
    pub line_gap: u32,
}

/// Stream-prefetcher configuration (L2 prefetcher, as on Westmere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchConfig {
    /// Enable the prefetcher.
    pub enabled: bool,
    /// Number of concurrently tracked streams.
    pub streams: u32,
    /// Lines fetched ahead on a stream hit.
    pub depth: u32,
}

/// Complete machine description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CpuConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified private L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub l3: CacheConfig,
    /// First-level instruction TLB.
    pub itlb: TlbConfig,
    /// First-level data TLB.
    pub dtlb: TlbConfig,
    /// Shared second-level TLB.
    pub stlb: TlbConfig,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Pipeline geometry.
    pub core: CoreConfig,
    /// Execution latencies.
    pub exec: ExecLatencies,
    /// Memory latencies.
    pub mem: MemLatencies,
    /// L2 stream prefetcher.
    pub prefetch: PrefetchConfig,
    /// Branch-predictor global-history bits (gshare); 0 = static
    /// predict-not-taken (the "simpler predictor" ablation).
    pub predictor_history_bits: u32,
    /// Branch-target-buffer entries.
    pub btb_entries: u32,
    /// Physical cores sharing the L3 on one chip ([`crate::chip::Chip`]
    /// capacity; a lone [`crate::core::Core`] ignores it).
    pub cores: u32,
}

impl CpuConfig {
    /// The paper's measurement machine: Intel Xeon E5645 (Westmere-EP),
    /// per Table III — 32 KB 4-way L1-I, 32 KB 8-way L1-D, 256 KB 8-way
    /// L2, 12 MB 16-way shared L3, 64-entry 4-way I/D TLBs, 512-entry
    /// 4-way shared L2 TLB, six 4-wide out-of-order cores per chip.
    pub fn westmere_e5645() -> Self {
        CpuConfig {
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 4,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 10,
            },
            l3: CacheConfig {
                size_bytes: 12 << 20,
                assoc: 16,
                line_bytes: 64,
                latency: 38,
            },
            itlb: TlbConfig {
                entries: 64,
                assoc: 4,
            },
            dtlb: TlbConfig {
                entries: 64,
                assoc: 4,
            },
            stlb: TlbConfig {
                entries: 512,
                assoc: 4,
            },
            page_bytes: 4096,
            core: CoreConfig {
                fetch_width: 4,
                rename_width: 4,
                retire_width: 4,
                decode_queue: 28,
                rob_entries: 128,
                rs_entries: 36,
                load_buffer: 48,
                store_buffer: 32,
                mispredict_penalty: 17,
                rat_hazard_penalty: 3,
            },
            exec: ExecLatencies {
                int_alu: 1,
                int_mul: 3,
                div: 22,
                fp_alu: 3,
            },
            mem: MemLatencies {
                memory: 200,
                page_walk: 30,
                stlb_hit: 7,
                line_gap: 30,
            },
            prefetch: PrefetchConfig {
                enabled: true,
                streams: 16,
                depth: 4,
            },
            predictor_history_bits: 12,
            btb_entries: 4096,
            cores: 6,
        }
    }

    /// Longest gshare history the predictor tables honour
    /// ([`crate::branch::BranchPredictor`] clamps here); longer
    /// configured histories would silently alias, so the builder
    /// rejects them instead.
    pub const MAX_PREDICTOR_BITS: u32 = 20;

    /// Fallible form of [`CpuConfig::with_l3_bytes`]: the capacity must
    /// be a positive whole number of sets (a multiple of
    /// `line_bytes * assoc`), otherwise [`CacheConfig::sets`] would
    /// silently truncate the geometry.
    pub fn try_with_l3_bytes(mut self, bytes: u64) -> Result<Self, ConfigError> {
        let set_bytes = u64::from(self.l3.line_bytes) * u64::from(self.l3.assoc);
        if bytes == 0 {
            return Err(ConfigError {
                param: "l3.size_bytes",
                value: bytes.to_string(),
                reason: "capacity must be positive",
            });
        }
        if !bytes.is_multiple_of(set_bytes) {
            return Err(ConfigError {
                param: "l3.size_bytes",
                value: bytes.to_string(),
                reason: "capacity must be a whole number of sets (line_bytes * assoc)",
            });
        }
        self.l3.size_bytes = bytes;
        Ok(self)
    }

    /// Fallible form of [`CpuConfig::with_rob_entries`]: a zero-entry
    /// re-order buffer can never dispatch.
    pub fn try_with_rob_entries(mut self, entries: u32) -> Result<Self, ConfigError> {
        if entries == 0 {
            return Err(ConfigError {
                param: "core.rob_entries",
                value: entries.to_string(),
                reason: "the re-order buffer needs at least one entry",
            });
        }
        self.core.rob_entries = entries;
        Ok(self)
    }

    /// Fallible form of [`CpuConfig::with_rs_entries`]: a zero-entry
    /// reservation station can never issue.
    pub fn try_with_rs_entries(mut self, entries: u32) -> Result<Self, ConfigError> {
        if entries == 0 {
            return Err(ConfigError {
                param: "core.rs_entries",
                value: entries.to_string(),
                reason: "the reservation station needs at least one entry",
            });
        }
        self.core.rs_entries = entries;
        Ok(self)
    }

    /// Fallible form of [`CpuConfig::with_predictor_bits`]: history
    /// longer than [`CpuConfig::MAX_PREDICTOR_BITS`] would be silently
    /// clamped by the predictor tables.
    pub fn try_with_predictor_bits(mut self, bits: u32) -> Result<Self, ConfigError> {
        if bits > Self::MAX_PREDICTOR_BITS {
            return Err(ConfigError {
                param: "predictor_history_bits",
                value: bits.to_string(),
                reason: "history beyond MAX_PREDICTOR_BITS aliases in the tables",
            });
        }
        self.predictor_history_bits = bits;
        Ok(self)
    }

    /// Fallible form of [`CpuConfig::with_cores`]: a chip needs at
    /// least one core behind the shared L3.
    pub fn try_with_cores(mut self, cores: u32) -> Result<Self, ConfigError> {
        if cores == 0 {
            return Err(ConfigError {
                param: "cores",
                value: cores.to_string(),
                reason: "a chip needs at least one core",
            });
        }
        self.cores = cores;
        Ok(self)
    }

    /// Same machine with a different last-level cache capacity (for the
    /// paper's LLC-sizing recommendation study).
    ///
    /// # Panics
    ///
    /// Panics on a capacity [`CpuConfig::try_with_l3_bytes`] rejects.
    pub fn with_l3_bytes(self, bytes: u64) -> Self {
        self.try_with_l3_bytes(bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Same machine with a different ROB size (OoO-stall ablation).
    ///
    /// # Panics
    ///
    /// Panics on zero entries ([`CpuConfig::try_with_rob_entries`]).
    pub fn with_rob_entries(self, entries: u32) -> Self {
        self.try_with_rob_entries(entries)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Same machine with a different RS size (OoO-stall ablation).
    ///
    /// # Panics
    ///
    /// Panics on zero entries ([`CpuConfig::try_with_rs_entries`]).
    pub fn with_rs_entries(self, entries: u32) -> Self {
        self.try_with_rs_entries(entries)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Same machine with a simpler branch predictor (history bits;
    /// 0 = static not-taken).
    ///
    /// # Panics
    ///
    /// Panics past [`CpuConfig::MAX_PREDICTOR_BITS`]
    /// ([`CpuConfig::try_with_predictor_bits`]).
    pub fn with_predictor_bits(self, bits: u32) -> Self {
        self.try_with_predictor_bits(bits)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Same machine with the prefetcher switched on/off.
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch.enabled = enabled;
        self
    }

    /// Same machine with a different core count behind the shared L3.
    ///
    /// # Panics
    ///
    /// Panics on zero cores ([`CpuConfig::try_with_cores`]).
    pub fn with_cores(self, cores: u32) -> Self {
        self.try_with_cores(cores).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Stable 64-bit digest of the complete machine description.
    ///
    /// Two configs hash equal iff every geometry/latency parameter is
    /// equal, and the value is stable across runs of the same build
    /// ([`DefaultHasher::new`] uses fixed keys) — the property the
    /// characterization result cache keys on.
    pub fn stable_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::westmere_e5645()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westmere_matches_table_iii() {
        let c = CpuConfig::westmere_e5645();
        assert_eq!(c.l1i.size_bytes, 32 << 10);
        assert_eq!(c.l1i.assoc, 4);
        assert_eq!(c.l1d.assoc, 8);
        assert_eq!(c.l2.size_bytes, 256 << 10);
        assert_eq!(c.l3.size_bytes, 12 << 20);
        assert_eq!(c.l3.assoc, 16);
        assert_eq!(c.itlb.entries, 64);
        assert_eq!(c.stlb.entries, 512);
        assert_eq!(c.core.retire_width, 4);
    }

    #[test]
    fn sets_computation() {
        let c = CpuConfig::westmere_e5645();
        assert_eq!(c.l1i.sets(), 128); // 32K / 64B / 4 ways
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 12288);
    }

    #[test]
    fn stable_hash_distinguishes_configs() {
        let base = CpuConfig::westmere_e5645();
        assert_eq!(
            base.stable_hash(),
            CpuConfig::westmere_e5645().stable_hash()
        );
        assert_ne!(
            base.stable_hash(),
            base.clone().with_l3_bytes(6 << 20).stable_hash()
        );
        assert_ne!(
            base.stable_hash(),
            base.clone().with_prefetch(false).stable_hash()
        );
        assert_ne!(
            base.stable_hash(),
            base.clone().with_predictor_bits(0).stable_hash()
        );
    }

    #[test]
    fn l3_builder_rejects_broken_geometries() {
        let base = CpuConfig::westmere_e5645();
        let err = base.clone().try_with_l3_bytes(0).unwrap_err();
        assert_eq!(err.param, "l3.size_bytes");
        assert!(err.reason.contains("positive"));
        // 1000 bytes is not a whole number of 64 B x 16-way sets.
        let err = base.clone().try_with_l3_bytes(1000).unwrap_err();
        assert!(err.reason.contains("whole number of sets"), "{err}");
        // One set (line_bytes * assoc) is the smallest legal L3.
        let one_set = u64::from(base.l3.line_bytes) * u64::from(base.l3.assoc);
        let ok = base.try_with_l3_bytes(one_set).expect("one set is legal");
        assert_eq!(ok.l3.sets(), 1);
    }

    #[test]
    fn window_builders_reject_zero_entries() {
        let base = CpuConfig::westmere_e5645();
        let err = base.clone().try_with_rob_entries(0).unwrap_err();
        assert_eq!(err.param, "core.rob_entries");
        let err = base.clone().try_with_rs_entries(0).unwrap_err();
        assert_eq!(err.param, "core.rs_entries");
        assert!(base.clone().try_with_rob_entries(1).is_ok());
        assert!(base.try_with_rs_entries(1).is_ok());
    }

    #[test]
    fn predictor_builder_rejects_out_of_range_history() {
        let base = CpuConfig::westmere_e5645();
        let err = base
            .clone()
            .try_with_predictor_bits(CpuConfig::MAX_PREDICTOR_BITS + 1)
            .unwrap_err();
        assert_eq!(err.param, "predictor_history_bits");
        let ok = base
            .try_with_predictor_bits(CpuConfig::MAX_PREDICTOR_BITS)
            .expect("the clamp boundary itself is legal");
        assert_eq!(ok.predictor_history_bits, CpuConfig::MAX_PREDICTOR_BITS);
    }

    #[test]
    fn cores_builder_rejects_empty_chip() {
        let err = CpuConfig::westmere_e5645().try_with_cores(0).unwrap_err();
        assert_eq!(err.param, "cores");
        assert!(err.to_string().contains("invalid cores: 0"));
    }

    #[test]
    #[should_panic(expected = "invalid l3.size_bytes")]
    fn infallible_builder_panics_on_rejected_input() {
        let _ = CpuConfig::westmere_e5645().with_l3_bytes(12345);
    }

    #[test]
    fn ablation_builders() {
        let c = CpuConfig::westmere_e5645()
            .with_l3_bytes(6 << 20)
            .with_rob_entries(64)
            .with_rs_entries(18)
            .with_predictor_bits(0)
            .with_prefetch(false);
        assert_eq!(c.l3.size_bytes, 6 << 20);
        assert_eq!(c.core.rob_entries, 64);
        assert_eq!(c.core.rs_entries, 18);
        assert_eq!(c.predictor_history_bits, 0);
        assert!(!c.prefetch.enabled);
    }
}
