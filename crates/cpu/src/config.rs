//! Machine configuration.
//!
//! [`CpuConfig::westmere_e5645`] reproduces Table III of the paper: the
//! Intel Xeon E5645 (Westmere-EP) machine the authors measured. All
//! geometry and latency parameters are exposed so the benchmark harness
//! can run the ablation studies the paper's recommendations imply (LLC
//! capacity, predictor simplification, ROB/RS sizing).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles (hit latency at this level).
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / u64::from(self.line_bytes) / u64::from(self.assoc)).max(1) as usize
    }
}

/// Geometry of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub assoc: u32,
}

/// Out-of-order engine geometry and penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// Fetch width (µops per cycle delivered by the front end).
    pub fetch_width: u32,
    /// Rename/dispatch width.
    pub rename_width: u32,
    /// Retire width.
    pub retire_width: u32,
    /// Decode-queue capacity between fetch and rename.
    pub decode_queue: u32,
    /// Re-order buffer entries.
    pub rob_entries: u32,
    /// Reservation-station entries.
    pub rs_entries: u32,
    /// Load-buffer entries.
    pub load_buffer: u32,
    /// Store-buffer entries.
    pub store_buffer: u32,
    /// Branch misprediction (pipeline redirect) penalty in cycles.
    pub mispredict_penalty: u32,
    /// Cycles a RAT (partial-register / read-port) hazard blocks rename.
    pub rat_hazard_penalty: u32,
}

/// Execution latencies by functional class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecLatencies {
    /// Simple integer ALU.
    pub int_alu: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Divide.
    pub div: u32,
    /// FP add/mul.
    pub fp_alu: u32,
}

/// Memory-system latencies beyond the cache-hit latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemLatencies {
    /// Main-memory access latency in cycles.
    pub memory: u32,
    /// Completed page-walk latency in cycles.
    pub page_walk: u32,
    /// Second-level (shared) TLB hit latency in cycles.
    pub stlb_hit: u32,
    /// Minimum cycles between line transfers from memory: the per-core
    /// DRAM bandwidth share when all cores are loaded (as in the paper's
    /// fully-subscribed cluster nodes).
    pub line_gap: u32,
}

/// Stream-prefetcher configuration (L2 prefetcher, as on Westmere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchConfig {
    /// Enable the prefetcher.
    pub enabled: bool,
    /// Number of concurrently tracked streams.
    pub streams: u32,
    /// Lines fetched ahead on a stream hit.
    pub depth: u32,
}

/// Complete machine description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CpuConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified private L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub l3: CacheConfig,
    /// First-level instruction TLB.
    pub itlb: TlbConfig,
    /// First-level data TLB.
    pub dtlb: TlbConfig,
    /// Shared second-level TLB.
    pub stlb: TlbConfig,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Pipeline geometry.
    pub core: CoreConfig,
    /// Execution latencies.
    pub exec: ExecLatencies,
    /// Memory latencies.
    pub mem: MemLatencies,
    /// L2 stream prefetcher.
    pub prefetch: PrefetchConfig,
    /// Branch-predictor global-history bits (gshare); 0 = static
    /// predict-not-taken (the "simpler predictor" ablation).
    pub predictor_history_bits: u32,
    /// Branch-target-buffer entries.
    pub btb_entries: u32,
    /// Physical cores sharing the L3 on one chip ([`crate::chip::Chip`]
    /// capacity; a lone [`crate::core::Core`] ignores it).
    pub cores: u32,
}

impl CpuConfig {
    /// The paper's measurement machine: Intel Xeon E5645 (Westmere-EP),
    /// per Table III — 32 KB 4-way L1-I, 32 KB 8-way L1-D, 256 KB 8-way
    /// L2, 12 MB 16-way shared L3, 64-entry 4-way I/D TLBs, 512-entry
    /// 4-way shared L2 TLB, six 4-wide out-of-order cores per chip.
    pub fn westmere_e5645() -> Self {
        CpuConfig {
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                latency: 4,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                assoc: 8,
                line_bytes: 64,
                latency: 10,
            },
            l3: CacheConfig {
                size_bytes: 12 << 20,
                assoc: 16,
                line_bytes: 64,
                latency: 38,
            },
            itlb: TlbConfig {
                entries: 64,
                assoc: 4,
            },
            dtlb: TlbConfig {
                entries: 64,
                assoc: 4,
            },
            stlb: TlbConfig {
                entries: 512,
                assoc: 4,
            },
            page_bytes: 4096,
            core: CoreConfig {
                fetch_width: 4,
                rename_width: 4,
                retire_width: 4,
                decode_queue: 28,
                rob_entries: 128,
                rs_entries: 36,
                load_buffer: 48,
                store_buffer: 32,
                mispredict_penalty: 17,
                rat_hazard_penalty: 3,
            },
            exec: ExecLatencies {
                int_alu: 1,
                int_mul: 3,
                div: 22,
                fp_alu: 3,
            },
            mem: MemLatencies {
                memory: 200,
                page_walk: 30,
                stlb_hit: 7,
                line_gap: 30,
            },
            prefetch: PrefetchConfig {
                enabled: true,
                streams: 16,
                depth: 4,
            },
            predictor_history_bits: 12,
            btb_entries: 4096,
            cores: 6,
        }
    }

    /// Same machine with a different last-level cache capacity (for the
    /// paper's LLC-sizing recommendation study).
    pub fn with_l3_bytes(mut self, bytes: u64) -> Self {
        self.l3.size_bytes = bytes;
        self
    }

    /// Same machine with a different ROB size (OoO-stall ablation).
    pub fn with_rob_entries(mut self, entries: u32) -> Self {
        self.core.rob_entries = entries;
        self
    }

    /// Same machine with a different RS size (OoO-stall ablation).
    pub fn with_rs_entries(mut self, entries: u32) -> Self {
        self.core.rs_entries = entries;
        self
    }

    /// Same machine with a simpler branch predictor (history bits;
    /// 0 = static not-taken).
    pub fn with_predictor_bits(mut self, bits: u32) -> Self {
        self.predictor_history_bits = bits;
        self
    }

    /// Same machine with the prefetcher switched on/off.
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch.enabled = enabled;
        self
    }

    /// Same machine with a different core count behind the shared L3.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Stable 64-bit digest of the complete machine description.
    ///
    /// Two configs hash equal iff every geometry/latency parameter is
    /// equal, and the value is stable across runs of the same build
    /// ([`DefaultHasher::new`] uses fixed keys) — the property the
    /// characterization result cache keys on.
    pub fn stable_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::westmere_e5645()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westmere_matches_table_iii() {
        let c = CpuConfig::westmere_e5645();
        assert_eq!(c.l1i.size_bytes, 32 << 10);
        assert_eq!(c.l1i.assoc, 4);
        assert_eq!(c.l1d.assoc, 8);
        assert_eq!(c.l2.size_bytes, 256 << 10);
        assert_eq!(c.l3.size_bytes, 12 << 20);
        assert_eq!(c.l3.assoc, 16);
        assert_eq!(c.itlb.entries, 64);
        assert_eq!(c.stlb.entries, 512);
        assert_eq!(c.core.retire_width, 4);
    }

    #[test]
    fn sets_computation() {
        let c = CpuConfig::westmere_e5645();
        assert_eq!(c.l1i.sets(), 128); // 32K / 64B / 4 ways
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 12288);
    }

    #[test]
    fn stable_hash_distinguishes_configs() {
        let base = CpuConfig::westmere_e5645();
        assert_eq!(
            base.stable_hash(),
            CpuConfig::westmere_e5645().stable_hash()
        );
        assert_ne!(
            base.stable_hash(),
            base.clone().with_l3_bytes(6 << 20).stable_hash()
        );
        assert_ne!(
            base.stable_hash(),
            base.clone().with_prefetch(false).stable_hash()
        );
        assert_ne!(
            base.stable_hash(),
            base.clone().with_predictor_bits(0).stable_hash()
        );
    }

    #[test]
    fn ablation_builders() {
        let c = CpuConfig::westmere_e5645()
            .with_l3_bytes(6 << 20)
            .with_rob_entries(64)
            .with_rs_entries(18)
            .with_predictor_bits(0)
            .with_prefetch(false);
        assert_eq!(c.l3.size_bytes, 6 << 20);
        assert_eq!(c.core.rob_entries, 64);
        assert_eq!(c.core.rs_entries, 18);
        assert_eq!(c.predictor_history_bits, 0);
        assert!(!c.prefetch.enabled);
    }
}
