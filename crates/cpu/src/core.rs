//! The out-of-order core model.
//!
//! A timestamp-based (interval-style) model of a 4-wide superscalar OoO
//! pipeline, the standard trace-driven approximation used by fast
//! architectural simulators:
//!
//! * an **in-order front end** fetches µops through the real L1-I /
//!   ITLB / branch-predictor structures into a decode queue; I-cache and
//!   ITLB misses block fetch for their miss latency, and branch
//!   mispredictions block fetch for the redirect penalty;
//! * a **rename/dispatch stage** moves up to `rename_width` µops per
//!   cycle into the backend, blocking when the ROB, RS, load buffer or
//!   store buffer is full or when a RAT hazard bubble is in flight —
//!   each fully-blocked cycle is attributed to exactly one cause,
//!   mirroring the paper's resource-stall counters (Figure 6);
//! * a **window-limited backend** computes each µop's completion time as
//!   `max(dispatch, producer completion) + latency`, with load latencies
//!   coming from the real cache/TLB hierarchy; stores drain from the
//!   store buffer in order at hierarchy latency;
//! * **in-order retirement** frees ROB entries up to `retire_width` per
//!   cycle.
//!
//! The model deliberately omits wrong-path execution and multi-core
//! interference; the paper's per-workload counters are dominated by
//! right-path locality and window effects, which this captures.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dc_trace::{MicroOp, Mode, OpKind, TraceSource};

use crate::branch::BranchPredictor;
use crate::cache::{Hierarchy, PrivateHierarchy, SharedL3};
use crate::config::CpuConfig;
use crate::counters::PerfCounts;
use crate::sampling::{SampledRun, Sampler};
use crate::tlb::Mmu;

/// Completion ring size for dependence resolution (must exceed the
/// maximum dependence distance emitted by traces).
const COMPLETION_RING: usize = 128;

// The ring indexes producers by `op_idx - dep_dist`; if a trace could
// emit a dependence distance at or beyond the ring size, a µop would
// read a slot already overwritten by a younger op. dc-trace caps what
// it emits, and this pin makes the cross-crate contract unbreakable.
const _: () = assert!(
    COMPLETION_RING as u64 > dc_trace::synth::MAX_DEP_DIST,
    "completion ring must exceed the maximum trace dependence distance"
);

/// Simulation bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// µops to retire during the measured window.
    pub max_ops: u64,
    /// µops to retire before statistics are reset (cache/TLB/predictor
    /// warm-up — the paper's "ramp-up period").
    pub warmup_ops: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_ops: 2_000_000,
            warmup_ops: 300_000,
        }
    }
}

impl SimOptions {
    /// Quick options for unit tests / smoke runs.
    pub fn quick() -> Self {
        SimOptions {
            max_ops: 200_000,
            warmup_ops: 30_000,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    complete: u64,
    mode: Mode,
}

/// The per-core pipeline state machine: everything `Core::run`'s cycle
/// loop used to keep on its stack, extracted so one global clock can
/// step several pipelines in lockstep ([`crate::chip::Chip`]).
///
/// [`Pipeline::step`] advances exactly one cycle — retire, warm-up
/// bookkeeping, fetch, rename/dispatch, stall attribution — against the
/// private hierarchy / MMU / predictor it is handed, and returns `true`
/// once the measurement target is met or the trace has drained. A lone
/// pipeline stepped by a trivial `loop` is bit-identical to the original
/// monolithic loop; N pipelines stepped round-robin within each cycle
/// share an [`SharedL3`] deterministically.
#[derive(Debug)]
pub(crate) struct Pipeline {
    rob_cap: usize,
    rs_cap: usize,
    ldq_cap: usize,
    stq_cap: usize,
    dq_cap: usize,
    line_shift: u32,

    counts: PerfCounts,
    cycle_base: u64,
    in_warmup: bool,
    warmup_ops: u64,
    target: u64,

    // Front end.
    decode_q: VecDeque<MicroOp>,
    pending: Option<MicroOp>,
    fetch_blocked_until: u64,
    last_fetch_line: u64,
    trace_done: bool,

    // Backend windows. Heaps hold the cycle at which an entry frees.
    rob: VecDeque<RobEntry>,
    rs: BinaryHeap<Reverse<u64>>,
    ldq: BinaryHeap<Reverse<u64>>,
    stq: BinaryHeap<Reverse<u64>>,
    last_store_drain: u64,
    rat_blocked_until: u64,

    completions: [u64; COMPLETION_RING],
    op_idx: u64,
    retired: u64,
    final_cycle: u64,
}

impl Pipeline {
    pub(crate) fn new(cfg: &CpuConfig, opts: &SimOptions) -> Self {
        let c = cfg.core;
        let rob_cap = c.rob_entries.max(1) as usize;
        let rs_cap = c.rs_entries.max(1) as usize;
        let ldq_cap = c.load_buffer.max(1) as usize;
        let stq_cap = c.store_buffer.max(1) as usize;
        let dq_cap = c.decode_queue.max(4) as usize;
        Pipeline {
            rob_cap,
            rs_cap,
            ldq_cap,
            stq_cap,
            dq_cap,
            line_shift: cfg.l1i.line_bytes.trailing_zeros(),
            counts: PerfCounts::default(),
            cycle_base: 0,
            in_warmup: opts.warmup_ops > 0,
            warmup_ops: opts.warmup_ops,
            target: opts.warmup_ops.saturating_add(opts.max_ops),
            decode_q: VecDeque::with_capacity(dq_cap),
            pending: None,
            fetch_blocked_until: 0,
            last_fetch_line: u64::MAX,
            trace_done: false,
            rob: VecDeque::with_capacity(rob_cap),
            rs: BinaryHeap::with_capacity(rs_cap),
            ldq: BinaryHeap::with_capacity(ldq_cap),
            stq: BinaryHeap::with_capacity(stq_cap),
            last_store_drain: 0,
            rat_blocked_until: 0,
            completions: [0u64; COMPLETION_RING],
            op_idx: 0,
            retired: 0,
            final_cycle: 0,
        }
    }

    /// Advance this core by the one cycle `cycle` (the caller's global
    /// clock, already incremented). Returns `true` when the core is
    /// finished; after that, [`Pipeline::finalize`] reads the counters.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step<T: TraceSource>(
        &mut self,
        cycle: u64,
        cfg: &CpuConfig,
        hier: &mut PrivateHierarchy,
        shared: &mut SharedL3,
        mmu: &mut Mmu,
        bp: &mut BranchPredictor,
        trace: &mut T,
    ) -> bool {
        let c = cfg.core;

        // ---- Retire (in order, width-limited) ----
        let mut retired_now = 0;
        while retired_now < c.retire_width {
            match self.rob.front() {
                Some(head) if head.complete <= cycle => {
                    let e = self.rob.pop_front().expect("front() was Some");
                    self.retired += 1;
                    retired_now += 1;
                    self.counts.instructions += 1;
                    match e.mode {
                        Mode::User => self.counts.user_instructions += 1,
                        Mode::Kernel => self.counts.kernel_instructions += 1,
                    }
                }
                _ => break,
            }
        }

        // Warm-up boundary: reset this core's statistics, keep state.
        // Shared-level contents (and the other cores' statistics) are
        // deliberately untouched; this core's L3 traffic is tracked by
        // its private attribution counters, which do reset here.
        if self.in_warmup && self.retired >= self.warmup_ops {
            self.in_warmup = false;
            self.counts = PerfCounts::default();
            hier.reset_stats();
            mmu.reset_stats();
            bp.reset_stats();
            self.cycle_base = cycle;
        }
        if self.retired >= self.target {
            self.final_cycle = cycle;
            return true;
        }

        // ---- Fetch into the decode queue ----
        if cycle >= self.fetch_blocked_until {
            let mut fetched = 0;
            while fetched < c.fetch_width && self.decode_q.len() < self.dq_cap {
                // A pending op already paid its fetch penalty.
                let op = match self.pending.take() {
                    Some(op) => op,
                    None => match trace.next_op() {
                        Some(op) => op,
                        None => {
                            self.trace_done = true;
                            break;
                        }
                    },
                };
                // New cache line ⇒ I-cache + ITLB access.
                let line = op.pc >> self.line_shift;
                if line != self.last_fetch_line {
                    self.last_fetch_line = line;
                    let (_, tlb_lat) = mmu.translate_inst(op.pc);
                    let (_, i_lat) = hier.fetch_inst(shared, op.pc, cycle);
                    let penalty = u64::from(tlb_lat) + u64::from(i_lat);
                    if penalty > 0 {
                        // Line fetch in flight: the op arrives when it
                        // resolves.
                        self.fetch_blocked_until = cycle + penalty;
                        self.pending = Some(op);
                        break;
                    }
                }
                // Branch prediction (front-end redirect on mispredict).
                if let OpKind::Branch { taken, target } = op.kind {
                    let correct = bp.predict_and_train(op.pc, taken, target);
                    self.decode_q.push_back(op);
                    fetched += 1;
                    if !correct {
                        self.fetch_blocked_until = cycle + u64::from(c.mispredict_penalty);
                        break;
                    }
                    continue;
                }
                self.decode_q.push_back(op);
                fetched += 1;
            }
        }

        // ---- Rename / dispatch ----
        let mut renamed = 0;
        // Per-cycle issue-port budgets (Westmere: one load port, one
        // store port, two FP units).
        let mut load_ports = 1u32;
        let mut store_ports = 1u32;
        let mut fp_ports = 2u32;
        // Cause of the first blockage this cycle (for attribution).
        #[derive(PartialEq, Eq, Clone, Copy)]
        enum Block {
            None,
            Fetch,
            Rat,
            Rob,
            Rs,
            Load,
            Store,
        }
        let mut block = Block::None;

        while renamed < c.rename_width {
            if self.rat_blocked_until > cycle {
                block = Block::Rat;
                break;
            }
            let Some(&op) = self.decode_q.front() else {
                block = Block::Fetch;
                break;
            };
            // Free backend entries whose release time has passed.
            while self.rs.peek().is_some_and(|Reverse(t)| *t <= cycle) {
                self.rs.pop();
            }
            while self.ldq.peek().is_some_and(|Reverse(t)| *t <= cycle) {
                self.ldq.pop();
            }
            while self.stq.peek().is_some_and(|Reverse(t)| *t <= cycle) {
                self.stq.pop();
            }
            if self.rob.len() >= self.rob_cap {
                block = Block::Rob;
                break;
            }
            if self.rs.len() >= self.rs_cap {
                block = Block::Rs;
                break;
            }
            if op.kind.is_load() && self.ldq.len() >= self.ldq_cap {
                block = Block::Load;
                break;
            }
            if op.kind.is_store() && self.stq.len() >= self.stq_cap {
                block = Block::Store;
                break;
            }
            // Issue-port throughput limits end the rename group
            // without charging a stall (width effect, not a stall).
            match op.kind {
                OpKind::Load { .. } if load_ports == 0 => break,
                OpKind::Store { .. } if store_ports == 0 => break,
                OpKind::FpAlu if fp_ports == 0 => break,
                _ => {}
            }
            match op.kind {
                OpKind::Load { .. } => load_ports -= 1,
                OpKind::Store { .. } => store_ports -= 1,
                OpKind::FpAlu => fp_ports -= 1,
                _ => {}
            }
            self.decode_q.pop_front();
            if op.rat_hazard {
                self.rat_blocked_until = cycle + u64::from(c.rat_hazard_penalty);
            }

            // Dispatch: compute readiness and completion.
            let mut ready = cycle + 1;
            let dep = u64::from(op.dep_dist);
            if dep > 0 && self.op_idx >= dep {
                let producer =
                    self.completions[((self.op_idx - dep) % COMPLETION_RING as u64) as usize];
                ready = ready.max(producer);
            }
            let complete = match op.kind {
                OpKind::IntAlu => ready + u64::from(cfg.exec.int_alu),
                OpKind::IntMul => ready + u64::from(cfg.exec.int_mul),
                OpKind::Div => ready + u64::from(cfg.exec.div),
                OpKind::FpAlu => ready + u64::from(cfg.exec.fp_alu),
                OpKind::Branch { .. } => ready + u64::from(cfg.exec.int_alu),
                OpKind::Load { addr, .. } => {
                    self.counts.loads += 1;
                    let (_, tlb_lat) = mmu.translate_data(addr);
                    let (_, mem_lat) = hier.access_data(shared, addr, cycle);
                    let done = ready + u64::from(tlb_lat) + u64::from(mem_lat);
                    self.ldq.push(Reverse(done));
                    done
                }
                OpKind::Store { addr, .. } => {
                    self.counts.stores += 1;
                    let (_, tlb_lat) = mmu.translate_data(addr);
                    let exec_done = ready + 1 + u64::from(tlb_lat);
                    // In-order store-buffer drain: L1 hits drain at
                    // one per cycle; misses overlap ~3-deep (write
                    // combining / RFO MLP).
                    let (lvl, drain_lat) = hier.access_data(shared, addr, cycle);
                    let cost = if lvl == crate::cache::MemLevel::L1 {
                        1
                    } else {
                        u64::from(drain_lat) / 3
                    };
                    let drain_done = self.last_store_drain.max(exec_done) + cost;
                    self.last_store_drain = drain_done;
                    self.stq.push(Reverse(drain_done));
                    exec_done
                }
            };
            self.rs.push(Reverse(ready));
            self.rob.push_back(RobEntry {
                complete,
                mode: op.mode,
            });
            self.completions[(self.op_idx % COMPLETION_RING as u64) as usize] = complete;
            self.op_idx += 1;
            renamed += 1;
        }

        // ---- Stall attribution (paper-style: a fully blocked rename
        // cycle is charged to its first cause) ----
        if renamed == 0 {
            let draining = self.trace_done && self.pending.is_none() && self.decode_q.is_empty();
            match block {
                Block::Fetch if !draining => self.counts.fetch_stall_cycles += 1,
                Block::Rat => self.counts.rat_stall_cycles += 1,
                Block::Rob => self.counts.rob_full_stall_cycles += 1,
                Block::Rs => self.counts.rs_full_stall_cycles += 1,
                Block::Load => self.counts.load_buf_stall_cycles += 1,
                Block::Store => self.counts.store_buf_stall_cycles += 1,
                _ => {}
            }
        }

        // Termination: trace drained and backend empty.
        if self.trace_done
            && self.pending.is_none()
            && self.decode_q.is_empty()
            && self.rob.is_empty()
        {
            self.final_cycle = cycle;
            return true;
        }
        false
    }

    /// Whether this pipeline is still inside its warm-up window.
    pub(crate) fn in_warmup(&self) -> bool {
        self.in_warmup
    }

    /// The global cycle at which statistics were last reset (0 until
    /// the warm-up boundary passes).
    pub(crate) fn cycle_base(&self) -> u64 {
        self.cycle_base
    }

    /// Copy structure statistics into the counter block and return it.
    pub(crate) fn finalize(
        &self,
        hier: &PrivateHierarchy,
        mmu: &Mmu,
        bp: &BranchPredictor,
    ) -> PerfCounts {
        self.snapshot(self.final_cycle, hier, mmu, bp)
    }

    /// The counter block as it stands at global cycle `at_cycle`, with
    /// structure statistics copied in — [`Pipeline::finalize`] is the
    /// `at_cycle == final_cycle` case. Counters only ever increase
    /// between snapshots (within one measurement window), so
    /// consecutive snapshots difference cleanly
    /// ([`PerfCounts::delta_since`]).
    pub(crate) fn snapshot(
        &self,
        at_cycle: u64,
        hier: &PrivateHierarchy,
        mmu: &Mmu,
        bp: &BranchPredictor,
    ) -> PerfCounts {
        let mut counts = self.counts;
        counts.cycles = at_cycle - self.cycle_base;
        counts.l1i_accesses = hier.l1i.accesses;
        counts.l1i_misses = hier.l1i.misses;
        counts.l1d_accesses = hier.l1d.accesses;
        counts.l1d_misses = hier.l1d.misses;
        counts.l2_accesses = hier.l2.accesses;
        counts.l2_misses = hier.l2.misses;
        counts.l3_accesses = hier.l3_accesses;
        counts.l3_misses = hier.l3_misses;
        counts.prefetches = hier.prefetches;
        counts.itlb_accesses = mmu.istats.accesses;
        counts.itlb_misses = mmu.istats.l1_misses;
        counts.itlb_walks = mmu.istats.walks;
        counts.dtlb_accesses = mmu.dstats.accesses;
        counts.dtlb_misses = mmu.dstats.l1_misses;
        counts.dtlb_walks = mmu.dstats.walks;
        counts.branches = bp.branches;
        counts.branch_mispredicts = bp.mispredicts;
        counts
    }
}

/// The simulated core: real cache/TLB/predictor structures plus the
/// timestamp pipeline model.
#[derive(Debug)]
pub struct Core {
    cfg: CpuConfig,
    hier: Hierarchy,
    mmu: Mmu,
    bp: BranchPredictor,
}

// The parallel characterization pipeline ships whole simulations to
// worker threads; every piece of sim state must stay `Send`. Checked
// at compile time so a future `Rc`/raw-pointer refactor cannot
// silently serialize the pipeline.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Core>();
    assert_send::<CpuConfig>();
    assert_send::<SimOptions>();
    assert_send::<PerfCounts>();
};

impl Core {
    /// Build a core for the given machine configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        Core {
            hier: Hierarchy::new(&cfg),
            mmu: Mmu::new(&cfg),
            bp: BranchPredictor::new(&cfg),
            cfg,
        }
    }

    /// The machine configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Run `trace` through the pipeline and return the measured counters.
    ///
    /// Simulation retires `opts.warmup_ops` µops with statistics
    /// discarded (structures stay warm), then measures until
    /// `opts.max_ops` further µops have retired or the trace ends.
    pub fn run<T: TraceSource>(&mut self, mut trace: T, opts: &SimOptions) -> PerfCounts {
        let mut pipe = Pipeline::new(&self.cfg, opts);
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            let done = pipe.step(
                cycle,
                &self.cfg,
                &mut self.hier.private,
                &mut self.hier.shared,
                &mut self.mmu,
                &mut self.bp,
                &mut trace,
            );
            if done {
                break;
            }
        }
        pipe.finalize(&self.hier.private, &self.mmu, &self.bp)
    }

    /// Like [`Core::run`], but additionally snapshot the counters every
    /// `every_cycles` simulated cycles (a `perf stat -I`-style series).
    ///
    /// The returned [`SampledRun`] holds the per-interval counter
    /// *deltas* plus the aggregate block. The aggregate is
    /// **bit-identical** to what [`Core::run`] returns for the same
    /// trace and options — sampling reads pipeline state, it never
    /// perturbs it — and the deltas telescope: accumulating them
    /// reproduces the aggregate exactly. The interval clock restarts at
    /// the warm-up boundary along with the statistics, so samples cover
    /// precisely the measured window.
    ///
    /// # Panics
    ///
    /// Panics if `every_cycles` is zero.
    pub fn run_sampled<T: TraceSource>(
        &mut self,
        mut trace: T,
        opts: &SimOptions,
        every_cycles: u64,
    ) -> SampledRun {
        let mut pipe = Pipeline::new(&self.cfg, opts);
        let mut sampler = Sampler::new(every_cycles);
        let mut was_warm = pipe.in_warmup();
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            let done = pipe.step(
                cycle,
                &self.cfg,
                &mut self.hier.private,
                &mut self.hier.shared,
                &mut self.mmu,
                &mut self.bp,
                &mut trace,
            );
            if was_warm && !pipe.in_warmup() {
                sampler.rearm(pipe.cycle_base());
                was_warm = false;
            }
            if done {
                break;
            }
            sampler.observe(cycle, &pipe, &self.hier.private, &self.mmu, &self.bp);
        }
        let aggregate = pipe.finalize(&self.hier.private, &self.mmu, &self.bp);
        let samples = sampler.finish(aggregate);
        SampledRun {
            every_cycles,
            aggregate,
            samples,
        }
    }
}

/// Convenience: simulate a trace on a fresh core with the given config.
pub fn simulate<T: TraceSource>(trace: T, cfg: &CpuConfig, opts: &SimOptions) -> PerfCounts {
    Core::new(cfg.clone()).run(trace, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_trace::MicroOp;

    /// A dense stream of independent ALU ops in one cache line.
    fn alu_stream(n: usize) -> impl Iterator<Item = MicroOp> {
        (0..n).map(|_| MicroOp::int_alu(0x40_0000))
    }

    #[test]
    fn ideal_alu_stream_approaches_width() {
        let cfg = CpuConfig::westmere_e5645();
        let counts = simulate(
            alu_stream(500_000),
            &cfg,
            &SimOptions {
                max_ops: 400_000,
                warmup_ops: 50_000,
            },
        );
        let ipc = counts.ipc();
        assert!(
            ipc > 3.0,
            "independent ALU ops should near the 4-wide limit: {ipc}"
        );
        assert!(counts.instructions >= 400_000);
    }

    #[test]
    fn serial_dependence_chain_limits_ipc_to_one() {
        let cfg = CpuConfig::westmere_e5645();
        let ops = (0..300_000).map(|_| {
            let mut op = MicroOp::int_alu(0x40_0000);
            op.dep_dist = 1; // every op depends on its predecessor
            op
        });
        let counts = simulate(
            ops,
            &cfg,
            &SimOptions {
                max_ops: 200_000,
                warmup_ops: 20_000,
            },
        );
        let ipc = counts.ipc();
        assert!(ipc < 1.15, "a serial chain cannot exceed 1 op/cycle: {ipc}");
        assert!(ipc > 0.7, "chain should still sustain ~1 op/cycle: {ipc}");
    }

    #[test]
    fn memory_bound_stream_has_low_ipc_and_rob_stalls() {
        let cfg = CpuConfig::westmere_e5645().with_prefetch(false);
        // Random loads over 256 MiB: miss everywhere, dependent in pairs.
        let mut x = 1u64;
        let ops = (0..200_000).map(move |i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (0x1000_0000 + ((x >> 16) % (256 << 20))) & !7;
            let mut op = MicroOp::load(0x40_0000 + (i % 16) * 4, addr);
            op.dep_dist = 2;
            op
        });
        let counts = simulate(
            ops,
            &cfg,
            &SimOptions {
                max_ops: 100_000,
                warmup_ops: 10_000,
            },
        );
        assert!(counts.ipc() < 0.5, "ipc={}", counts.ipc());
        assert!(
            counts.rob_full_stall_cycles
                + counts.rs_full_stall_cycles
                + counts.load_buf_stall_cycles
                > counts.fetch_stall_cycles,
            "memory-bound work stalls in the OoO part"
        );
    }

    #[test]
    fn huge_code_footprint_causes_fetch_stalls() {
        let cfg = CpuConfig::westmere_e5645();
        // Jump through 4 MiB of code: every line is cold or L2-resident.
        let mut x = 7u64;
        let ops = (0..200_000).map(move |_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = (0x40_0000 + ((x >> 20) % (4 << 20))) & !63;
            MicroOp::int_alu(pc)
        });
        let counts = simulate(
            ops,
            &cfg,
            &SimOptions {
                max_ops: 100_000,
                warmup_ops: 10_000,
            },
        );
        assert!(counts.l1i_mpki() > 100.0, "l1i mpki={}", counts.l1i_mpki());
        let breakdown = counts.stall_breakdown();
        assert!(
            breakdown[0] > 0.5,
            "fetch stalls should dominate: {breakdown:?}"
        );
        assert!(counts.ipc() < 1.0);
    }

    #[test]
    fn rat_hazards_cause_rat_stalls() {
        let cfg = CpuConfig::westmere_e5645();
        let ops = (0..200_000).map(|i| {
            let mut op = MicroOp::int_alu(0x40_0000);
            op.rat_hazard = i % 8 == 0;
            op
        });
        let counts = simulate(
            ops,
            &cfg,
            &SimOptions {
                max_ops: 100_000,
                warmup_ops: 10_000,
            },
        );
        assert!(counts.rat_stall_cycles > 0);
        let b = counts.stall_breakdown();
        assert!(b[1] > 0.5, "RAT should dominate stalls here: {b:?}");
    }

    #[test]
    fn streaming_stores_fill_store_buffer() {
        let cfg = CpuConfig::westmere_e5645().with_prefetch(false);
        let ops = (0..200_000).map(|i| {
            // Every op is a store to a new line over 64 MiB.
            MicroOp::store(0x40_0000, 0x2000_0000 + i * 64)
        });
        let counts = simulate(
            ops,
            &cfg,
            &SimOptions {
                max_ops: 100_000,
                warmup_ops: 10_000,
            },
        );
        assert!(
            counts.store_buf_stall_cycles > counts.fetch_stall_cycles,
            "store drain should be the bottleneck"
        );
        assert!(counts.ipc() < 0.25);
    }

    #[test]
    fn mispredicts_slow_the_front_end() {
        let cfg = CpuConfig::westmere_e5645();
        let mut x = 3u64;
        let random_branches = (0..200_000).map(move |i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            MicroOp::branch(0x40_0000 + (i % 4) * 4, (x >> 30) & 1 == 1, 0x40_1000)
        });
        let counts_bad = simulate(
            random_branches,
            &cfg,
            &SimOptions {
                max_ops: 100_000,
                warmup_ops: 10_000,
            },
        );
        let steady_branches =
            (0..200_000).map(|i| MicroOp::branch(0x40_0000 + (i % 4) * 4, true, 0x40_1000));
        let counts_good = simulate(
            steady_branches,
            &cfg,
            &SimOptions {
                max_ops: 100_000,
                warmup_ops: 10_000,
            },
        );
        assert!(counts_bad.branch_misprediction_ratio() > 0.3);
        assert!(counts_good.branch_misprediction_ratio() < 0.02);
        assert!(counts_bad.ipc() < counts_good.ipc() * 0.5);
    }

    #[test]
    fn kernel_instructions_counted_separately() {
        let cfg = CpuConfig::westmere_e5645();
        let ops = (0..100_000).map(|i| {
            let mut op = MicroOp::int_alu(0x40_0000);
            if i % 4 == 0 {
                op.mode = Mode::Kernel;
            }
            op
        });
        let counts = simulate(
            ops,
            &cfg,
            &SimOptions {
                max_ops: 80_000,
                warmup_ops: 8_000,
            },
        );
        let f = counts.kernel_fraction();
        assert!((f - 0.25).abs() < 0.02, "kernel fraction {f}");
    }

    #[test]
    fn trace_shorter_than_budget_terminates() {
        let cfg = CpuConfig::westmere_e5645();
        let counts = simulate(
            alu_stream(5_000),
            &cfg,
            &SimOptions {
                max_ops: 1_000_000,
                warmup_ops: 0,
            },
        );
        assert_eq!(counts.instructions, 5_000);
        assert!(counts.cycles > 0);
    }

    #[test]
    fn warmup_discards_cold_misses() {
        let cfg = CpuConfig::westmere_e5645();
        // Loop over 16 KiB of data: everything fits L1D after one pass.
        let ops = (0..400_000u64).map(|i| MicroOp::load(0x40_0000, 0x1000_0000 + (i % 2048) * 8));
        let counts = simulate(
            ops,
            &cfg,
            &SimOptions {
                max_ops: 200_000,
                warmup_ops: 100_000,
            },
        );
        assert!(
            counts.l1d_misses < 100,
            "post-warm-up L1D should be hot: {} misses",
            counts.l1d_misses
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = CpuConfig::westmere_e5645();
        let mk = || {
            (0..50_000u64).map(|i| {
                let mut op = MicroOp::load(
                    0x40_0000 + (i % 256) * 4,
                    (0x1000_0000 + (i * 2654435761 % (8 << 20))) & !7,
                );
                op.dep_dist = (i % 5) as u16;
                op
            })
        };
        let a = simulate(mk(), &cfg, &SimOptions::quick());
        let b = simulate(mk(), &cfg, &SimOptions::quick());
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_rob_increases_ooo_stalls() {
        let mk = || {
            let mut x = 1u64;
            (0..300_000).map(move |_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = (0x1000_0000 + ((x >> 16) % (64 << 20))) & !7;
                MicroOp::load(0x40_0000, addr)
            })
        };
        let big = simulate(
            mk(),
            &CpuConfig::westmere_e5645(),
            &SimOptions {
                max_ops: 150_000,
                warmup_ops: 15_000,
            },
        );
        let small = simulate(
            mk(),
            &CpuConfig::westmere_e5645().with_rob_entries(32),
            &SimOptions {
                max_ops: 150_000,
                warmup_ops: 15_000,
            },
        );
        assert!(small.ipc() <= big.ipc());
        assert!(small.rob_full_stall_cycles >= big.rob_full_stall_cycles);
    }
}
