//! The out-of-order core model.
//!
//! A timestamp-based (interval-style) model of a 4-wide superscalar OoO
//! pipeline, the standard trace-driven approximation used by fast
//! architectural simulators:
//!
//! * an **in-order front end** fetches µops through the real L1-I /
//!   ITLB / branch-predictor structures into a decode queue; I-cache and
//!   ITLB misses block fetch for their miss latency, and branch
//!   mispredictions block fetch for the redirect penalty;
//! * a **rename/dispatch stage** moves up to `rename_width` µops per
//!   cycle into the backend, blocking when the ROB, RS, load buffer or
//!   store buffer is full or when a RAT hazard bubble is in flight —
//!   each fully-blocked cycle is attributed to exactly one cause,
//!   mirroring the paper's resource-stall counters (Figure 6);
//! * a **window-limited backend** computes each µop's completion time as
//!   `max(dispatch, producer completion) + latency`, with load latencies
//!   coming from the real cache/TLB hierarchy; stores drain from the
//!   store buffer in order at hierarchy latency;
//! * **in-order retirement** frees ROB entries up to `retire_width` per
//!   cycle.
//!
//! The model deliberately omits wrong-path execution and multi-core
//! interference; the paper's per-workload counters are dominated by
//! right-path locality and window effects, which this captures.
//!
//! ## Representation: flat-array, index-based state
//!
//! The backend windows are structure-of-arrays rings, not collections
//! of per-op structs: the ROB is a fixed-capacity ring of parallel
//! completion-cycle and flag arrays ([`RobRing`]), and the RS / load
//! buffer / store buffer are counting wakeup structures keyed on the
//! cycle an entry frees ([`WakeupWheel`]) — the model never needs to
//! know *which* entry frees, only *how many* are still held at a given
//! cycle, so a heap of release times collapses into occupancy counts
//! bucketed by cycle. No allocation happens per op or per cycle.
//!
//! ## Idle-cycle skipping
//!
//! Most simulated cycles do nothing: rename is blocked on one cause,
//! fetch is waiting out a miss, and the ROB head has not completed.
//! After every un-finished step, [`Pipeline::next_event`] computes the
//! earliest future cycle at which *any* stage could act; the run loops
//! jump the global clock there, bulk-charging the skipped cycles to the
//! same stall counter the stepped loop would have charged. The skip is
//! exact — counters, interleavings and final cycles are bit-identical
//! to the cycle-by-cycle loop (pinned by tests here and by the golden
//! suite).
//!
//! ## SMARTS-style sampled simulation
//!
//! With [`SimOptions::sample`] set, the pipeline alternates short
//! detailed intervals (`detail_ops` retired µops) with long functional
//! fast-forward bursts (`ffwd_ops` µops) that update only caches, TLBs
//! and the branch predictor — the large long-lived state — while the
//! pipeline timing model rests. Cycle-denominated counters are
//! extrapolated from the detailed intervals at finalization; event
//! counters (misses, walks, mispredicts) are exact because every op
//! still touches the real structures in program order. See DESIGN.md
//! §13 for the extrapolation math and measured error bounds.

use dc_trace::{MicroOp, Mode, OpKind, TraceSource};

use crate::branch::BranchPredictor;
use crate::cache::{Hierarchy, PrivateHierarchy, SharedL3};
use crate::config::CpuConfig;
use crate::counters::PerfCounts;
use crate::sampling::{SampledRun, Sampler};
use crate::tlb::Mmu;

/// Completion ring size for dependence resolution (must exceed the
/// maximum dependence distance emitted by traces).
const COMPLETION_RING: usize = 128;

// The ring indexes producers by `op_idx - dep_dist`; if a trace could
// emit a dependence distance at or beyond the ring size, a µop would
// read a slot already overwritten by a younger op. dc-trace caps what
// it emits, and this pin makes the cross-crate contract unbreakable.
const _: () = assert!(
    COMPLETION_RING as u64 > dc_trace::synth::MAX_DEP_DIST,
    "completion ring must exceed the maximum trace dependence distance"
);

/// SMARTS-style systematic-sampling plan: alternate `detail_ops`
/// retired µops of full pipeline detail with `ffwd_ops` µops of
/// functional fast-forward (caches/TLBs/predictor warmed, no timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplePlan {
    /// µops retired in full pipeline detail per interval.
    pub detail_ops: u64,
    /// µops functionally fast-forwarded between detailed intervals.
    pub ffwd_ops: u64,
}

impl SamplePlan {
    /// The validated default plan: one part detailed to three parts
    /// fast-forwarded. Each burst re-enters detail through a warming
    /// prefix (a quarter interval) whose cycles are excluded from the
    /// extrapolation, and burst lengths are jittered ±50% to break
    /// aliasing with workload phase structure. The `sampled-validation`
    /// CI job holds this plan to ≤ 3% IPC / ≤ 5% MPKI error across all
    /// eleven data-analysis workloads at the full window (~12 bursts);
    /// the extrapolation error is sampling variance, so shorter windows
    /// loosen the IPC bound (≤ 8% at the quick window's ~5 bursts)
    /// while the event-count MPKI bound holds everywhere.
    pub const DEFAULT: SamplePlan = SamplePlan {
        detail_ops: 25_000,
        ffwd_ops: 75_000,
    };
}

/// Simulation bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimOptions {
    /// µops to retire during the measured window.
    pub max_ops: u64,
    /// µops to retire before statistics are reset (cache/TLB/predictor
    /// warm-up — the paper's "ramp-up period").
    pub warmup_ops: u64,
    /// `None` ⇒ exact cycle-accurate simulation of every µop.
    /// `Some(plan)` ⇒ SMARTS-style systematic sampling: only the
    /// plan's detailed intervals are simulated cycle-by-cycle, the
    /// rest functionally warm the caches/TLBs/predictor, and
    /// cycle-denominated counters are extrapolated.
    pub sample: Option<SamplePlan>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_ops: 2_000_000,
            warmup_ops: 300_000,
            sample: None,
        }
    }
}

impl SimOptions {
    /// Exact (unsampled) simulation with the given window.
    pub fn exact(max_ops: u64, warmup_ops: u64) -> Self {
        SimOptions {
            max_ops,
            warmup_ops,
            sample: None,
        }
    }

    /// Quick options for unit tests / smoke runs.
    pub fn quick() -> Self {
        SimOptions::exact(200_000, 30_000)
    }

    /// Default window with SMARTS-style sampling enabled.
    pub fn sampled(detail_ops: u64, ffwd_ops: u64) -> Self {
        SimOptions::default().with_sampling(detail_ops, ffwd_ops)
    }

    /// Enable SMARTS-style sampling on this window.
    pub fn with_sampling(mut self, detail_ops: u64, ffwd_ops: u64) -> Self {
        self.sample = Some(SamplePlan {
            detail_ops,
            ffwd_ops,
        });
        self
    }

    /// Whether this window runs in sampled (extrapolating) mode.
    pub fn is_sampled(&self) -> bool {
        self.sample.is_some()
    }
}

/// ROB entry flag: the µop retired in kernel mode.
const FLAG_KERNEL: u8 = 1;

/// Fixed-capacity SoA ring backing the ROB: parallel completion-cycle
/// and flag arrays plus head/length indices. Sized *exactly* to
/// `rob_entries` — no power-of-two rounding, no growth.
#[derive(Debug)]
struct RobRing {
    complete: Box<[u64]>,
    flags: Box<[u8]>,
    head: usize,
    len: usize,
}

impl RobRing {
    fn new(cap: usize) -> Self {
        assert!(cap > 0, "ROB capacity must be positive");
        RobRing {
            complete: vec![0u64; cap].into_boxed_slice(),
            flags: vec![0u8; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn cap(&self) -> usize {
        self.complete.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.len == self.cap()
    }

    /// Completion cycle of the oldest entry, if any.
    #[inline]
    fn front_complete(&self) -> Option<u64> {
        (self.len > 0).then(|| self.complete[self.head])
    }

    #[inline]
    fn push(&mut self, complete: u64, kernel: bool) {
        debug_assert!(!self.is_full());
        let cap = self.cap();
        let mut idx = self.head + self.len;
        if idx >= cap {
            idx -= cap;
        }
        self.complete[idx] = complete;
        self.flags[idx] = kernel as u8;
        self.len += 1;
    }

    /// Pop the oldest entry and return its flags.
    #[inline]
    fn pop_front(&mut self) -> u8 {
        debug_assert!(self.len > 0);
        let f = self.flags[self.head];
        self.head += 1;
        if self.head == self.cap() {
            self.head = 0;
        }
        self.len -= 1;
        f
    }
}

/// Fixed-capacity ring of µops between fetch and rename.
#[derive(Debug)]
struct OpRing {
    ops: Box<[MicroOp]>,
    head: usize,
    len: usize,
}

impl OpRing {
    fn new(cap: usize) -> Self {
        OpRing {
            ops: vec![MicroOp::int_alu(0); cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.len == self.ops.len()
    }

    #[inline]
    fn front(&self) -> Option<&MicroOp> {
        (self.len > 0).then(|| &self.ops[self.head])
    }

    #[inline]
    fn push_back(&mut self, op: MicroOp) {
        debug_assert!(!self.is_full());
        let cap = self.ops.len();
        let mut idx = self.head + self.len;
        if idx >= cap {
            idx -= cap;
        }
        self.ops[idx] = op;
        self.len += 1;
    }

    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head += 1;
        if self.head == self.ops.len() {
            self.head = 0;
        }
        self.len -= 1;
    }
}

/// Slots in a wakeup wheel; a power of two so the slot index is a mask.
/// Release times beyond the horizon (rare: deep memory-bound windows)
/// spill to a small overflow list.
const WHEEL_SLOTS: usize = 2048;

/// Counting wakeup structure replacing a `BinaryHeap<Reverse<u64>>` of
/// release times. The model only ever asks "how many entries are still
/// held at cycle C?" and "when does the next entry free?", so instead
/// of ordered release times it keeps occupancy *counts* bucketed by
/// release cycle in a power-of-two wheel. Draining advances a cursor;
/// nothing is compared, swapped or allocated.
#[derive(Debug)]
struct WakeupWheel {
    /// Occupancy per wheel slot; slot `t & (WHEEL_SLOTS-1)` is valid
    /// for release times in `(drained_to, drained_to + WHEEL_SLOTS]`.
    counts: Box<[u16]>,
    /// Total occupancy currently bucketed in the wheel.
    live: usize,
    /// Releases at or before this cycle have been drained.
    drained_to: u64,
    /// Release times beyond the wheel horizon.
    overflow: Vec<u64>,
}

impl WakeupWheel {
    fn new() -> Self {
        WakeupWheel {
            counts: vec![0u16; WHEEL_SLOTS].into_boxed_slice(),
            live: 0,
            drained_to: 0,
            overflow: Vec::new(),
        }
    }

    #[inline]
    fn slot(t: u64) -> usize {
        (t & (WHEEL_SLOTS as u64 - 1)) as usize
    }

    /// Entries still held (release time beyond `drained_to`).
    #[inline]
    fn occupancy(&self) -> usize {
        self.live + self.overflow.len()
    }

    /// Record an entry that frees at cycle `at` (must be in the
    /// future relative to the drain cursor).
    #[inline]
    fn push(&mut self, at: u64) {
        debug_assert!(at > self.drained_to);
        if at > self.drained_to + WHEEL_SLOTS as u64 {
            self.overflow.push(at);
        } else {
            self.counts[Self::slot(at)] += 1;
            self.live += 1;
        }
    }

    /// Free every entry whose release time has passed.
    #[inline]
    fn drain_to(&mut self, cycle: u64) {
        if cycle <= self.drained_to {
            return;
        }
        if self.live == 0 && self.overflow.is_empty() {
            // Nothing bucketed: just advance the cursor.
            self.drained_to = cycle;
            return;
        }
        if cycle - self.drained_to >= WHEEL_SLOTS as u64 {
            // The whole wheel span expired at once (long idle skip).
            if self.live > 0 {
                self.counts.fill(0);
                self.live = 0;
            }
            self.drained_to = cycle;
        } else {
            while self.drained_to < cycle {
                self.drained_to += 1;
                let slot = Self::slot(self.drained_to);
                let c = self.counts[slot];
                if c != 0 {
                    self.live -= c as usize;
                    self.counts[slot] = 0;
                }
            }
        }
        if !self.overflow.is_empty() {
            self.rebucket(cycle);
        }
    }

    /// Move overflow releases that fell within the horizon into the
    /// wheel, dropping any that already passed.
    #[cold]
    fn rebucket(&mut self, cycle: u64) {
        let horizon = self.drained_to + WHEEL_SLOTS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let t = self.overflow[i];
            if t <= cycle {
                self.overflow.swap_remove(i);
            } else if t <= horizon {
                self.overflow.swap_remove(i);
                self.counts[Self::slot(t)] += 1;
                self.live += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Earliest release time still held; `u64::MAX` when empty.
    fn next_release(&self) -> u64 {
        if self.live > 0 {
            for d in 1..=WHEEL_SLOTS as u64 {
                let t = self.drained_to + d;
                if self.counts[Self::slot(t)] != 0 {
                    return t;
                }
            }
        }
        self.overflow.iter().copied().min().unwrap_or(u64::MAX)
    }
}

/// Where the sampled-mode state machine stands. `Off` for exact runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SamplePhase {
    /// Exact mode: every µop simulated in detail.
    Off,
    /// Detailed warming after a fast-forward burst: the pipeline
    /// refills and the timing state (MSHRs, store drain, fetch
    /// blocking) re-converges in full detail, but these cycles are
    /// *excluded* from the extrapolation — the SMARTS "detailed
    /// warming" prefix that keeps the cold restart out of the estimate.
    Ramp { left: u64 },
    /// Inside a measured detailed interval; `left` retirements remain.
    Detail { left: u64 },
    /// Interval exhausted: fetch is suspended and the machine drains;
    /// once empty, the next fast-forward burst runs. Drain cycles are
    /// excluded from the extrapolation like ramp cycles — a draining
    /// window has falling throughput and charges its idle wait to
    /// fetch, neither of which the full window does.
    WindDown,
}

/// Cause of a fully-blocked rename cycle — shared between per-cycle
/// stall attribution and the bulk charge on an idle-cycle skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    None,
    Fetch,
    Rat,
    Rob,
    Rs,
    Load,
    Store,
}

/// The per-core pipeline state machine: everything `Core::run`'s cycle
/// loop used to keep on its stack, extracted so one global clock can
/// step several pipelines in lockstep ([`crate::chip::Chip`]).
///
/// [`Pipeline::step`] advances exactly one cycle — retire, warm-up
/// bookkeeping, fetch, rename/dispatch, stall attribution — against the
/// private hierarchy / MMU / predictor it is handed, and returns `true`
/// once the measurement target is met or the trace has drained. A lone
/// pipeline stepped by a trivial `loop` is bit-identical to the original
/// monolithic loop; N pipelines stepped round-robin within each cycle
/// share an [`SharedL3`] deterministically.
#[derive(Debug)]
pub(crate) struct Pipeline {
    rs_cap: usize,
    ldq_cap: usize,
    stq_cap: usize,
    line_shift: u32,
    /// Rename width is positive (idle-skip reasoning assumes the
    /// rename loop runs at least one iteration per cycle).
    can_skip: bool,

    counts: PerfCounts,
    cycle_base: u64,
    in_warmup: bool,
    warmup_ops: u64,
    target: u64,

    // Front end.
    decode_q: OpRing,
    pending: Option<MicroOp>,
    fetch_blocked_until: u64,
    last_fetch_line: u64,
    trace_done: bool,

    // Backend windows: SoA ring + counting wakeup wheels holding the
    // cycle at which each entry frees.
    rob: RobRing,
    rs: WakeupWheel,
    ldq: WakeupWheel,
    stq: WakeupWheel,
    last_store_drain: u64,
    rat_blocked_until: u64,

    completions: [u64; COMPLETION_RING],
    op_idx: u64,
    retired: u64,
    final_cycle: u64,
    /// Whether the most recent [`Pipeline::step`] retired, fetched or
    /// renamed anything. After a productive cycle the next cycle may
    /// act, so the run loops skip the `next_event` probe entirely.
    made_progress: bool,

    // SMARTS sampling.
    plan: Option<SamplePlan>,
    phase: SamplePhase,
    /// µops consumed by fast-forward bursts since simulation start
    /// (counts toward the warm-up and measurement targets).
    ffwd_done: u64,
    /// Fast-forwarded instructions currently included in `counts`
    /// (reset with the rest of the statistics at the warm-up boundary);
    /// `> 0` is what arms the extrapolation in [`Pipeline::finalize`].
    ffwd_in_counts: u64,
    /// Detailed-warming length per burst, derived from the plan: after
    /// each fast-forward the pipeline runs this many µops in full
    /// detail to re-converge timing state before measurement resumes.
    ramp_ops: u64,
    /// LCG state for jittered burst lengths. Fixed-period systematic
    /// sampling aliases with periodic phase behavior in the workload,
    /// so each fast-forward burst draws its length from
    /// `[ffwd_ops/2, 3·ffwd_ops/2)` deterministically — the constant
    /// seed makes same-plan runs bit-identical.
    jitter: u64,
    /// Cycles accumulated inside *completed* measured (`Detail`) spans.
    clean_cycles: u64,
    /// Instructions retired inside completed measured spans — the
    /// extrapolation denominator.
    clean_instr: u64,
    /// Stall-cycle deltas inside completed measured spans, in the order
    /// fetch / rat / rs / rob / load-buffer / store-buffer.
    clean_stalls: [u64; 6],
    /// Counter snapshot taken when the current measured span opened.
    span_start_cycle: u64,
    span_start_instr: u64,
    span_start_stalls: [u64; 6],
    /// Post-warm-up instructions retired per sampling phase, in the
    /// order ramp / detail / fast-forward. Wind-down drain retirements
    /// belong to none of the three (they are excluded from the
    /// extrapolation exactly like ramp cycles). Not part of
    /// [`PerfCounts`] — the store format must not change — these feed
    /// the `dc_sim_phase_instructions_total` metrics at finalize.
    phase_instr: [u64; 3],
}

impl Pipeline {
    pub(crate) fn new(cfg: &CpuConfig, opts: &SimOptions) -> Self {
        let c = cfg.core;
        // Window capacities come straight from the machine description:
        // the rings hold exactly `rob_entries` / `rs_entries` / … slots.
        // Zero-sized windows are rejected here (the `try_with_*`
        // builders refuse them long before a Pipeline is built).
        assert!(
            c.rob_entries > 0 && c.rs_entries > 0 && c.load_buffer > 0 && c.store_buffer > 0,
            "pipeline window capacities must be positive (use CpuConfig::try_with_* builders)"
        );
        if let Some(p) = opts.sample {
            assert!(
                p.detail_ops > 0 && p.ffwd_ops > 0,
                "sampling plan intervals must be positive"
            );
        }
        let dq_cap = c.decode_queue.max(4) as usize;
        Pipeline {
            rs_cap: c.rs_entries as usize,
            ldq_cap: c.load_buffer as usize,
            stq_cap: c.store_buffer as usize,
            line_shift: cfg.l1i.line_bytes.trailing_zeros(),
            can_skip: c.rename_width > 0,
            counts: PerfCounts::default(),
            cycle_base: 0,
            in_warmup: opts.warmup_ops > 0,
            warmup_ops: opts.warmup_ops,
            target: opts.warmup_ops.saturating_add(opts.max_ops),
            decode_q: OpRing::new(dq_cap),
            pending: None,
            fetch_blocked_until: 0,
            last_fetch_line: u64::MAX,
            trace_done: false,
            rob: RobRing::new(c.rob_entries as usize),
            rs: WakeupWheel::new(),
            ldq: WakeupWheel::new(),
            stq: WakeupWheel::new(),
            last_store_drain: 0,
            rat_blocked_until: 0,
            completions: [0u64; COMPLETION_RING],
            op_idx: 0,
            retired: 0,
            final_cycle: 0,
            made_progress: true,
            plan: opts.sample,
            phase: match opts.sample {
                Some(p) => SamplePhase::Detail { left: p.detail_ops },
                None => SamplePhase::Off,
            },
            ffwd_done: 0,
            ffwd_in_counts: 0,
            // A quarter interval of warming re-fills the windows (ROB,
            // queues, MSHRs) many times over; the floor covers tiny
            // detail intervals.
            ramp_ops: opts.sample.map_or(0, |p| (p.detail_ops / 4).max(64)),
            jitter: 0x9E37_79B9_7F4A_7C15,
            clean_cycles: 0,
            clean_instr: 0,
            clean_stalls: [0; 6],
            span_start_cycle: 0,
            span_start_instr: 0,
            span_start_stalls: [0; 6],
            phase_instr: [0; 3],
        }
    }

    /// The six stall counters in `clean_stalls` order.
    #[inline]
    fn stall_snapshot(&self) -> [u64; 6] {
        [
            self.counts.fetch_stall_cycles,
            self.counts.rat_stall_cycles,
            self.counts.rs_full_stall_cycles,
            self.counts.rob_full_stall_cycles,
            self.counts.load_buf_stall_cycles,
            self.counts.store_buf_stall_cycles,
        ]
    }

    /// Open a measured span at `cycle`: record the counter baselines
    /// the matching [`Pipeline::close_span`] will difference against.
    fn open_span(&mut self, cycle: u64) {
        self.span_start_cycle = cycle;
        self.span_start_instr = self.counts.instructions;
        self.span_start_stalls = self.stall_snapshot();
    }

    /// Close the measured span at `cycle` and fold its deltas into the
    /// clean accumulators.
    fn close_span(&mut self, cycle: u64) {
        self.clean_cycles += cycle - self.span_start_cycle;
        self.clean_instr += self.counts.instructions - self.span_start_instr;
        let now = self.stall_snapshot();
        for (acc, (n, s)) in self
            .clean_stalls
            .iter_mut()
            .zip(now.iter().zip(&self.span_start_stalls))
        {
            *acc += n - s;
        }
    }

    /// A sampling interval's retirement budget just hit zero: ramp
    /// graduates into a measured span, a measured span closes and the
    /// machine starts draining toward the next fast-forward burst.
    fn sample_interval_done(&mut self, cycle: u64) {
        match self.phase {
            SamplePhase::Ramp { .. } => {
                let detail = self
                    .plan
                    .expect("sampling phase requires a plan")
                    .detail_ops;
                self.open_span(cycle);
                self.phase = SamplePhase::Detail { left: detail };
            }
            SamplePhase::Detail { .. } => {
                self.close_span(cycle);
                self.phase = SamplePhase::WindDown;
            }
            SamplePhase::Off | SamplePhase::WindDown => {}
        }
    }

    /// µops consumed so far, in either mode (retired in detail or
    /// fast-forwarded) — what the warm-up and measurement targets
    /// count.
    #[inline]
    fn processed(&self) -> u64 {
        self.retired + self.ffwd_done
    }

    /// Advance this core by the one cycle `cycle` (the caller's global
    /// clock, already incremented). Returns `true` when the core is
    /// finished; after that, [`Pipeline::finalize`] reads the counters.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step<T: TraceSource>(
        &mut self,
        cycle: u64,
        cfg: &CpuConfig,
        hier: &mut PrivateHierarchy,
        shared: &mut SharedL3,
        mmu: &mut Mmu,
        bp: &mut BranchPredictor,
        trace: &mut T,
    ) -> bool {
        let c = cfg.core;

        // ---- Retire (in order, width-limited) ----
        let mut retired_now = 0;
        while retired_now < c.retire_width {
            let Some(head) = self.rob.front_complete() else {
                break;
            };
            if head > cycle {
                break;
            }
            let flags = self.rob.pop_front();
            self.retired += 1;
            retired_now += 1;
            self.counts.instructions += 1;
            if flags & FLAG_KERNEL != 0 {
                self.counts.kernel_instructions += 1;
            } else {
                self.counts.user_instructions += 1;
            }
            match &mut self.phase {
                SamplePhase::Ramp { left } => {
                    self.phase_instr[0] += 1;
                    *left -= 1;
                    if *left == 0 {
                        self.sample_interval_done(cycle);
                    }
                }
                SamplePhase::Detail { left } => {
                    self.phase_instr[1] += 1;
                    *left -= 1;
                    if *left == 0 {
                        self.sample_interval_done(cycle);
                    }
                }
                SamplePhase::Off | SamplePhase::WindDown => {}
            }
        }

        // Warm-up boundary: reset this core's statistics, keep state.
        // Shared-level contents (and the other cores' statistics) are
        // deliberately untouched; this core's L3 traffic is tracked by
        // its private attribution counters, which do reset here.
        if self.in_warmup && self.processed() >= self.warmup_ops {
            self.in_warmup = false;
            self.counts = PerfCounts::default();
            hier.reset_stats();
            mmu.reset_stats();
            bp.reset_stats();
            self.cycle_base = cycle;
            self.ffwd_in_counts = 0;
            self.clean_cycles = 0;
            self.clean_instr = 0;
            self.clean_stalls = [0; 6];
            self.phase_instr = [0; 3];
            if matches!(self.phase, SamplePhase::Detail { .. }) {
                // Mid-span boundary: the span restarts on the fresh
                // (all-zero) counter baselines.
                self.open_span(cycle);
            }
        }
        if self.processed() >= self.target {
            self.final_cycle = cycle;
            return true;
        }

        // ---- SMARTS fast-forward: the wind-down drained the machine ----
        if matches!(self.phase, SamplePhase::WindDown)
            && !self.trace_done
            && self.pending.is_none()
            && self.decode_q.is_empty()
            && self.rob.is_empty()
        {
            self.fast_forward(cycle, hier, shared, mmu, bp, trace);
        }

        // ---- Fetch into the decode queue ----
        let suspend_fetch = matches!(self.phase, SamplePhase::WindDown);
        let mut fetched = 0;
        if cycle >= self.fetch_blocked_until {
            while fetched < c.fetch_width && !self.decode_q.is_full() {
                // A pending op already paid its fetch penalty.
                let op = match self.pending.take() {
                    Some(op) => op,
                    None => {
                        if suspend_fetch {
                            break;
                        }
                        match trace.next_op() {
                            Some(op) => op,
                            None => {
                                self.trace_done = true;
                                break;
                            }
                        }
                    }
                };
                // New cache line ⇒ I-cache + ITLB access.
                let line = op.pc >> self.line_shift;
                if line != self.last_fetch_line {
                    self.last_fetch_line = line;
                    let (_, tlb_lat) = mmu.translate_inst(op.pc);
                    let (_, i_lat) = hier.fetch_inst(shared, op.pc, cycle);
                    let penalty = u64::from(tlb_lat) + u64::from(i_lat);
                    if penalty > 0 {
                        // Line fetch in flight: the op arrives when it
                        // resolves.
                        self.fetch_blocked_until = cycle + penalty;
                        self.pending = Some(op);
                        break;
                    }
                }
                // Branch prediction (front-end redirect on mispredict).
                if let OpKind::Branch { taken, target } = op.kind {
                    let correct = bp.predict_and_train(op.pc, taken, target);
                    self.decode_q.push_back(op);
                    fetched += 1;
                    if !correct {
                        self.fetch_blocked_until = cycle + u64::from(c.mispredict_penalty);
                        break;
                    }
                    continue;
                }
                self.decode_q.push_back(op);
                fetched += 1;
            }
        }

        // ---- Rename / dispatch ----
        let mut renamed = 0;
        // Per-cycle issue-port budgets (Westmere: one load port, one
        // store port, two FP units).
        let mut load_ports = 1u32;
        let mut store_ports = 1u32;
        let mut fp_ports = 2u32;
        // Cause of the first blockage this cycle (for attribution).
        let mut block = Block::None;

        // Free backend entries whose release time has passed. Nothing
        // dispatched *this* cycle frees this cycle, so draining once up
        // front is identical to draining inside the rename loop.
        self.rs.drain_to(cycle);
        self.ldq.drain_to(cycle);
        self.stq.drain_to(cycle);

        while renamed < c.rename_width {
            if self.rat_blocked_until > cycle {
                block = Block::Rat;
                break;
            }
            let Some(&op) = self.decode_q.front() else {
                block = Block::Fetch;
                break;
            };
            if self.rob.is_full() {
                block = Block::Rob;
                break;
            }
            if self.rs.occupancy() >= self.rs_cap {
                block = Block::Rs;
                break;
            }
            if op.kind.is_load() && self.ldq.occupancy() >= self.ldq_cap {
                block = Block::Load;
                break;
            }
            if op.kind.is_store() && self.stq.occupancy() >= self.stq_cap {
                block = Block::Store;
                break;
            }
            // Issue-port throughput limits end the rename group
            // without charging a stall (width effect, not a stall).
            match op.kind {
                OpKind::Load { .. } if load_ports == 0 => break,
                OpKind::Store { .. } if store_ports == 0 => break,
                OpKind::FpAlu if fp_ports == 0 => break,
                _ => {}
            }
            match op.kind {
                OpKind::Load { .. } => load_ports -= 1,
                OpKind::Store { .. } => store_ports -= 1,
                OpKind::FpAlu => fp_ports -= 1,
                _ => {}
            }
            self.decode_q.pop_front();
            if op.rat_hazard {
                self.rat_blocked_until = cycle + u64::from(c.rat_hazard_penalty);
            }

            // Dispatch: compute readiness and completion.
            let mut ready = cycle + 1;
            let dep = u64::from(op.dep_dist);
            if dep > 0 && self.op_idx >= dep {
                let producer =
                    self.completions[((self.op_idx - dep) % COMPLETION_RING as u64) as usize];
                ready = ready.max(producer);
            }
            let complete = match op.kind {
                OpKind::IntAlu => ready + u64::from(cfg.exec.int_alu),
                OpKind::IntMul => ready + u64::from(cfg.exec.int_mul),
                OpKind::Div => ready + u64::from(cfg.exec.div),
                OpKind::FpAlu => ready + u64::from(cfg.exec.fp_alu),
                OpKind::Branch { .. } => ready + u64::from(cfg.exec.int_alu),
                OpKind::Load { addr, .. } => {
                    self.counts.loads += 1;
                    let (_, tlb_lat) = mmu.translate_data(addr);
                    let (_, mem_lat) = hier.access_data(shared, addr, cycle);
                    let done = ready + u64::from(tlb_lat) + u64::from(mem_lat);
                    self.ldq.push(done);
                    done
                }
                OpKind::Store { addr, .. } => {
                    self.counts.stores += 1;
                    let (_, tlb_lat) = mmu.translate_data(addr);
                    let exec_done = ready + 1 + u64::from(tlb_lat);
                    // In-order store-buffer drain: L1 hits drain at
                    // one per cycle; misses overlap ~3-deep (write
                    // combining / RFO MLP).
                    let (lvl, drain_lat) = hier.access_data(shared, addr, cycle);
                    let cost = if lvl == crate::cache::MemLevel::L1 {
                        1
                    } else {
                        u64::from(drain_lat) / 3
                    };
                    let drain_done = self.last_store_drain.max(exec_done) + cost;
                    self.last_store_drain = drain_done;
                    self.stq.push(drain_done);
                    exec_done
                }
            };
            self.rs.push(ready);
            self.rob.push(complete, op.mode == Mode::Kernel);
            self.completions[(self.op_idx % COMPLETION_RING as u64) as usize] = complete;
            self.op_idx += 1;
            renamed += 1;
        }

        // A cycle in which no stage moved cannot start moving on its
        // own; the run loops only consult `next_event` after such a
        // cycle (calling it after a productive cycle would be correct
        // too, merely wasted work).
        self.made_progress = retired_now > 0 || fetched > 0 || renamed > 0;

        // ---- Stall attribution (paper-style: a fully blocked rename
        // cycle is charged to its first cause) ----
        if renamed == 0 {
            let draining = self.trace_done && self.pending.is_none() && self.decode_q.is_empty();
            match block {
                Block::Fetch if !draining => self.counts.fetch_stall_cycles += 1,
                Block::Rat => self.counts.rat_stall_cycles += 1,
                Block::Rob => self.counts.rob_full_stall_cycles += 1,
                Block::Rs => self.counts.rs_full_stall_cycles += 1,
                Block::Load => self.counts.load_buf_stall_cycles += 1,
                Block::Store => self.counts.store_buf_stall_cycles += 1,
                _ => {}
            }
        }

        // Termination: trace drained and backend empty.
        if self.trace_done
            && self.pending.is_none()
            && self.decode_q.is_empty()
            && self.rob.is_empty()
        {
            self.final_cycle = cycle;
            return true;
        }
        false
    }

    /// Functionally execute one fast-forward burst: consume up to
    /// `ffwd_ops` µops updating only caches, TLBs and the predictor —
    /// the long-lived state SMARTS warming must keep hot — while the
    /// global clock stands still. A synthetic clock advancing at the
    /// detailed-phase CPI paces memory-channel bookings; the channel
    /// backlog is re-anchored to the global clock when the burst ends.
    fn fast_forward<T: TraceSource>(
        &mut self,
        cycle: u64,
        hier: &mut PrivateHierarchy,
        shared: &mut SharedL3,
        mmu: &mut Mmu,
        bp: &mut BranchPredictor,
        trace: &mut T,
    ) {
        let plan = self.plan.expect("fast_forward requires a sampling plan");
        // Deterministic integer CPI estimate from the detailed cycles
        // so far, clamped to a sane band.
        let cpi = cycle
            .checked_div(self.retired)
            .map_or(1, |c| c.clamp(1, 16));
        let mut now = cycle;
        // Jittered burst length (see the `jitter` field): mean
        // `ffwd_ops`, uniform over ±50%, deterministic sequence.
        self.jitter = self
            .jitter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let half = plan.ffwd_ops / 2;
        let mut left = if half > 0 {
            (plan.ffwd_ops - half + (self.jitter >> 33) % (2 * half)).max(1)
        } else {
            plan.ffwd_ops
        };
        while left > 0 {
            let Some(op) = trace.next_op() else {
                self.trace_done = true;
                break;
            };
            left -= 1;
            // Advance at the detailed CPI, plus the bandwidth feedback
            // the detailed machine would see: a saturated channel
            // stalls retire, so time jumps to the relief point rather
            // than letting the synthetic clock sit inside a
            // permanently-backlogged channel (which would drop
            // prefetches the detailed run issues).
            now = (now + cpi).max(shared.channel_relief());
            self.ffwd_done += 1;
            self.ffwd_in_counts += 1;
            self.phase_instr[2] += 1;
            self.counts.instructions += 1;
            match op.mode {
                Mode::User => self.counts.user_instructions += 1,
                Mode::Kernel => self.counts.kernel_instructions += 1,
            }
            let line = op.pc >> self.line_shift;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                let _ = mmu.translate_inst(op.pc);
                let _ = hier.fetch_inst(shared, op.pc, now);
            }
            match op.kind {
                OpKind::Branch { taken, target } => {
                    let _ = bp.predict_and_train(op.pc, taken, target);
                }
                OpKind::Load { addr, .. } => {
                    self.counts.loads += 1;
                    let _ = mmu.translate_data(addr);
                    let _ = hier.access_data(shared, addr, now);
                }
                OpKind::Store { addr, .. } => {
                    self.counts.stores += 1;
                    let _ = mmu.translate_data(addr);
                    let _ = hier.access_data(shared, addr, now);
                }
                _ => {}
            }
            // The warm-up boundary may fall inside a burst.
            if self.in_warmup && self.processed() >= self.warmup_ops {
                self.in_warmup = false;
                self.counts = PerfCounts::default();
                hier.reset_stats();
                mmu.reset_stats();
                bp.reset_stats();
                self.cycle_base = cycle;
                self.ffwd_in_counts = 0;
                self.clean_cycles = 0;
                self.clean_instr = 0;
                self.clean_stalls = [0; 6];
                self.phase_instr = [0; 3];
            }
            if self.processed() >= self.target {
                break;
            }
        }
        shared.rewind_channel(now, cycle);
        // Re-enter detail through the warming prefix; the measured span
        // only opens once the refilled pipeline has re-converged.
        self.phase = SamplePhase::Ramp {
            left: self.ramp_ops,
        };
    }

    /// The earliest future global cycle at which [`Pipeline::step`]
    /// could perform observable work, given the state after the step at
    /// `cycle`, plus the stall cause every intervening cycle would be
    /// charged to. `None` when the very next cycle might act (or when
    /// skipping is not provably safe). The run loops use this to jump
    /// the clock over idle stretches; [`Pipeline::charge_idle`] applies
    /// the bulk attribution.
    pub(crate) fn next_event(&mut self, cycle: u64) -> Option<(u64, Block)> {
        if !self.can_skip {
            return None;
        }
        let mut bound = u64::MAX;
        // Retire: the ROB head frees at its completion cycle.
        if let Some(head) = self.rob.front_complete() {
            if head <= cycle + 1 {
                return None;
            }
            bound = bound.min(head);
        }
        // Fetch: next activity at `fetch_blocked_until`, unless fetch
        // has nothing to do until other stages move first.
        let fetch_idle = self.decode_q.is_full()
            || (self.pending.is_none()
                && (self.trace_done || matches!(self.phase, SamplePhase::WindDown)));
        if !fetch_idle {
            if self.fetch_blocked_until <= cycle + 1 {
                return None;
            }
            bound = bound.min(self.fetch_blocked_until);
        }
        // Rename blocker at cycle+1, with all other state frozen until
        // `bound`. The checks mirror the rename loop's first iteration.
        let block;
        if self.rat_blocked_until > cycle + 1 {
            block = Block::Rat;
            bound = bound.min(self.rat_blocked_until);
        } else if let Some(op) = self.decode_q.front() {
            let kind = op.kind;
            self.rs.drain_to(cycle + 1);
            self.ldq.drain_to(cycle + 1);
            self.stq.drain_to(cycle + 1);
            if self.rob.is_full() {
                // Frees on retire; `bound` already holds the head's
                // completion cycle.
                block = Block::Rob;
            } else if self.rs.occupancy() >= self.rs_cap {
                block = Block::Rs;
                bound = bound.min(self.rs.next_release());
            } else if kind.is_load() && self.ldq.occupancy() >= self.ldq_cap {
                block = Block::Load;
                bound = bound.min(self.ldq.next_release());
            } else if kind.is_store() && self.stq.occupancy() >= self.stq_cap {
                block = Block::Store;
                bound = bound.min(self.stq.next_release());
            } else {
                // Rename proceeds next cycle.
                return None;
            }
        } else {
            // Starved decode queue: fetch activity is bounded above.
            block = Block::Fetch;
        }
        if bound == u64::MAX {
            return None;
        }
        Some((bound, block))
    }

    /// Bulk-charge `cycles` skipped idle cycles to the stall counter
    /// the stepped loop would have charged them to.
    pub(crate) fn charge_idle(&mut self, block: Block, cycles: u64) {
        match block {
            Block::Fetch => {
                let draining =
                    self.trace_done && self.pending.is_none() && self.decode_q.is_empty();
                if !draining {
                    self.counts.fetch_stall_cycles += cycles;
                }
            }
            Block::Rat => self.counts.rat_stall_cycles += cycles,
            Block::Rob => self.counts.rob_full_stall_cycles += cycles,
            Block::Rs => self.counts.rs_full_stall_cycles += cycles,
            Block::Load => self.counts.load_buf_stall_cycles += cycles,
            Block::Store => self.counts.store_buf_stall_cycles += cycles,
            Block::None => {}
        }
    }

    /// Whether the most recent step performed observable work (see the
    /// field). `true` before the first step.
    #[inline]
    pub(crate) fn made_progress(&self) -> bool {
        self.made_progress
    }

    /// Whether this pipeline is still inside its warm-up window.
    pub(crate) fn in_warmup(&self) -> bool {
        self.in_warmup
    }

    /// The global cycle at which statistics were last reset (0 until
    /// the warm-up boundary passes).
    pub(crate) fn cycle_base(&self) -> u64 {
        self.cycle_base
    }

    /// Copy structure statistics into the counter block and return it.
    /// In sampled mode, extrapolate cycle-denominated counters to the
    /// whole window from the *measured spans only* (integer math, u128
    /// intermediate): `scaled = span_value × total_instr / span_instr`.
    /// Ramp and wind-down cycles are detailed but unrepresentative —
    /// pipeline refill and drain tail — so they enter neither the
    /// numerator nor the denominator (SMARTS detailed warming). Event
    /// counts stay as measured: every op touched the real structures.
    /// Post-warm-up instructions retired per sampling phase:
    /// `(ramp, detail, ffwd)`. All zero in exact mode.
    #[cfg(test)]
    pub(crate) fn phase_instructions(&self) -> (u64, u64, u64) {
        (
            self.phase_instr[0],
            self.phase_instr[1],
            self.phase_instr[2],
        )
    }

    /// Publish the per-phase instruction split into the process-wide
    /// metrics registry (`dc_sim_phase_instructions_total{phase=…}`).
    /// Called once per finalized sampled window — three counter adds,
    /// nothing on the cycle loop's hot path.
    fn publish_phase_metrics(&self) {
        if self.plan.is_none() {
            return;
        }
        let reg = dc_obs::metrics::global();
        for (phase, n) in [("ramp", 0usize), ("detail", 1), ("ffwd", 2)] {
            reg.counter("dc_sim_phase_instructions_total", &[("phase", phase)])
                .add(self.phase_instr[n]);
        }
    }

    pub(crate) fn finalize(
        &self,
        hier: &PrivateHierarchy,
        mmu: &Mmu,
        bp: &BranchPredictor,
    ) -> PerfCounts {
        self.publish_phase_metrics();
        let mut counts = self.snapshot(self.final_cycle, hier, mmu, bp);
        if self.plan.is_some() && self.ffwd_in_counts > 0 {
            let mut span_cycles = self.clean_cycles;
            let mut span_instr = self.clean_instr;
            let mut span_stalls = self.clean_stalls;
            if matches!(self.phase, SamplePhase::Detail { .. }) {
                // The window ended inside an open measured span.
                span_cycles += self.final_cycle - self.span_start_cycle;
                span_instr += self.counts.instructions - self.span_start_instr;
                let now = self.stall_snapshot();
                for (acc, (n, s)) in span_stalls
                    .iter_mut()
                    .zip(now.iter().zip(&self.span_start_stalls))
                {
                    *acc += n - s;
                }
            }
            let total = counts.instructions as u128;
            if span_instr > 0 {
                let scale = |v: u64| ((v as u128 * total) / span_instr as u128) as u64;
                counts.cycles = scale(span_cycles);
                counts.fetch_stall_cycles = scale(span_stalls[0]);
                counts.rat_stall_cycles = scale(span_stalls[1]);
                counts.rs_full_stall_cycles = scale(span_stalls[2]);
                counts.rob_full_stall_cycles = scale(span_stalls[3]);
                counts.load_buf_stall_cycles = scale(span_stalls[4]);
                counts.store_buf_stall_cycles = scale(span_stalls[5]);
            } else {
                // Degenerate window that never completed a measured
                // span: fall back to scaling the raw detailed counters.
                let detailed = counts.instructions.saturating_sub(self.ffwd_in_counts) as u128;
                if detailed > 0 {
                    let scale = |v: u64| ((v as u128 * total) / detailed) as u64;
                    counts.cycles = scale(counts.cycles);
                    counts.fetch_stall_cycles = scale(counts.fetch_stall_cycles);
                    counts.rat_stall_cycles = scale(counts.rat_stall_cycles);
                    counts.rob_full_stall_cycles = scale(counts.rob_full_stall_cycles);
                    counts.rs_full_stall_cycles = scale(counts.rs_full_stall_cycles);
                    counts.load_buf_stall_cycles = scale(counts.load_buf_stall_cycles);
                    counts.store_buf_stall_cycles = scale(counts.store_buf_stall_cycles);
                }
            }
        }
        counts
    }

    /// The counter block as it stands at global cycle `at_cycle`, with
    /// structure statistics copied in — [`Pipeline::finalize`] is the
    /// `at_cycle == final_cycle` case. Counters only ever increase
    /// between snapshots (within one measurement window), so
    /// consecutive snapshots difference cleanly
    /// ([`PerfCounts::delta_since`]).
    pub(crate) fn snapshot(
        &self,
        at_cycle: u64,
        hier: &PrivateHierarchy,
        mmu: &Mmu,
        bp: &BranchPredictor,
    ) -> PerfCounts {
        let mut counts = self.counts;
        counts.cycles = at_cycle - self.cycle_base;
        counts.l1i_accesses = hier.l1i.accesses;
        counts.l1i_misses = hier.l1i.misses;
        counts.l1d_accesses = hier.l1d.accesses;
        counts.l1d_misses = hier.l1d.misses;
        counts.l2_accesses = hier.l2.accesses;
        counts.l2_misses = hier.l2.misses;
        counts.l3_accesses = hier.l3_accesses;
        counts.l3_misses = hier.l3_misses;
        counts.prefetches = hier.prefetches;
        counts.itlb_accesses = mmu.istats.accesses;
        counts.itlb_misses = mmu.istats.l1_misses;
        counts.itlb_walks = mmu.istats.walks;
        counts.dtlb_accesses = mmu.dstats.accesses;
        counts.dtlb_misses = mmu.dstats.l1_misses;
        counts.dtlb_walks = mmu.dstats.walks;
        counts.branches = bp.branches;
        counts.branch_mispredicts = bp.mispredicts;
        counts
    }
}

/// The simulated core: real cache/TLB/predictor structures plus the
/// timestamp pipeline model.
#[derive(Debug)]
pub struct Core {
    cfg: CpuConfig,
    hier: Hierarchy,
    mmu: Mmu,
    bp: BranchPredictor,
}

// The parallel characterization pipeline ships whole simulations to
// worker threads; every piece of sim state must stay `Send`. Checked
// at compile time so a future `Rc`/raw-pointer refactor cannot
// silently serialize the pipeline.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Core>();
    assert_send::<CpuConfig>();
    assert_send::<SimOptions>();
    assert_send::<PerfCounts>();
};

impl Core {
    /// Build a core for the given machine configuration.
    pub fn new(cfg: CpuConfig) -> Self {
        Core {
            hier: Hierarchy::new(&cfg),
            mmu: Mmu::new(&cfg),
            bp: BranchPredictor::new(&cfg),
            cfg,
        }
    }

    /// The machine configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Run `trace` through the pipeline and return the measured counters.
    ///
    /// Simulation retires `opts.warmup_ops` µops with statistics
    /// discarded (structures stay warm), then measures until
    /// `opts.max_ops` further µops have retired or the trace ends.
    pub fn run<T: TraceSource>(&mut self, mut trace: T, opts: &SimOptions) -> PerfCounts {
        let mut pipe = Pipeline::new(&self.cfg, opts);
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            let done = pipe.step(
                cycle,
                &self.cfg,
                &mut self.hier.private,
                &mut self.hier.shared,
                &mut self.mmu,
                &mut self.bp,
                &mut trace,
            );
            if done {
                break;
            }
            // Idle-cycle skip: after an unproductive cycle, jump over
            // cycles in which no stage can act, with identical bulk
            // stall attribution.
            if !pipe.made_progress() {
                if let Some((bound, block)) = pipe.next_event(cycle) {
                    if bound > cycle + 1 {
                        pipe.charge_idle(block, bound - 1 - cycle);
                        cycle = bound - 1;
                    }
                }
            }
        }
        pipe.finalize(&self.hier.private, &self.mmu, &self.bp)
    }

    /// Like [`Core::run`], but additionally snapshot the counters every
    /// `every_cycles` simulated cycles (a `perf stat -I`-style series).
    ///
    /// The returned [`SampledRun`] holds the per-interval counter
    /// *deltas* plus the aggregate block. The aggregate is
    /// **bit-identical** to what [`Core::run`] returns for the same
    /// trace and options — sampling reads pipeline state, it never
    /// perturbs it — and the deltas telescope: accumulating them
    /// reproduces the aggregate exactly. The interval clock restarts at
    /// the warm-up boundary along with the statistics, so samples cover
    /// precisely the measured window.
    ///
    /// # Panics
    ///
    /// Panics if `every_cycles` is zero, or if `opts` enables SMARTS
    /// sampling (interval series require the exact cycle clock).
    pub fn run_sampled<T: TraceSource>(
        &mut self,
        mut trace: T,
        opts: &SimOptions,
        every_cycles: u64,
    ) -> SampledRun {
        assert!(
            opts.sample.is_none(),
            "interval sampling requires exact mode (SimOptions::sample must be None)"
        );
        let mut pipe = Pipeline::new(&self.cfg, opts);
        let mut sampler = Sampler::new(every_cycles);
        let mut was_warm = pipe.in_warmup();
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            let done = pipe.step(
                cycle,
                &self.cfg,
                &mut self.hier.private,
                &mut self.hier.shared,
                &mut self.mmu,
                &mut self.bp,
                &mut trace,
            );
            if was_warm && !pipe.in_warmup() {
                sampler.rearm(pipe.cycle_base());
                was_warm = false;
            }
            if done {
                break;
            }
            sampler.observe(cycle, &pipe, &self.hier.private, &self.mmu, &self.bp);
            // Idle skips stop at the sampler's next boundary so every
            // interval closes at exactly the cycle it would have.
            if !pipe.made_progress() {
                if let Some((bound, block)) = pipe.next_event(cycle) {
                    let bound = bound.min(sampler.next_at());
                    if bound > cycle + 1 {
                        pipe.charge_idle(block, bound - 1 - cycle);
                        cycle = bound - 1;
                    }
                }
            }
        }
        let aggregate = pipe.finalize(&self.hier.private, &self.mmu, &self.bp);
        let samples = sampler.finish(aggregate);
        SampledRun {
            every_cycles,
            aggregate,
            samples,
        }
    }
}

/// Convenience: simulate a trace on a fresh core with the given config.
pub fn simulate<T: TraceSource>(trace: T, cfg: &CpuConfig, opts: &SimOptions) -> PerfCounts {
    Core::new(cfg.clone()).run(trace, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_trace::profile::{AccessPattern, WorkloadProfile};
    use dc_trace::{MicroOp, SyntheticTrace};

    /// A dense stream of independent ALU ops in one cache line.
    fn alu_stream(n: usize) -> impl Iterator<Item = MicroOp> {
        (0..n).map(|_| MicroOp::int_alu(0x40_0000))
    }

    /// Step a pipeline without idle-cycle skipping: the reference loop
    /// the skip path must match bit-for-bit.
    fn run_unskipped<T: TraceSource>(
        mut trace: T,
        cfg: &CpuConfig,
        opts: &SimOptions,
    ) -> PerfCounts {
        let mut core = Core::new(cfg.clone());
        let mut pipe = Pipeline::new(cfg, opts);
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            let done = pipe.step(
                cycle,
                cfg,
                &mut core.hier.private,
                &mut core.hier.shared,
                &mut core.mmu,
                &mut core.bp,
                &mut trace,
            );
            if done {
                break;
            }
        }
        pipe.finalize(&core.hier.private, &core.mmu, &core.bp)
    }

    #[test]
    fn ideal_alu_stream_approaches_width() {
        let cfg = CpuConfig::westmere_e5645();
        let counts = simulate(
            alu_stream(500_000),
            &cfg,
            &SimOptions::exact(400_000, 50_000),
        );
        let ipc = counts.ipc();
        assert!(
            ipc > 3.0,
            "independent ALU ops should near the 4-wide limit: {ipc}"
        );
        assert!(counts.instructions >= 400_000);
    }

    #[test]
    fn serial_dependence_chain_limits_ipc_to_one() {
        let cfg = CpuConfig::westmere_e5645();
        let ops = (0..300_000).map(|_| {
            let mut op = MicroOp::int_alu(0x40_0000);
            op.dep_dist = 1; // every op depends on its predecessor
            op
        });
        let counts = simulate(ops, &cfg, &SimOptions::exact(200_000, 20_000));
        let ipc = counts.ipc();
        assert!(ipc < 1.15, "a serial chain cannot exceed 1 op/cycle: {ipc}");
        assert!(ipc > 0.7, "chain should still sustain ~1 op/cycle: {ipc}");
    }

    #[test]
    fn memory_bound_stream_has_low_ipc_and_rob_stalls() {
        let cfg = CpuConfig::westmere_e5645().with_prefetch(false);
        // Random loads over 256 MiB: miss everywhere, dependent in pairs.
        let mut x = 1u64;
        let ops = (0..200_000).map(move |i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (0x1000_0000 + ((x >> 16) % (256 << 20))) & !7;
            let mut op = MicroOp::load(0x40_0000 + (i % 16) * 4, addr);
            op.dep_dist = 2;
            op
        });
        let counts = simulate(ops, &cfg, &SimOptions::exact(100_000, 10_000));
        assert!(counts.ipc() < 0.5, "ipc={}", counts.ipc());
        assert!(
            counts.rob_full_stall_cycles
                + counts.rs_full_stall_cycles
                + counts.load_buf_stall_cycles
                > counts.fetch_stall_cycles,
            "memory-bound work stalls in the OoO part"
        );
    }

    #[test]
    fn huge_code_footprint_causes_fetch_stalls() {
        let cfg = CpuConfig::westmere_e5645();
        // Jump through 4 MiB of code: every line is cold or L2-resident.
        let mut x = 7u64;
        let ops = (0..200_000).map(move |_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = (0x40_0000 + ((x >> 20) % (4 << 20))) & !63;
            MicroOp::int_alu(pc)
        });
        let counts = simulate(ops, &cfg, &SimOptions::exact(100_000, 10_000));
        assert!(counts.l1i_mpki() > 100.0, "l1i mpki={}", counts.l1i_mpki());
        let breakdown = counts.stall_breakdown();
        assert!(
            breakdown[0] > 0.5,
            "fetch stalls should dominate: {breakdown:?}"
        );
        assert!(counts.ipc() < 1.0);
    }

    #[test]
    fn rat_hazards_cause_rat_stalls() {
        let cfg = CpuConfig::westmere_e5645();
        let ops = (0..200_000).map(|i| {
            let mut op = MicroOp::int_alu(0x40_0000);
            op.rat_hazard = i % 8 == 0;
            op
        });
        let counts = simulate(ops, &cfg, &SimOptions::exact(100_000, 10_000));
        assert!(counts.rat_stall_cycles > 0);
        let b = counts.stall_breakdown();
        assert!(b[1] > 0.5, "RAT should dominate stalls here: {b:?}");
    }

    #[test]
    fn streaming_stores_fill_store_buffer() {
        let cfg = CpuConfig::westmere_e5645().with_prefetch(false);
        let ops = (0..200_000).map(|i| {
            // Every op is a store to a new line over 64 MiB.
            MicroOp::store(0x40_0000, 0x2000_0000 + i * 64)
        });
        let counts = simulate(ops, &cfg, &SimOptions::exact(100_000, 10_000));
        assert!(
            counts.store_buf_stall_cycles > counts.fetch_stall_cycles,
            "store drain should be the bottleneck"
        );
        assert!(counts.ipc() < 0.25);
    }

    #[test]
    fn mispredicts_slow_the_front_end() {
        let cfg = CpuConfig::westmere_e5645();
        let mut x = 3u64;
        let random_branches = (0..200_000).map(move |i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            MicroOp::branch(0x40_0000 + (i % 4) * 4, (x >> 30) & 1 == 1, 0x40_1000)
        });
        let counts_bad = simulate(random_branches, &cfg, &SimOptions::exact(100_000, 10_000));
        let steady_branches =
            (0..200_000).map(|i| MicroOp::branch(0x40_0000 + (i % 4) * 4, true, 0x40_1000));
        let counts_good = simulate(steady_branches, &cfg, &SimOptions::exact(100_000, 10_000));
        assert!(counts_bad.branch_misprediction_ratio() > 0.3);
        assert!(counts_good.branch_misprediction_ratio() < 0.02);
        assert!(counts_bad.ipc() < counts_good.ipc() * 0.5);
    }

    #[test]
    fn kernel_instructions_counted_separately() {
        let cfg = CpuConfig::westmere_e5645();
        let ops = (0..100_000).map(|i| {
            let mut op = MicroOp::int_alu(0x40_0000);
            if i % 4 == 0 {
                op.mode = Mode::Kernel;
            }
            op
        });
        let counts = simulate(ops, &cfg, &SimOptions::exact(80_000, 8_000));
        let f = counts.kernel_fraction();
        assert!((f - 0.25).abs() < 0.02, "kernel fraction {f}");
    }

    #[test]
    fn trace_shorter_than_budget_terminates() {
        let cfg = CpuConfig::westmere_e5645();
        let counts = simulate(alu_stream(5_000), &cfg, &SimOptions::exact(1_000_000, 0));
        assert_eq!(counts.instructions, 5_000);
        assert!(counts.cycles > 0);
    }

    #[test]
    fn warmup_discards_cold_misses() {
        let cfg = CpuConfig::westmere_e5645();
        // Loop over 16 KiB of data: everything fits L1D after one pass.
        let ops = (0..400_000u64).map(|i| MicroOp::load(0x40_0000, 0x1000_0000 + (i % 2048) * 8));
        let counts = simulate(ops, &cfg, &SimOptions::exact(200_000, 100_000));
        assert!(
            counts.l1d_misses < 100,
            "post-warm-up L1D should be hot: {} misses",
            counts.l1d_misses
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = CpuConfig::westmere_e5645();
        let mk = || {
            (0..50_000u64).map(|i| {
                let mut op = MicroOp::load(
                    0x40_0000 + (i % 256) * 4,
                    (0x1000_0000 + (i * 2654435761 % (8 << 20))) & !7,
                );
                op.dep_dist = (i % 5) as u16;
                op
            })
        };
        let a = simulate(mk(), &cfg, &SimOptions::quick());
        let b = simulate(mk(), &cfg, &SimOptions::quick());
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_rob_increases_ooo_stalls() {
        let mk = || {
            let mut x = 1u64;
            (0..300_000).map(move |_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = (0x1000_0000 + ((x >> 16) % (64 << 20))) & !7;
                MicroOp::load(0x40_0000, addr)
            })
        };
        let big = simulate(
            mk(),
            &CpuConfig::westmere_e5645(),
            &SimOptions::exact(150_000, 15_000),
        );
        let small = simulate(
            mk(),
            &CpuConfig::westmere_e5645().with_rob_entries(32),
            &SimOptions::exact(150_000, 15_000),
        );
        assert!(small.ipc() <= big.ipc());
        assert!(small.rob_full_stall_cycles >= big.rob_full_stall_cycles);
    }

    // ---- SoA / wakeup-wheel / idle-skip regression tests ----

    #[test]
    fn wakeup_wheel_counts_and_overflow() {
        let mut w = WakeupWheel::new();
        assert_eq!(w.occupancy(), 0);
        assert_eq!(w.next_release(), u64::MAX);
        w.push(5);
        w.push(5);
        w.push(100);
        // Beyond the horizon: goes to overflow.
        let far = WHEEL_SLOTS as u64 + 1_000;
        w.push(far);
        assert_eq!(w.occupancy(), 4);
        assert_eq!(w.next_release(), 5);
        w.drain_to(5);
        assert_eq!(w.occupancy(), 2);
        assert_eq!(w.next_release(), 100);
        w.drain_to(99);
        assert_eq!(w.occupancy(), 2);
        w.drain_to(100);
        assert_eq!(w.occupancy(), 1);
        // The overflow entry is re-bucketed once within the horizon.
        assert_eq!(w.next_release(), far);
        w.drain_to(far - 1);
        assert_eq!(w.occupancy(), 1);
        w.drain_to(far);
        assert_eq!(w.occupancy(), 0);
        assert_eq!(w.next_release(), u64::MAX);
    }

    #[test]
    fn wakeup_wheel_wholesale_expiry_on_long_skip() {
        let mut w = WakeupWheel::new();
        for t in [3u64, 7, 1_000, 2_000] {
            w.push(t);
        }
        w.push(3 * WHEEL_SLOTS as u64); // overflow
        assert_eq!(w.occupancy(), 5);
        // Jump far past the whole wheel span in one drain.
        w.drain_to(2 * WHEEL_SLOTS as u64);
        assert_eq!(w.occupancy(), 1);
        assert_eq!(w.next_release(), 3 * WHEEL_SLOTS as u64);
        w.drain_to(4 * WHEEL_SLOTS as u64);
        assert_eq!(w.occupancy(), 0);
    }

    /// Satellite 2: the SoA ring sizes exactly from the config — a
    /// one-entry ROB change moves the stall profile, with no rounding
    /// of capacities (regression at the ROB=32 sweep point).
    #[test]
    fn rob_capacity_is_exact_at_sweep_point() {
        let mk = || {
            let mut x = 9u64;
            (0..200_000).map(move |_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = (0x1000_0000 + ((x >> 16) % (128 << 20))) & !7;
                let mut op = MicroOp::load(0x40_0000, addr);
                op.dep_dist = 1;
                op
            })
        };
        let opts = SimOptions::exact(80_000, 8_000);
        let at = |rob: u32| {
            simulate(
                mk(),
                &CpuConfig::westmere_e5645()
                    .with_prefetch(false)
                    .with_rob_entries(rob),
                &opts,
            )
        };
        let c31 = at(31);
        let c32 = at(32);
        let c33 = at(33);
        // Strict per-entry sensitivity: each extra ROB slot can only
        // help a window-bound workload, so no hidden rounding to a
        // larger backing capacity is possible.
        assert!(c31.cycles >= c32.cycles && c32.cycles >= c33.cycles);
        assert!(
            c31.cycles > c33.cycles,
            "a 2-entry ROB delta must be visible: {} vs {}",
            c31.cycles,
            c33.cycles
        );
    }

    #[test]
    #[should_panic(expected = "capacities must be positive")]
    fn zero_rob_capacity_panics() {
        let mut cfg = CpuConfig::westmere_e5645();
        cfg.core.rob_entries = 0;
        simulate(alu_stream(100), &cfg, &SimOptions::quick());
    }

    /// The idle-skip fast path must be bit-identical to cycle-by-cycle
    /// stepping across qualitatively different workloads.
    #[test]
    fn idle_skip_matches_stepped_loop_bit_for_bit() {
        let cfg = CpuConfig::westmere_e5645();
        let opts = SimOptions::exact(60_000, 10_000);
        let profiles = [
            WorkloadProfile::builder("skip-random")
                .region(64 << 20, 1.0, AccessPattern::Random)
                .build()
                .expect("valid"),
            WorkloadProfile::builder("skip-seq")
                .region(32 << 20, 1.0, AccessPattern::Sequential { stride: 8 })
                .build()
                .expect("valid"),
            WorkloadProfile::builder("skip-default")
                .build()
                .expect("valid"),
        ];
        for (k, profile) in profiles.iter().enumerate() {
            let fast = simulate(SyntheticTrace::new(profile, 41 + k as u64), &cfg, &opts);
            let slow = run_unskipped(SyntheticTrace::new(profile, 41 + k as u64), &cfg, &opts);
            assert_eq!(fast, slow, "profile {k}: skip must not change counters");
        }
        // Also under a short trace that drains inside the window.
        let fast = simulate(
            SyntheticTrace::new(&profiles[0], 7).take(25_000),
            &cfg,
            &SimOptions::exact(1_000_000, 1_000_000),
        );
        let slow = run_unskipped(
            SyntheticTrace::new(&profiles[0], 7).take(25_000),
            &cfg,
            &SimOptions::exact(1_000_000, 1_000_000),
        );
        assert_eq!(fast, slow, "draining trace: skip must not change counters");
    }

    // ---- SMARTS sampled-mode tests ----

    #[test]
    fn sampled_mode_tracks_exact_metrics() {
        let cfg = CpuConfig::westmere_e5645();
        let profile = WorkloadProfile::builder("smarts")
            .region(16 << 20, 1.0, AccessPattern::Random)
            .build()
            .expect("valid");
        let exact = simulate(
            SyntheticTrace::new(&profile, 17),
            &cfg,
            &SimOptions::exact(300_000, 50_000),
        );
        let sampled = simulate(
            SyntheticTrace::new(&profile, 17),
            &cfg,
            &SimOptions::exact(300_000, 50_000).with_sampling(20_000, 60_000),
        );
        // Instruction totals are conserved: every op is counted in one
        // mode or the other. Both modes overshoot `max_ops` by at most
        // one retire group, on different cycle boundaries.
        assert!(
            sampled.instructions.abs_diff(exact.instructions) <= 8,
            "instructions: sampled {} vs exact {}",
            sampled.instructions,
            exact.instructions
        );
        // Loads/stores are counted at dispatch while instructions are
        // counted at retire, so the in-flight overhang at the window
        // edge differs by at most a machine-width's worth of ops.
        let close = |a: u64, b: u64, what: &str| {
            let diff = a.abs_diff(b);
            assert!(diff * 1000 <= b, "{what}: sampled {a} vs exact {b}");
        };
        close(sampled.loads, exact.loads, "loads");
        close(sampled.stores, exact.stores, "stores");
        // The branch *stream* is identical in both modes (fetch-time
        // overhang aside), so the misprediction ratio agrees tightly.
        close(sampled.branches, exact.branches, "branches");
        let ratio_err =
            (sampled.branch_misprediction_ratio() - exact.branch_misprediction_ratio()).abs();
        assert!(
            ratio_err < 1e-3,
            "mispredict ratio: sampled {} vs exact {}",
            sampled.branch_misprediction_ratio(),
            exact.branch_misprediction_ratio()
        );
        // Extrapolated IPC lands near the exact value.
        let err = (sampled.ipc() - exact.ipc()).abs() / exact.ipc();
        assert!(
            err < 0.05,
            "sampled IPC {} vs exact {} (err {:.3})",
            sampled.ipc(),
            exact.ipc(),
            err
        );
    }

    #[test]
    fn sampled_mode_is_deterministic() {
        let cfg = CpuConfig::westmere_e5645();
        let profile = WorkloadProfile::builder("smarts-det")
            .build()
            .expect("valid");
        let opts = SimOptions::exact(200_000, 30_000).with_sampling(10_000, 30_000);
        let a = simulate(SyntheticTrace::new(&profile, 23), &cfg, &opts);
        let b = simulate(SyntheticTrace::new(&profile, 23), &cfg, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_mode_survives_short_trace() {
        let cfg = CpuConfig::westmere_e5645();
        let profile = WorkloadProfile::builder("smarts-short")
            .build()
            .expect("valid");
        let opts = SimOptions::exact(1_000_000, 10_000).with_sampling(5_000, 20_000);
        let counts = simulate(SyntheticTrace::new(&profile, 3).take(60_000), &cfg, &opts);
        assert_eq!(counts.instructions, 50_000);
        assert!(counts.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "intervals must be positive")]
    fn zero_sample_interval_panics() {
        let cfg = CpuConfig::westmere_e5645();
        let opts = SimOptions::quick().with_sampling(0, 1_000);
        simulate(alu_stream(100), &cfg, &opts);
    }

    /// Drive a pipeline to completion and return `(counts, pipeline)`
    /// so tests can inspect sampling-internal state after the run.
    fn run_keeping_pipeline<T: TraceSource>(
        mut trace: T,
        cfg: &CpuConfig,
        opts: &SimOptions,
    ) -> (PerfCounts, Pipeline) {
        let mut core = Core::new(cfg.clone());
        let mut pipe = Pipeline::new(cfg, opts);
        let mut cycle: u64 = 0;
        loop {
            cycle += 1;
            if pipe.step(
                cycle,
                cfg,
                &mut core.hier.private,
                &mut core.hier.shared,
                &mut core.mmu,
                &mut core.bp,
                &mut trace,
            ) {
                break;
            }
        }
        let counts = pipe.finalize(&core.hier.private, &core.mmu, &core.bp);
        (counts, pipe)
    }

    #[test]
    fn sampled_mode_splits_instructions_by_phase() {
        let cfg = CpuConfig::westmere_e5645();
        let profile = WorkloadProfile::builder("smarts-phases")
            .build()
            .expect("valid");
        let opts = SimOptions::exact(200_000, 30_000).with_sampling(10_000, 30_000);
        let (counts, pipe) = run_keeping_pipeline(SyntheticTrace::new(&profile, 7), &cfg, &opts);
        let (ramp, detail, ffwd) = pipe.phase_instructions();
        assert!(ramp > 0, "post-warm-up window must include ramp prefixes");
        assert!(detail > 0, "measured spans retire in detail");
        assert!(ffwd > 0, "fast-forward bursts dominate the window");
        // Wind-down drain retirements belong to no phase, so the three
        // never exceed the measured window's instruction total — and
        // fast-forwarded µops must account for most of it.
        assert!(ramp + detail + ffwd <= counts.instructions);
        assert!(ffwd > detail, "ffwd_ops=3×detail_ops plans skip most µops");

        // Exact mode reports an all-zero split.
        let (_, exact) = run_keeping_pipeline(
            alu_stream(100_000),
            &cfg,
            &SimOptions::exact(50_000, 10_000),
        );
        assert_eq!(exact.phase_instructions(), (0, 0, 0));
    }
}
