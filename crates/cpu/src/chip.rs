//! The multi-core chip model: N cores sharing one contended L3.
//!
//! The paper's machines were dual Xeon E5645 chips — six cores behind a
//! shared 12 MB L3 — running up to eight Hadoop map/reduce task slots
//! per node, so every measured miss ratio already embeds shared-cache
//! contention. [`Chip`] models that directly: each core owns its
//! private L1I/L1D/L2/TLB/predictor state ([`PrivateHierarchy`]) and is
//! fed its own trace, while all cores compete for one [`SharedL3`] and
//! its bounded memory channel.
//!
//! ## Interleaving and determinism contract
//!
//! Cores advance in **lockstep on a single global cycle counter**:
//! every cycle, each still-running core takes exactly one
//! [`Pipeline::step`], always in ascending core order. The shared L3
//! therefore observes a deterministic interleave of requests — the same
//! configs, traces and seeds produce bit-identical counters on every
//! run, on any machine, at any thread count. There is no wall-clock or
//! scheduler dependence anywhere in the model.
//!
//! Cores that finish their measurement window early stop stepping
//! (their counters freeze) while the remaining cores keep running and
//! keep contending; this mirrors a straggling map task finishing late
//! while its slot-mates have drained.
//!
//! A 1-core chip is **bit-identical** to [`Core::run`]: core 0 carries
//! a zero address salt and the step order trivially matches the
//! single-pipeline loop. This is pinned by tests in this module and by
//! the golden-snapshot suite.
//!
//! Distinct cores salt the *physical* addresses they present to the
//! shared level (`core_index << 44`, applied only beyond L2) so that
//! co-running tasks model distinct working sets mapped to distinct
//! physical pages, contending for L3 capacity rather than aliasing
//! into shared lines.
//!
//! [`Core::run`]: crate::core::Core::run

use dc_trace::TraceSource;

use crate::branch::BranchPredictor;
use crate::cache::{PrivateHierarchy, SharedL3};
use crate::config::CpuConfig;
use crate::core::{Block, Pipeline, SimOptions};
use crate::counters::PerfCounts;
use crate::sampling::{SampledRun, Sampler};
use crate::tlb::Mmu;

/// Bit position of the per-core physical-address salt. High enough
/// that no synthetic region (user or kernel) spans a salt boundary,
/// low enough that salted kernel addresses stay distinct per core.
const CORE_SALT_SHIFT: u32 = 44;

/// Per-core private machine state: everything except the shared L3.
#[derive(Debug)]
struct CoreState {
    hier: PrivateHierarchy,
    mmu: Mmu,
    bp: BranchPredictor,
}

/// A chip of N identical cores behind one shared, contended L3.
#[derive(Debug)]
pub struct Chip {
    cfg: CpuConfig,
    cores: Vec<CoreState>,
    shared: SharedL3,
}

// The parallel characterization pipeline ships whole chip simulations
// to worker threads, exactly as it ships single cores.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Chip>();
};

impl Chip {
    /// Build a chip with `num_cores` cores for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(cfg: CpuConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "a chip needs at least one core");
        let cores = (0..num_cores)
            .map(|i| CoreState {
                hier: PrivateHierarchy::with_salt(&cfg, (i as u64) << CORE_SALT_SHIFT),
                mmu: Mmu::new(&cfg),
                bp: BranchPredictor::new(&cfg),
            })
            .collect();
        Chip {
            shared: SharedL3::new(&cfg),
            cores,
            cfg,
        }
    }

    /// Number of cores on the chip.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The machine configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Run one trace per core to completion, in lockstep, and return
    /// each core's measured counters (indexed by core).
    ///
    /// Every core applies `opts` independently: it warms up for
    /// `opts.warmup_ops` retired µops (statistics reset at its own
    /// boundary; shared-L3 *contents* stay warm), then measures until
    /// `opts.max_ops` further µops retire or its trace drains.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one trace is supplied per core.
    pub fn run<T: TraceSource>(&mut self, traces: Vec<T>, opts: &SimOptions) -> Vec<PerfCounts> {
        assert_eq!(
            traces.len(),
            self.cores.len(),
            "need exactly one trace per core"
        );
        let n = self.cores.len();
        let mut traces = traces;
        let mut pipes: Vec<Pipeline> = (0..n).map(|_| Pipeline::new(&self.cfg, opts)).collect();
        let mut done = vec![false; n];
        let mut remaining = n;
        let mut cycle: u64 = 0;
        let mut idle: Vec<(usize, Block)> = Vec::with_capacity(n);
        while remaining > 0 {
            cycle += 1;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let core = &mut self.cores[i];
                let finished = pipes[i].step(
                    cycle,
                    &self.cfg,
                    &mut core.hier,
                    &mut self.shared,
                    &mut core.mmu,
                    &mut core.bp,
                    &mut traces[i],
                );
                if finished {
                    done[i] = true;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                break;
            }
            // Global idle skip: only when *every* active core agrees
            // nothing can happen before `bound`. No core touches the
            // shared level during the skipped span, so the lockstep
            // interleave — and every counter — is bit-identical to
            // stepping each cycle. A core that just made progress may
            // act next cycle, so don't even probe in that case.
            if pipes
                .iter()
                .zip(&done)
                .any(|(p, &d)| !d && p.made_progress())
            {
                continue;
            }
            idle.clear();
            let mut bound = u64::MAX;
            let mut skippable = true;
            for (i, pipe) in pipes.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                match pipe.next_event(cycle) {
                    Some((b, blk)) => {
                        bound = bound.min(b);
                        idle.push((i, blk));
                    }
                    None => {
                        skippable = false;
                        break;
                    }
                }
            }
            if skippable && bound > cycle + 1 {
                let skipped = bound - 1 - cycle;
                for &(i, blk) in &idle {
                    pipes[i].charge_idle(blk, skipped);
                }
                cycle = bound - 1;
            }
        }
        pipes
            .iter()
            .zip(&self.cores)
            .map(|(p, core)| p.finalize(&core.hier, &core.mmu, &core.bp))
            .collect()
    }

    /// Like [`Chip::run`], but each core also snapshots its counters
    /// every `every_cycles` **global** cycles past its own warm-up
    /// boundary, returning one [`SampledRun`] per core (indexed by
    /// core). Aggregates are bit-identical to [`Chip::run`] on the same
    /// traces — sampling is observation-only — and each core's interval
    /// deltas telescope to its aggregate exactly.
    ///
    /// # Panics
    ///
    /// Panics if `every_cycles` is zero or unless exactly one trace is
    /// supplied per core.
    pub fn run_sampled<T: TraceSource>(
        &mut self,
        traces: Vec<T>,
        opts: &SimOptions,
        every_cycles: u64,
    ) -> Vec<SampledRun> {
        assert!(
            opts.sample.is_none(),
            "interval-PMU sampling requires an exact (non-SMARTS) run"
        );
        assert_eq!(
            traces.len(),
            self.cores.len(),
            "need exactly one trace per core"
        );
        let n = self.cores.len();
        let mut traces = traces;
        let mut pipes: Vec<Pipeline> = (0..n).map(|_| Pipeline::new(&self.cfg, opts)).collect();
        let mut samplers: Vec<Sampler> = (0..n).map(|_| Sampler::new(every_cycles)).collect();
        let mut warm: Vec<bool> = pipes.iter().map(|p| p.in_warmup()).collect();
        let mut done = vec![false; n];
        let mut remaining = n;
        let mut cycle: u64 = 0;
        let mut idle: Vec<(usize, Block)> = Vec::with_capacity(n);
        while remaining > 0 {
            cycle += 1;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let core = &mut self.cores[i];
                let finished = pipes[i].step(
                    cycle,
                    &self.cfg,
                    &mut core.hier,
                    &mut self.shared,
                    &mut core.mmu,
                    &mut core.bp,
                    &mut traces[i],
                );
                if warm[i] && !pipes[i].in_warmup() {
                    samplers[i].rearm(pipes[i].cycle_base());
                    warm[i] = false;
                }
                if finished {
                    done[i] = true;
                    remaining -= 1;
                    continue;
                }
                let core = &self.cores[i];
                samplers[i].observe(cycle, &pipes[i], &core.hier, &core.mmu, &core.bp);
            }
            if remaining == 0 {
                break;
            }
            // Same global idle skip as `run`, additionally fenced at
            // each active core's next sample boundary so every interval
            // snapshot is taken at exactly the cycle it would be taken
            // by the per-cycle loop.
            if pipes
                .iter()
                .zip(&done)
                .any(|(p, &d)| !d && p.made_progress())
            {
                continue;
            }
            idle.clear();
            let mut bound = u64::MAX;
            let mut skippable = true;
            for (i, pipe) in pipes.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                match pipe.next_event(cycle) {
                    Some((b, blk)) => {
                        bound = bound.min(b).min(samplers[i].next_at());
                        idle.push((i, blk));
                    }
                    None => {
                        skippable = false;
                        break;
                    }
                }
            }
            if skippable && bound > cycle + 1 {
                let skipped = bound - 1 - cycle;
                for &(i, blk) in &idle {
                    pipes[i].charge_idle(blk, skipped);
                }
                cycle = bound - 1;
            }
        }
        pipes
            .iter()
            .zip(&self.cores)
            .zip(samplers)
            .map(|((p, core), sampler)| {
                let aggregate = p.finalize(&core.hier, &core.mmu, &core.bp);
                SampledRun {
                    every_cycles,
                    aggregate,
                    samples: sampler.finish(aggregate),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{simulate, SimOptions};
    use dc_trace::profile::AccessPattern;
    use dc_trace::{SyntheticTrace, WorkloadProfile};

    fn opts() -> SimOptions {
        SimOptions::exact(60_000, 10_000)
    }

    /// A profile whose working set fits the L3 alone but thrashes it
    /// when several copies co-run (12 MB shared L3, 6 MiB per task).
    fn cache_hungry() -> WorkloadProfile {
        WorkloadProfile::builder("hungry")
            .region(6 << 20, 1.0, AccessPattern::Random)
            .build()
            .expect("valid test profile")
    }

    /// A default, mostly compute-bound profile.
    fn plain() -> WorkloadProfile {
        WorkloadProfile::builder("plain")
            .build()
            .expect("valid test profile")
    }

    #[test]
    fn one_core_chip_matches_core_run() {
        let cfg = CpuConfig::westmere_e5645();
        for (profile, seed) in [(plain(), 7u64), (cache_hungry(), 2013)] {
            let solo = simulate(SyntheticTrace::new(&profile, seed), &cfg, &opts());
            let mut chip = Chip::new(cfg.clone(), 1);
            let chip_counts = chip.run(vec![SyntheticTrace::new(&profile, seed)], &opts());
            assert_eq!(chip_counts.len(), 1);
            assert_eq!(chip_counts[0], solo, "1-core chip must be bit-identical");
        }
    }

    #[test]
    fn chip_run_is_deterministic() {
        let cfg = CpuConfig::westmere_e5645();
        let profile = cache_hungry();
        let run = || {
            let mut chip = Chip::new(cfg.clone(), 4);
            let traces = (0..4)
                .map(|k| SyntheticTrace::new(&profile, 11 + k))
                .collect();
            chip.run(traces, &opts())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corunners_increase_shared_pressure() {
        let cfg = CpuConfig::westmere_e5645();
        let profile = cache_hungry();
        let solo = simulate(SyntheticTrace::new(&profile, 5), &cfg, &opts());
        let mut chip = Chip::new(cfg.clone(), 6);
        let traces = (0..6)
            .map(|k| SyntheticTrace::new(&profile, 5 + k))
            .collect();
        let co = chip.run(traces, &opts());
        // Core 0 runs the same trace in both worlds; with five
        // co-runners thrashing the L3 its miss count cannot improve.
        assert!(
            co[0].l3_misses >= solo.l3_misses,
            "co-run L3 misses {} < solo {}",
            co[0].l3_misses,
            solo.l3_misses
        );
        // And contention must cost cycles, not save them.
        assert!(co[0].cycles >= solo.cycles);
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_mismatch_panics() {
        let mut chip = Chip::new(CpuConfig::westmere_e5645(), 2);
        let profile = plain();
        chip.run(vec![SyntheticTrace::new(&profile, 1)], &opts());
    }
}
