//! Property-based invariants of the simulated machine.

use dc_cpu::cache::Cache;
use dc_cpu::config::{CacheConfig, CpuConfig};
use dc_cpu::core::{simulate, SimOptions};
use dc_cpu::tlb::Mmu;
use dc_trace::MicroOp;
use proptest::prelude::*;

proptest! {
    /// A cache never reports more misses than accesses, and re-access of
    /// the most recent line always hits.
    #[test]
    fn cache_miss_bounds(
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..2000),
        assoc in 1u32..8,
        size_kb in 1u64..64,
    ) {
        let mut cache = Cache::new(&CacheConfig {
            size_bytes: size_kb << 10,
            assoc,
            line_bytes: 64,
            latency: 1,
        });
        for a in &addrs {
            cache.access(*a);
            prop_assert!(cache.access(*a), "immediate re-access must hit");
        }
        prop_assert!(cache.misses <= cache.accesses);
    }

    /// Cycles ≥ instructions / width: the machine never exceeds its
    /// retire bandwidth.
    #[test]
    fn retire_width_is_respected(seed in 0u64..200, n in 1000usize..20_000) {
        let ops = (0..n).map(move |i| {
            let mut op = MicroOp::int_alu(0x40_0000 + ((seed + i as u64) % 64) * 4);
            op.dep_dist = (i % 3) as u16;
            op
        });
        let counts = simulate(
            ops,
            &CpuConfig::westmere_e5645(),
            &SimOptions::exact(n as u64, 0),
        );
        prop_assert_eq!(counts.instructions, n as u64);
        prop_assert!(counts.cycles * 4 >= counts.instructions);
        prop_assert!(counts.ipc() <= 4.0 + 1e-9);
    }

    /// Stall-cycle categories never exceed total cycles.
    #[test]
    fn stalls_bounded_by_cycles(seed in 0u64..100) {
        let mut x = seed.wrapping_mul(999331).wrapping_add(7);
        let ops = (0..30_000).map(move |i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x % 3 == 0 {
                MicroOp::load(0x40_0000 + (i % 128) * 4, (0x1000_0000 + (x % (16 << 20))) & !7)
            } else {
                MicroOp::int_alu(0x40_0000 + (i % 128) * 4)
            }
        });
        let counts = simulate(
            ops,
            &CpuConfig::westmere_e5645(),
            &SimOptions::exact(25_000, 2_000),
        );
        prop_assert!(counts.total_stall_cycles() <= counts.cycles);
        let b = counts.stall_breakdown();
        let sum: f64 = b.iter().sum();
        prop_assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
    }

    /// TLB walk counts never exceed first-level misses, which never
    /// exceed accesses.
    #[test]
    fn tlb_count_ordering(pages in proptest::collection::vec(0u64..10_000, 1..3000)) {
        let mut mmu = Mmu::new(&CpuConfig::westmere_e5645());
        for p in &pages {
            mmu.translate_data(p << 12);
        }
        prop_assert!(mmu.dstats.walks <= mmu.dstats.l1_misses);
        prop_assert!(mmu.dstats.l1_misses <= mmu.dstats.accesses);
        prop_assert_eq!(mmu.dstats.accesses, pages.len() as u64);
    }

    /// Doubling the cache never increases the miss count on the same
    /// trace (LRU inclusion property for same-geometry scaling by ways).
    #[test]
    fn bigger_cache_never_misses_more(
        addrs in proptest::collection::vec(0u64..(1 << 18), 100..1500),
    ) {
        // Same set count, doubled associativity => strictly more
        // capacity per set; LRU guarantees containment.
        let small_cfg = CacheConfig { size_bytes: 16 << 10, assoc: 4, line_bytes: 64, latency: 1 };
        let big_cfg = CacheConfig { size_bytes: 32 << 10, assoc: 8, line_bytes: 64, latency: 1 };
        let mut small = Cache::new(&small_cfg);
        let mut big = Cache::new(&big_cfg);
        for a in &addrs {
            small.access(*a);
            big.access(*a);
        }
        prop_assert!(big.misses <= small.misses);
    }
}
