//! Quick calibration probe: print emergent metrics for a few profile shapes.
use dc_cpu::{
    config::CpuConfig,
    core::{simulate, SimOptions},
};
use dc_trace::profile::{AccessPattern, CodeModel, DataRegion, InstMix, WorkloadProfile};
use dc_trace::synth::SyntheticTrace;

fn show(name: &str, p: &WorkloadProfile) {
    let cfg = CpuConfig::westmere_e5645();
    let t = SyntheticTrace::new(p, 1);
    let c = simulate(t, &cfg, &SimOptions::exact(1_000_000, 200_000));
    let b = c.stall_breakdown();
    println!("{name:16} ipc={:.2} l1iMPKI={:5.1} itlbW={:.3} l2MPKI={:5.1} l3r={:.2} dtlbW={:.3} br={:.3} kern={:.2} stalls[f={:.2} rat={:.2} ld={:.2} rs={:.2} st={:.2} rob={:.2}]",
        c.ipc(), c.l1i_mpki(), c.itlb_walk_pki(), c.l2_mpki(), c.l3_hit_ratio_of_l2_misses(),
        c.dtlb_walk_pki(), c.branch_misprediction_ratio(), c.kernel_fraction(),
        b[0], b[1], b[2], b[3], b[4], b[5]);
    println!(
        "{:16} cycles={} stallcyc={} instr={} l1d_mr={:.3} ld={} st={}",
        "",
        c.cycles,
        c.total_stall_cycles(),
        c.instructions,
        c.l1d_misses as f64 / c.l1d_accesses.max(1) as f64,
        c.loads,
        c.prefetches
    );
}

fn main() {
    // Data-analysis-like: moderate code footprint, mixed data locality.
    let da = WorkloadProfile::builder("da")
        .code(CodeModel {
            footprint_bytes: 320 << 10,
            zipf_theta: 0.80,
            taken_rate: 0.38,
            branch_noise: 0.015,
            regularity: 0.975,
        })
        .data(vec![
            DataRegion::new(24 << 10, 0.57, AccessPattern::Random),
            DataRegion::new(112 << 10, 0.29, AccessPattern::Random),
            DataRegion::new(
                1536 << 10,
                0.025,
                AccessPattern::Clustered { page_dwell: 40 },
            ),
            DataRegion::new(64 << 20, 0.115, AccessPattern::Sequential { stride: 16 }),
        ])
        .mix(InstMix {
            load: 0.30,
            store: 0.13,
            branch: 0.16,
            fp: 0.03,
            mul: 0.01,
            div: 0.002,
        })
        .kernel_fraction(0.04)
        .dep(0.55, 7.0)
        .build()
        .unwrap();
    show("data-analysis", &da);

    // Service-like: big code, poor data locality, RAT hazards.
    let svc = WorkloadProfile::builder("svc")
        .code(CodeModel {
            footprint_bytes: 1280 << 10,
            zipf_theta: 0.55,
            taken_rate: 0.42,
            branch_noise: 0.045,
            regularity: 0.93,
        })
        .data(vec![
            DataRegion::new(32 << 10, 0.44, AccessPattern::Random),
            DataRegion::new(512 << 10, 0.30, AccessPattern::Random),
            DataRegion::new(6 << 20, 0.115, AccessPattern::Clustered { page_dwell: 40 }),
            DataRegion::new(
                192 << 20,
                0.010,
                AccessPattern::Clustered { page_dwell: 12 },
            ),
        ])
        .mix(InstMix {
            load: 0.30,
            store: 0.14,
            branch: 0.18,
            fp: 0.01,
            mul: 0.005,
            div: 0.002,
        })
        .kernel_fraction(0.45)
        .dep(0.55, 5.0)
        .rat_hazard_rate(0.05)
        .build()
        .unwrap();
    show("service", &svc);

    // DGEMM-like: tiny code, tiled reuse, FP heavy, high ILP.
    let dgemm = WorkloadProfile::builder("dgemm")
        .code(CodeModel {
            footprint_bytes: 8 << 10,
            zipf_theta: 1.1,
            taken_rate: 0.20,
            branch_noise: 0.002,
            regularity: 0.999,
        })
        .data(vec![
            DataRegion::new(
                24 << 10,
                0.85,
                AccessPattern::Tiled {
                    stride: 8,
                    window: 16384,
                },
            ),
            DataRegion::new(8 << 20, 0.15, AccessPattern::Sequential { stride: 64 }),
        ])
        .mix(InstMix {
            load: 0.30,
            store: 0.08,
            branch: 0.08,
            fp: 0.40,
            mul: 0.02,
            div: 0.001,
        })
        .dep(0.35, 12.0)
        .build()
        .unwrap();
    show("dgemm", &dgemm);

    // STREAM-like: streaming loads+stores over huge arrays.
    let stream = WorkloadProfile::builder("stream")
        .code(CodeModel {
            footprint_bytes: 4 << 10,
            zipf_theta: 1.0,
            taken_rate: 0.10,
            branch_noise: 0.001,
            regularity: 0.999,
        })
        .data(vec![
            DataRegion::new(30 << 20, 0.5, AccessPattern::Sequential { stride: 8 }),
            DataRegion::new(30 << 20, 0.5, AccessPattern::Sequential { stride: 8 }),
        ])
        .mix(InstMix {
            load: 0.35,
            store: 0.18,
            branch: 0.10,
            fp: 0.25,
            mul: 0.0,
            div: 0.0,
        })
        .dep(0.35, 10.0)
        .build()
        .unwrap();
    show("stream", &stream);
}
