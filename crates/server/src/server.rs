//! The daemon: executors draining a bounded job queue, plus the
//! connection loop that speaks the line protocol.
//!
//! One [`Server`] owns one [`dc_mapreduce::pool::SpmcQueue`] of
//! accepted jobs and `workers` executor threads popping it — the same
//! closeable-SPMC idiom the MapReduce engine's phase scheduler proved.
//! Every connection (TCP or stdio) shares that queue, the process-wide
//! `dcbench::cache` memo table, and whatever store `DCBENCH_STORE`
//! attached, so a second client submitting the sweep a first client
//! already ran is answered entirely from memory: zero simulations,
//! byte-identical `output`.
//!
//! Connection handling is deliberately boring: read a line, answer a
//! line. A malformed line is answered with a structured error and the
//! loop continues — the only things that end a connection are client
//! EOF and a successful `shutdown` acknowledgement.

use crate::jobs::Job;
use crate::protocol::{
    self, code, error_response, event_frame, ok_response, Action, ProtoError, Request, RequestId,
    MAX_LINE_BYTES,
};
use dc_mapreduce::pool::SpmcQueue;
use dc_obs::metrics::{self, Clock, Counter, Histogram, MonotonicClock, Registry};
use dc_obs::{Recorder, Value};
use dc_store::json::write_json_string;
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Daemon tunables.
pub struct ServerConfig {
    /// Executor threads draining the job queue (each job additionally
    /// fans its entries across `dcbench::pool` workers).
    pub workers: usize,
    /// Bounded queue depth: submissions beyond this many *queued* jobs
    /// are rejected with [`code::QUEUE_FULL`] instead of buffering
    /// without limit.
    pub queue_cap: usize,
    /// Server-wide telemetry recorder (`request_accepted`,
    /// `request_rejected`, `job_queued`, `job_done`). Disabled by
    /// default; the `--events` flag points it at a JSONL file.
    pub recorder: Recorder,
    /// The metrics registry the daemon records into and `stats`
    /// snapshots. Defaults to the process-wide [`metrics::global`]
    /// registry (so cache/pool/simulator metrics appear alongside the
    /// server's own); tests inject a fresh one for isolation.
    pub registry: Arc<Registry>,
    /// Time source for the queue-wait and service-time histograms.
    /// [`MonotonicClock`] in the daemon; tests inject a
    /// [`dc_obs::metrics::FakeClock`] so latency snapshots are
    /// byte-reproducible.
    pub clock: Arc<dyn Clock>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_cap: 64,
            recorder: Recorder::disabled(),
            registry: Arc::clone(metrics::global()),
            clock: Arc::new(MonotonicClock::new()),
        }
    }
}

/// Wire verbs, in protocol documentation order. Request counters are
/// pre-registered for every verb so a `stats` snapshot always carries
/// the full family (zeros included) — the snapshot's *shape* never
/// depends on which verbs a session happened to use.
const VERBS: [&str; 7] = [
    "submit", "status", "cancel", "stream", "stats", "subset", "shutdown",
];

/// Every structured error code, likewise pre-registered.
const ERROR_CODES: [&str; 8] = [
    code::PARSE_ERROR,
    code::LINE_TOO_LONG,
    code::BAD_REQUEST,
    code::UNKNOWN_VERB,
    code::UNKNOWN_JOB,
    code::DUPLICATE_ID,
    code::QUEUE_FULL,
    code::SHUTTING_DOWN,
];

/// The daemon's handles into its metrics registry.
struct ServerMetrics {
    registry: Arc<Registry>,
    clock: Arc<dyn Clock>,
    /// `dc_server_queue_wait_us`: accept → executor pop, µs.
    queue_wait: Histogram,
    /// `dc_server_service_time_us`: executor pop → job done, µs.
    service_time: Histogram,
}

impl ServerMetrics {
    fn new(registry: Arc<Registry>, clock: Arc<dyn Clock>) -> ServerMetrics {
        for verb in VERBS {
            registry.counter("dc_server_requests_total", &[("verb", verb)]);
        }
        for code in ERROR_CODES {
            registry.counter("dc_server_errors_total", &[("code", code)]);
        }
        let queue_wait = registry.histogram("dc_server_queue_wait_us", &[]);
        let service_time = registry.histogram("dc_server_service_time_us", &[]);
        ServerMetrics {
            registry,
            clock,
            queue_wait,
            service_time,
        }
    }

    fn requests(&self, verb: &str) -> Counter {
        self.registry
            .counter("dc_server_requests_total", &[("verb", verb)])
    }

    fn errors(&self, code: &str) -> Counter {
        self.registry
            .counter("dc_server_errors_total", &[("code", code)])
    }
}

struct Inner {
    queue: SpmcQueue<Arc<Job>>,
    /// Jobs physically sitting in the queue (the bounded-ness check).
    queued: AtomicUsize,
    queue_cap: usize,
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    next_job: AtomicU64,
    shutdown: AtomicBool,
    recorder: Recorder,
    metrics: ServerMetrics,
}

/// A handle to one running daemon. Cheap to clone; the last handle
/// dropping does **not** stop the executors — call
/// [`Server::begin_shutdown`] and [`Server::wait`].
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
    executors: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Start the executor pool and return the handle connections are
    /// served through.
    pub fn start(cfg: ServerConfig) -> Server {
        let inner = Arc::new(Inner {
            queue: SpmcQueue::new(),
            queued: AtomicUsize::new(0),
            queue_cap: cfg.queue_cap.max(1),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            recorder: cfg.recorder,
            metrics: ServerMetrics::new(cfg.registry, cfg.clock),
        });
        let mut executors = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            executors.push(std::thread::spawn(move || executor_loop(&inner)));
        }
        Server {
            inner,
            executors: Arc::new(Mutex::new(executors)),
        }
    }

    /// The server-wide telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.inner.recorder
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting work: running jobs finish, queued jobs are
    /// cancelled as the executors drain them, and [`Server::wait`]
    /// returns once the pool is idle. Idempotent.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue.close();
    }

    /// Join the executor pool (after [`Server::begin_shutdown`]).
    pub fn wait(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut slot = self.executors.lock().unwrap_or_else(|p| p.into_inner());
            slot.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.inner.recorder.flush();
    }

    /// Serve one already-connected client from any line-oriented byte
    /// pair (a TCP stream split in two, or stdin/stdout). Returns when
    /// the client disconnects or after acknowledging `shutdown`.
    pub fn serve_connection<R: BufRead, W: Write>(&self, reader: &mut R, writer: &mut W) {
        let mut used_ids: HashSet<RequestId> = HashSet::new();
        let mut line = Vec::with_capacity(1024);
        loop {
            match read_capped_line(reader, &mut line) {
                Err(_) | Ok(LineRead::Eof) => return,
                Ok(LineRead::TooLong) => {
                    self.reject(code::LINE_TOO_LONG);
                    let err = ProtoError::new(
                        code::LINE_TOO_LONG,
                        format!("request lines are capped at {MAX_LINE_BYTES} bytes"),
                    );
                    if write_line(writer, &error_response(None, &err)).is_err() {
                        return;
                    }
                }
                Ok(LineRead::Line) => {
                    let text = String::from_utf8_lossy(&line).into_owned();
                    let shutdown_acked = self.handle_line(&text, &mut used_ids, writer);
                    match shutdown_acked {
                        Err(_) => return,
                        Ok(true) => return,
                        Ok(false) => {}
                    }
                }
            }
        }
    }

    /// Accept TCP clients until shutdown, one thread per connection.
    /// The listener should already be bound; pair with `--port-file`
    /// so scripts learn the ephemeral port.
    ///
    /// A watcher thread dials the listener once shutdown begins, so an
    /// accept loop blocked with no incoming clients still wakes up and
    /// returns.
    pub fn serve_listener(&self, listener: &TcpListener) {
        if let Ok(addr) = listener.local_addr() {
            let server = self.clone();
            std::thread::spawn(move || {
                while !server.is_shutting_down() {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                let _ = TcpStream::connect(addr);
            });
        }
        for stream in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let server = self.clone();
            std::thread::spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let mut reader = io::BufReader::new(read_half);
                let mut writer = io::BufWriter::new(stream);
                server.serve_connection(&mut reader, &mut writer);
                let _ = writer.flush();
            });
            if self.is_shutting_down() {
                break;
            }
        }
    }

    /// Begin shutdown *and* wake a blocked [`Server::serve_listener`]
    /// accept loop by dialing it once.
    pub fn shutdown_listener(&self, addr: std::net::SocketAddr) {
        self.begin_shutdown();
        let _ = TcpStream::connect(addr);
    }

    fn emit_accepted(&self, verb: &'static str) {
        self.inner.metrics.requests(verb).inc();
        if self.inner.recorder.is_enabled() {
            self.inner
                .recorder
                .emit(0, "request_accepted", vec![("verb", Value::str(verb))]);
        }
    }

    fn reject(&self, code: &'static str) {
        self.inner.metrics.errors(code).inc();
        if self.inner.recorder.is_enabled() {
            self.inner
                .recorder
                .emit(0, "request_rejected", vec![("code", Value::str(code))]);
        }
    }

    fn job(&self, name: &str) -> Result<Arc<Job>, ProtoError> {
        self.inner
            .jobs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| ProtoError::new(code::UNKNOWN_JOB, format!("no job named {name:?}")))
    }

    /// Handle one request line: write the response (and, for `stream`,
    /// the event frames before it). Returns whether a `shutdown` was
    /// acknowledged, which ends the connection.
    fn handle_line(
        &self,
        line: &str,
        used_ids: &mut HashSet<RequestId>,
        writer: &mut impl Write,
    ) -> io::Result<bool> {
        let req = match protocol::parse_request(line) {
            Ok(req) => req,
            Err((id, err)) => {
                self.reject(err.code);
                return write_line(writer, &error_response(id.as_ref(), &err)).map(|()| false);
            }
        };
        if used_ids.contains(&req.id) {
            self.reject(code::DUPLICATE_ID);
            let err = ProtoError::new(
                code::DUPLICATE_ID,
                "request id already used on this connection",
            );
            return write_line(writer, &error_response(Some(&req.id), &err)).map(|()| false);
        }
        match self.dispatch(&req, writer) {
            Ok(shutdown_acked) => {
                used_ids.insert(req.id);
                Ok(shutdown_acked)
            }
            Err(Either::Proto(err)) => {
                self.reject(err.code);
                write_line(writer, &error_response(Some(&req.id), &err)).map(|()| false)
            }
            Err(Either::Io(e)) => Err(e),
        }
    }

    fn dispatch(&self, req: &Request, writer: &mut impl Write) -> Result<bool, Either> {
        match &req.action {
            Action::Submit(spec) => {
                if self.is_shutting_down() {
                    return Err(ProtoError::new(
                        code::SHUTTING_DOWN,
                        "daemon is shutting down; no new jobs",
                    )
                    .into());
                }
                // Bounded admission: claim a slot, undo on overflow.
                let claimed = self.inner.queued.fetch_add(1, Ordering::SeqCst) + 1;
                if claimed > self.inner.queue_cap {
                    self.inner.queued.fetch_sub(1, Ordering::SeqCst);
                    return Err(ProtoError::new(
                        code::QUEUE_FULL,
                        format!("{} jobs already queued", self.inner.queue_cap),
                    )
                    .into());
                }
                let n = self.inner.next_job.fetch_add(1, Ordering::SeqCst);
                let job = Job::new(format!("job-{n}"), spec.clone());
                job.set_enqueued_at(self.inner.metrics.clock.now_micros());
                self.inner
                    .jobs
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .insert(job.name.clone(), Arc::clone(&job));
                self.emit_accepted("submit");
                job.emit_queued(&self.inner.recorder);
                let mut result = String::new();
                result.push_str("{\"job\":");
                write_json_string(&mut result, &job.name);
                result.push_str(",\"state\":\"queued\"}");
                self.inner.queue.push(job);
                write_line(writer, &ok_response(&req.id, &result))?;
                Ok(false)
            }
            Action::Status(name) => {
                let job = self.job(name)?;
                self.emit_accepted("status");
                write_line(writer, &ok_response(&req.id, &job.status_result()))?;
                Ok(false)
            }
            Action::Cancel(name) => {
                let job = self.job(name)?;
                job.cancel(&self.inner.recorder).map_err(|state| {
                    ProtoError::new(
                        code::BAD_REQUEST,
                        format!("cannot cancel {name}: job is {}", state.as_str()),
                    )
                })?;
                self.emit_accepted("cancel");
                write_line(writer, &ok_response(&req.id, &job.status_result()))?;
                Ok(false)
            }
            Action::Stream(name) => {
                let job = self.job(name)?;
                self.emit_accepted("stream");
                let mut sent = 0usize;
                loop {
                    let (events, closed) = job.log.wait_from(sent);
                    for ev in &events {
                        write_line(writer, &event_frame(&req.id, ev))?;
                    }
                    sent += events.len();
                    writer.flush()?;
                    if closed && events.is_empty() {
                        break;
                    }
                    if closed {
                        // Drain once more in case the final events and
                        // the close raced; the next wait returns
                        // immediately either way.
                        continue;
                    }
                }
                let mut result = String::new();
                result.push_str("{\"job\":");
                write_json_string(&mut result, &job.name);
                result.push_str(",\"state\":");
                write_json_string(&mut result, job.state().as_str());
                use std::fmt::Write as _;
                let _ = write!(result, ",\"events\":{sent}}}");
                write_line(writer, &ok_response(&req.id, &result))?;
                Ok(false)
            }
            Action::Stats => {
                self.emit_accepted("stats");
                let snap = self.inner.metrics.registry.snapshot();
                write_line(writer, &ok_response(&req.id, &snap.to_json()))?;
                Ok(false)
            }
            Action::Subset(spec) => {
                // Synchronous like `stats`: the exhibit is a pure
                // function of the spec and sub-second on a warm cache.
                let result = crate::subset::run(spec)?;
                self.emit_accepted("subset");
                write_line(writer, &ok_response(&req.id, &result))?;
                Ok(false)
            }
            Action::Shutdown => {
                self.emit_accepted("shutdown");
                self.begin_shutdown();
                write_line(
                    writer,
                    &ok_response(&req.id, "{\"state\":\"shutting_down\"}"),
                )?;
                writer.flush()?;
                Ok(true)
            }
        }
    }
}

/// Either a protocol error (answered on the wire) or an I/O error
/// (connection is gone).
enum Either {
    Proto(ProtoError),
    Io(io::Error),
}

impl From<ProtoError> for Either {
    fn from(e: ProtoError) -> Self {
        Either::Proto(e)
    }
}

impl From<io::Error> for Either {
    fn from(e: io::Error) -> Self {
        Either::Io(e)
    }
}

fn executor_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        inner.queued.fetch_sub(1, Ordering::SeqCst);
        if inner.shutdown.load(Ordering::SeqCst) {
            // Shutdown cancels whatever is still queued; `close()` lets
            // the queue drain, so every accepted job still reaches a
            // terminal state and streaming clients are released.
            let _ = job.cancel(&inner.recorder);
            continue;
        }
        if job.try_start() {
            // Queue wait ends the moment the executor claims the job;
            // service time brackets the characterization itself. Both
            // clocks are the injected one, so under a fake clock these
            // histograms are byte-reproducible.
            let started = inner.metrics.clock.now_micros();
            inner
                .metrics
                .queue_wait
                .observe(started.saturating_sub(job.enqueued_at()));
            job.run(&inner.recorder);
            let finished = inner.metrics.clock.now_micros();
            inner
                .metrics
                .service_time
                .observe(finished.saturating_sub(started));
        }
    }
}

fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Outcome of one capped line read.
pub enum LineRead {
    /// `buf` holds a complete line (newline stripped).
    Line,
    /// Clean end of input before any byte of a new line.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`]; it was consumed through
    /// its newline (or EOF) so the stream stays framed.
    TooLong,
}

/// Read one newline-terminated line into `buf` (cleared first),
/// enforcing [`MAX_LINE_BYTES`]. A final unterminated line is returned
/// as a line (network peers half-close after their last request).
pub fn read_capped_line<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<LineRead> {
    buf.clear();
    let mut overflowed = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: whatever accumulated is the final (unterminated) line.
            return Ok(if overflowed {
                LineRead::TooLong
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (chunk.len(), false),
        };
        if !overflowed {
            let body = if done { take - 1 } else { take };
            if buf.len() + body > MAX_LINE_BYTES {
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..body]);
            }
        }
        reader.consume(take);
        if done {
            return Ok(if overflowed {
                LineRead::TooLong
            } else {
                LineRead::Line
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &[u8]) -> Vec<(Vec<u8>, bool)> {
        let mut reader = io::BufReader::with_capacity(7, input);
        let mut buf = Vec::new();
        let mut out = Vec::new();
        loop {
            match read_capped_line(&mut reader, &mut buf).expect("memory reads cannot fail") {
                LineRead::Eof => return out,
                LineRead::Line => out.push((buf.clone(), false)),
                LineRead::TooLong => out.push((Vec::new(), true)),
            }
        }
    }

    #[test]
    fn capped_reader_frames_lines() {
        let got = read_all(b"alpha\nbeta\n\ngamma");
        assert_eq!(
            got,
            vec![
                (b"alpha".to_vec(), false),
                (b"beta".to_vec(), false),
                (Vec::new(), false),
                (b"gamma".to_vec(), false),
            ]
        );
    }

    #[test]
    fn oversized_line_is_consumed_not_buffered() {
        let mut input = vec![b'x'; MAX_LINE_BYTES + 10];
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        let got = read_all(&input);
        assert_eq!(got.len(), 2);
        assert!(got[0].1, "first line overflows");
        assert_eq!(got[1].0, b"after", "framing survives the overflow");
    }

    #[test]
    fn exactly_max_bytes_is_fine() {
        let mut input = vec![b'y'; MAX_LINE_BYTES];
        input.push(b'\n');
        let got = read_all(&input);
        assert_eq!(got.len(), 1);
        assert!(!got[0].1);
        assert_eq!(got[0].0.len(), MAX_LINE_BYTES);
    }

    /// Drive a scripted session against an in-process server over a
    /// plain byte buffer (no sockets): the same `serve_connection` the
    /// TCP and stdio paths use.
    fn session(server: &Server, input: &str) -> Vec<String> {
        let mut reader = io::BufReader::new(input.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        server.serve_connection(&mut reader, &mut out);
        String::from_utf8(out)
            .expect("responses are utf-8")
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn malformed_lines_get_errors_and_the_session_continues() {
        let server = Server::start(ServerConfig::default());
        let lines = session(
            &server,
            "garbage\n{\"id\":1,\"verb\":\"status\",\"job\":\"job-999\"}\n{\"id\":1,\"verb\":\"status\",\"job\":\"job-999\"}\n",
        );
        assert_eq!(lines.len(), 3, "every line answered: {lines:?}");
        assert!(lines[0].contains("\"parse_error\""));
        assert!(lines[1].contains("\"unknown_job\""));
        // Ids are only consumed by successful requests, so the retry
        // after an error reuses its id without a duplicate_id penalty.
        assert!(lines[2].contains("\"unknown_job\""));
        server.begin_shutdown();
        server.wait();
    }

    #[test]
    fn duplicate_ids_are_rejected_after_success() {
        let server = Server::start(ServerConfig::default());
        let submit =
            "{\"id\":\"same\",\"verb\":\"submit\",\"job\":{\"entries\":[\"Sort\"],\"seed\":501}}";
        let lines = session(&server, &format!("{submit}\n{submit}\n"));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\"duplicate_id\""));
        server.begin_shutdown();
        server.wait();
    }

    #[test]
    fn queue_bound_rejects_and_recovers() {
        // One executor, queue of one: hold the executor on a job, fill
        // the single slot, and watch the third submission bounce.
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_cap: 1,
            ..ServerConfig::default()
        });
        let submit = |id: u32, seed: u64| {
            format!("{{\"id\":{id},\"verb\":\"submit\",\"job\":{{\"entries\":[\"Sort\"],\"seed\":{seed}}}}}\n")
        };
        // Three rapid submissions: the first is popped by the executor
        // (freeing its slot), so at most one rejection is guaranteed
        // only when the queue really is saturated; assert the shape,
        // not the timing.
        let lines = session(
            &server,
            &format!("{}{}{}", submit(1, 502), submit(2, 503), submit(3, 504)),
        );
        assert_eq!(lines.len(), 3);
        assert!(lines
            .iter()
            .all(|l| l.contains("\"ok\":true") || l.contains("\"queue_full\"")));
        server.begin_shutdown();
        server.wait();
    }

    #[test]
    fn stats_snapshots_the_injected_registry() {
        use dc_obs::metrics::FakeClock;
        let registry = Arc::new(Registry::new());
        let server = Server::start(ServerConfig {
            registry: Arc::clone(&registry),
            clock: Arc::new(FakeClock::at(0)),
            ..ServerConfig::default()
        });
        let lines = session(
            &server,
            "{\"id\":1,\"verb\":\"stats\"}\n{\"id\":2,\"verb\":\"nope\"}\n{\"id\":3,\"verb\":\"stats\"}\n",
        );
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[0].contains("{\"metrics\":["));
        // The snapshot carries the full pre-registered families, so the
        // first stats already shows itself counted and every verb
        // present (zeros included).
        assert!(lines[0]
            .contains("{\"name\":\"dc_server_requests_total\",\"labels\":{\"verb\":\"stats\"},\"type\":\"counter\",\"value\":1}"));
        assert!(lines[0]
            .contains("{\"name\":\"dc_server_requests_total\",\"labels\":{\"verb\":\"submit\"},\"type\":\"counter\",\"value\":0}"));
        assert!(lines[0].contains("\"name\":\"dc_server_queue_wait_us\""));
        assert!(lines[0].contains("\"name\":\"dc_server_service_time_us\""));
        // The unknown verb lands in the error-code family.
        assert!(lines[2]
            .contains("{\"name\":\"dc_server_errors_total\",\"labels\":{\"code\":\"unknown_verb\"},\"type\":\"counter\",\"value\":1}"));
        // Only daemon metrics live in the injected registry — none of
        // the process-global cache/pool families leak in.
        assert!(!lines[2].contains("dcbench_"));
        server.begin_shutdown();
        server.wait();
    }

    #[test]
    fn shutdown_acknowledges_cancels_queued_and_ends_the_connection() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_cap: 8,
            ..ServerConfig::default()
        });
        let lines = session(
            &server,
            "{\"id\":1,\"verb\":\"shutdown\"}\n{\"id\":2,\"verb\":\"status\",\"job\":\"job-1\"}\n",
        );
        assert_eq!(lines.len(), 1, "connection closes after shutdown ack");
        assert!(lines[0].contains("\"shutting_down\""));
        server.wait();
        // New submissions on a fresh connection are refused.
        let refused = session(
            &server,
            "{\"id\":1,\"verb\":\"submit\",\"job\":{\"entries\":[\"Sort\"]}}\n",
        );
        assert!(refused[0].contains("\"shutting_down\""));
    }
}
